"""Shared infrastructure for the benchmark harness.

The Figure 5 sweep (8 workloads x 5 designs) is the expensive part and
feeds three different benches (5(a), 5(b), headline).  It is computed at
most once per *code state*: the sweep is submitted through the run
orchestrator, whose content-addressed on-disk cache (``.repro-cache/``)
keys every cell by (spec hash, code fingerprint).  A repeated bench or
CI run against unchanged sources replays from disk without executing a
single simulation; editing any simulator source invalidates everything
at once.  The bench length and seed are part of the spec hash, so runs
at different ``CCNVM_BENCH_LENGTH``/``CCNVM_BENCH_SEED`` never collide.

Environment knobs:

* ``CCNVM_BENCH_LENGTH`` — memory references per workload surrogate
  (default 12000; the paper's gem5 runs cover 500 M instructions, see
  DESIGN.md for the scaling rationale).
* ``CCNVM_BENCH_SEED`` — workload generation seed (default 1).
* ``CCNVM_BENCH_JOBS`` — worker processes for the sweep (default 1).
* ``CCNVM_BENCH_CACHE`` — set to ``0`` to force re-execution.
* ``CCNVM_CACHE_DIR`` — cache location (default ``.repro-cache``).
"""

from __future__ import annotations

import os

from repro.analysis import experiments

BENCH_LENGTH = int(os.environ.get("CCNVM_BENCH_LENGTH", "12000"))
BENCH_SEED = int(os.environ.get("CCNVM_BENCH_SEED", "1"))
BENCH_JOBS = int(os.environ.get("CCNVM_BENCH_JOBS", "1"))
BENCH_CACHE = os.environ.get("CCNVM_BENCH_CACHE", "1") != "0"

#: Shorter sweep length for the two-dimensional Figure 6 sensitivity runs.
SWEEP_LENGTH = max(2000, BENCH_LENGTH // 2)

#: The quantitative bands in the bench assertions were calibrated at the
#: default length; short smoke runs (CCNVM_BENCH_LENGTH < 8000) only
#: check orderings, since cold caches mute every overhead.
FULL_FIDELITY = BENCH_LENGTH >= 8000

_FIG5 = None


def figure5_comparisons():
    """The Figure 5 (workload x design) run matrix, served from the
    on-disk result cache whenever the simulator sources are unchanged."""
    global _FIG5
    if _FIG5 is None:
        _FIG5 = experiments.figure5_comparisons(
            length=BENCH_LENGTH,
            seed=BENCH_SEED,
            jobs=BENCH_JOBS,
            cache=BENCH_CACHE,
        )
    return _FIG5


def banner(text: str) -> None:
    """Print a block the harness emits alongside pytest-benchmark output."""
    print()
    print(text)
    print()
