"""Shared infrastructure for the benchmark harness.

The Figure 5 sweep (8 workloads x 5 designs) is the expensive part and
feeds three different benches (5(a), 5(b), headline), so its result is
computed once per session and cached here.

Environment knobs:

* ``CCNVM_BENCH_LENGTH`` — memory references per workload surrogate
  (default 12000; the paper's gem5 runs cover 500 M instructions, see
  DESIGN.md for the scaling rationale).
* ``CCNVM_BENCH_SEED`` — workload generation seed (default 1).
"""

from __future__ import annotations

import os
from functools import lru_cache

from repro.analysis import experiments

BENCH_LENGTH = int(os.environ.get("CCNVM_BENCH_LENGTH", "12000"))
BENCH_SEED = int(os.environ.get("CCNVM_BENCH_SEED", "1"))

#: Shorter sweep length for the two-dimensional Figure 6 sensitivity runs.
SWEEP_LENGTH = max(2000, BENCH_LENGTH // 2)

#: The quantitative bands in the bench assertions were calibrated at the
#: default length; short smoke runs (CCNVM_BENCH_LENGTH < 8000) only
#: check orderings, since cold caches mute every overhead.
FULL_FIDELITY = BENCH_LENGTH >= 8000


@lru_cache(maxsize=1)
def figure5_comparisons():
    """The cached Figure 5 (workload x design) run matrix."""
    return experiments.figure5_comparisons(length=BENCH_LENGTH, seed=BENCH_SEED)


def banner(text: str) -> None:
    """Print a block the harness emits alongside pytest-benchmark output."""
    print()
    print(text)
    print()
