"""Ablation (DESIGN.md): what deferred spreading buys.

Section 4.3's claim is that updating the tree per write-back is redundant
when consecutive write-backs share ancestors; deferring the spread to the
drain computes every recorded node exactly once per epoch.  This bench
quantifies the counter-HMAC computation savings and the resulting IPC
gain of cc-NVM over cc-NVM w/o DS.
"""

from repro.analysis import experiments

from benchmarks.common import BENCH_SEED, FULL_FIDELITY, SWEEP_LENGTH, banner


def run_ablation():
    return experiments.deferred_spreading_ablation(
        length=SWEEP_LENGTH, seed=BENCH_SEED
    )


def test_deferred_spreading_saves_hmac_computations(benchmark):
    results = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    lines = ["Deferred-spreading ablation (cc-NVM vs cc-NVM w/o DS):"]
    for name, row in results.items():
        lines.append(
            f"  {name:10s} counter-HMACs {row['hmacs_without_ds']:.0f} -> "
            f"{row['hmacs_with_ds']:.0f} "
            f"({row['hmac_savings']:.1%} saved), IPC {row['ipc_gain']:+.1%}"
        )
    banner("\n".join(lines))

    for name, row in results.items():
        # DS must never compute more than the per-write-back spread.
        assert row["hmacs_with_ds"] <= row["hmacs_without_ds"], name
        # Savings scale with metadata locality: near-total for streaming
        # (lbm), smaller for scattered access (milc) — but always real.
        assert row["hmac_savings"] > 0.25, name
        if FULL_FIDELITY:
            # And they translate into performance.
            assert row["ipc_gain"] > 0.0, name
