"""Ablation (DESIGN.md): the meta cache itself.

The entire paper rests on aggressively caching security metadata
(Section 2.2); this bench sweeps the shared counter/Merkle-cache size for
cc-NVM, normalizing each point against w/o CC at the *same* size.

The sweep exposes a non-obvious interaction: growing the cache makes the
*relative* cost of cc-NVM move toward a plateau — the write ratio rises
and the IPC ratio eases down.  A bigger cache removes the baseline's
metadata-eviction traffic (and stalls) almost entirely, while cc-NVM's
epoch drains persist by design: they are the price of a consistent
in-NVM tree.  In other words, the better metadata caching gets, the more
of cc-NVM's remaining overhead is pure consistency tax — and past the
paper's 128 KB choice the ratios flatten: the cache is big enough that
the tax, not capacity misses, dominates.
"""

from repro.analysis import experiments

from benchmarks.common import BENCH_SEED, SWEEP_LENGTH, banner

SIZES_KB = [16, 32, 64, 128, 256]


def run_sweep():
    return experiments.meta_cache_sweep(
        sizes_kb=SIZES_KB, length=SWEEP_LENGTH, seed=BENCH_SEED
    )


def test_meta_cache_size_ablation(benchmark):
    series = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    banner(series.render())

    ipc = dict(series.series("ccnvm", "ipc"))
    writes = dict(series.series("ccnvm", "writes"))

    # The *relative* metrics move toward the consistency-tax plateau as
    # the baseline's own metadata-eviction traffic disappears: the write
    # ratio rises...
    assert writes[128] >= writes[16] - 0.02

    # ... and both metrics flatten past the paper's 128 KB choice: the
    # 128->256 KB step is no larger than the 16->64 KB step.
    assert abs(writes[256] - writes[128]) <= abs(writes[64] - writes[16]) + 0.02
    assert abs(ipc[256] - ipc[128]) <= abs(ipc[64] - ipc[16]) + 0.02
