"""Figure 5(a): system IPC for the five designs, normalized to w/o CC.

Regenerates the paper's left panel: per-benchmark bars for SC, Osiris
Plus, cc-NVM w/o DS and cc-NVM over the eight SPEC-2006 surrogates.
Paper shape: the three chain-to-root designs cluster well below the
baseline; cc-NVM sits clearly above them (-18.7 % vs baseline on
average, +20.4 % over Osiris Plus); hmmer and namd are unaffected.
"""

from repro.analysis.report import ipc_table

from benchmarks.common import FULL_FIDELITY, banner, figure5_comparisons


def test_fig5a_ipc(benchmark):
    comparisons = benchmark.pedantic(
        figure5_comparisons, rounds=1, iterations=1
    )
    table = ipc_table(comparisons)
    banner(table.render())
    averages = table.averages()

    # The baseline is the upper bound for every design on every workload.
    for scheme in table.schemes:
        assert all(v <= 1.01 for v in table.column(scheme))

    # cc-NVM beats every other crash-consistent design on average...
    assert averages["ccnvm"] > averages["sc"]
    assert averages["ccnvm"] > averages["osiris_plus"]
    assert averages["ccnvm"] > averages["ccnvm_no_ds"]
    # SC, Osiris Plus and cc-NVM w/o DS are "very close" (Section 5.1):
    cluster = [averages["sc"], averages["osiris_plus"], averages["ccnvm_no_ds"]]
    assert max(cluster) - min(cluster) < 0.12

    # Osiris Plus performs slightly better than cc-NVM w/o DS (5.1 (2)).
    assert averages["osiris_plus"] >= averages["ccnvm_no_ds"]

    if FULL_FIDELITY:
        # ... by roughly the paper's factor over Osiris Plus (+20.4 %).
        gain = averages["ccnvm"] / averages["osiris_plus"] - 1.0
        assert 0.10 < gain < 0.45, f"cc-NVM gain over Osiris Plus: {gain:+.1%}"

        # cc-NVM's loss vs baseline is in the paper's band (-18.7 %).
        assert 0.05 < 1.0 - averages["ccnvm"] < 0.35

    # Cache-resident benchmarks are essentially unaffected for cc-NVM.
    for quiet in ("hmmer", "namd"):
        assert table.rows[quiet]["ccnvm"] > 0.97
