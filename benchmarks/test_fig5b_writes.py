"""Figure 5(b): NVM write traffic for the five designs, normalized to
w/o CC.

Paper shape: SC is the outlier at ~5.5x (every write-back flushes the
counter and 10 internal tree nodes); Osiris Plus stays near the baseline
(no tree persistence); the two cc-NVM variants share ~1.3-1.4x (epoch
drains amortize metadata flushes across write-backs).
"""

from repro.analysis.report import write_traffic_table

from benchmarks.common import banner, figure5_comparisons


def test_fig5b_write_traffic(benchmark):
    comparisons = benchmark.pedantic(
        figure5_comparisons, rounds=1, iterations=1
    )
    table = write_traffic_table(comparisons)
    banner(table.render())
    averages = table.averages()

    # SC has the most writes, on every single workload (Section 5.2).
    for workload, row in table.rows.items():
        assert row["sc"] == max(row.values()), workload

    # SC's amplification is in the paper's band (5.5x average).
    assert 3.5 < averages["sc"] < 7.0

    # Osiris Plus barely exceeds the baseline (~1.0x).
    assert averages["osiris_plus"] < 1.15

    # The cc-NVM variants share the same drain traffic by construction.
    for workload, row in table.rows.items():
        assert abs(row["ccnvm"] - row["ccnvm_no_ds"]) < 0.05, workload

    # cc-NVM's extra traffic is in the paper's band (+29.6 %..+39 %).
    extra = averages["ccnvm"] - 1.0
    assert 0.10 < extra < 0.60, f"cc-NVM extra write traffic: {extra:+.1%}"

    # Ordering: baseline <= Osiris Plus <= cc-NVM < SC.
    assert 1.0 <= averages["osiris_plus"] <= averages["ccnvm"] < averages["sc"]
