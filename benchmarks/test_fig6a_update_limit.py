"""Figure 6(a): sensitivity to the update-times limit N (M = 64).

Paper shape: larger N lengthens epochs, improving IPC and reducing NVM
writes — but the effect saturates once N exceeds ~32, because the other
two trigger conditions (queue capacity, dirty evictions) dominate epoch
termination.
"""

from repro.analysis import experiments

from benchmarks.common import SWEEP_LENGTH, BENCH_SEED, banner


N_VALUES = [4, 8, 16, 32, 64]


def run_sweep():
    return experiments.figure6a(
        values=N_VALUES, length=SWEEP_LENGTH, seed=BENCH_SEED
    )


def test_fig6a_update_limit(benchmark):
    series = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    banner(series.render())

    for scheme in ("ccnvm", "ccnvm_no_ds"):
        ipc = dict(series.series(scheme, "ipc"))
        writes = dict(series.series(scheme, "writes"))

        # Monotone improvement direction: N=64 is no worse than N=4.
        assert ipc[64] >= ipc[4] - 0.02
        assert writes[64] <= writes[4] + 0.02

        # Saturation: the N=32 -> N=64 step moves less than N=4 -> N=16
        # ("it has little effect ... when the N is larger than 32").
        early_gain = abs(ipc[16] - ipc[4])
        late_gain = abs(ipc[64] - ipc[32])
        assert late_gain <= early_gain + 0.01
        assert abs(writes[64] - writes[32]) <= abs(writes[16] - writes[4]) + 0.01

    # Osiris Plus's stop-loss flushing also relaxes with N.
    osiris_writes = dict(series.series("osiris_plus", "writes"))
    assert osiris_writes[64] <= osiris_writes[4] + 0.02
