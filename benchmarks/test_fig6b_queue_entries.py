"""Figure 6(b): sensitivity to the dirty-address-queue entries M (N = 16).

Paper shape: a larger queue lengthens epochs (fewer queue-full drains),
reducing write traffic and improving IPC; the benefit slows past M ~ 48
as the other trigger conditions take over.  M is bounded above by the
64-entry WPQ.
"""

import pytest

from repro.analysis import experiments
from repro.common.config import SystemConfig

from benchmarks.common import SWEEP_LENGTH, BENCH_SEED, banner


M_VALUES = [32, 40, 48, 56, 64]


def run_sweep():
    return experiments.figure6b(
        values=M_VALUES, length=SWEEP_LENGTH, seed=BENCH_SEED
    )


def test_fig6b_queue_entries(benchmark):
    series = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    banner(series.render())

    for scheme in ("ccnvm", "ccnvm_no_ds"):
        ipc = dict(series.series(scheme, "ipc"))
        writes = dict(series.series(scheme, "writes"))

        # "cc-NVM achieves less write traffic and better performance with
        # larger M."
        assert ipc[64] >= ipc[32] - 0.02
        assert writes[64] <= writes[32] + 0.02

        # "when the M is larger than 48, the effect of M slows down."
        early = abs(writes[48] - writes[32])
        late = abs(writes[64] - writes[48])
        assert late <= early + 0.02


def test_m_is_bounded_by_the_wpq():
    """The structural constraint behind the sweep's upper end."""
    with pytest.raises(ValueError):
        SystemConfig().with_epoch(dirty_queue_entries=65)
