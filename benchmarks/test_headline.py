"""The abstract's headline claims, measured on the full Figure 5 matrix:

* "Compared to Osiris, a state-of-the-art secure NVM, cc-NVM improves
  performance by 20.4% on average."
* "cc-NVM is able to detect and locate the exact tampered data while only
  incurring extra write traffic by 29.6% on average."
"""

from repro.analysis.report import headline_numbers

from benchmarks.common import FULL_FIDELITY, banner, figure5_comparisons


def test_headline_numbers(benchmark):
    comparisons = benchmark.pedantic(
        figure5_comparisons, rounds=1, iterations=1
    )
    numbers = headline_numbers(comparisons)
    banner(numbers.render())

    # The sign of every claim holds at any scale.
    assert numbers.ccnvm_ipc_gain_over_osiris > 0
    assert numbers.ccnvm_extra_write_traffic > 0
    assert numbers.ccnvm_ipc_loss > 0

    if FULL_FIDELITY:
        # cc-NVM over Osiris Plus: paper +20.4 %; accept the band the
        # trace-driven model reproduces.
        assert 0.10 < numbers.ccnvm_ipc_gain_over_osiris < 0.45

        # Extra write traffic: paper quotes +29.6 % (abstract) and +39 %
        # (Section 5.2); both sit inside this band.
        assert 0.10 < numbers.ccnvm_extra_write_traffic < 0.60

        # cc-NVM's loss vs the no-consistency baseline: paper -18.7 %.
        assert 0.05 < numbers.ccnvm_ipc_loss < 0.35
