"""Section 2.3's motivation numbers: the naive strict-consistency
approach "can increase memory writes by 5.5x and deteriorate system
performance by 41.4%, when compared to conventional security
architecture without crash consistency guarantees".
"""

from repro.analysis.report import headline_numbers

from benchmarks.common import FULL_FIDELITY, banner, figure5_comparisons


def test_motivation_strict_consistency_cost(benchmark):
    comparisons = benchmark.pedantic(
        figure5_comparisons, rounds=1, iterations=1
    )
    numbers = headline_numbers(comparisons)
    banner(
        "Section 2.3 motivation (naive SC vs w/o CC):\n"
        f"  performance degradation: {numbers.sc_ipc_loss:.1%} (paper: 41.4%)\n"
        f"  write amplification:     {numbers.sc_write_amplification:.2f}x (paper: 5.5x)"
    )

    # Write amplification in the paper's band (holds at any scale: it is
    # structural — the counter and path nodes per write-back).
    assert 3.5 < numbers.sc_write_amplification < 7.0

    if FULL_FIDELITY:
        # Performance collapse in the paper's band.
        assert 0.25 < numbers.sc_ipc_loss < 0.55
