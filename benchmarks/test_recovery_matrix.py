"""Section 4.4's functional claim, exercised as a benchmark: after a
mid-epoch crash — with and without concurrent integrity attacks — each
design's recovery produces the outcome the paper's comparison table
implies:

======================  ==========  ============  ================
design                  recovers?   detects?      locates?
======================  ==========  ============  ================
w/o CC                  no          —             —
SC                      trivially   yes           yes (runtime)
Osiris Plus             yes         yes           no
cc-NVM (both variants)  yes         yes           yes
======================  ==========  ============  ================

The benchmark also times the recovery scan itself (bounded by N retries
per block — the reason trigger condition 3 exists).
"""

import random

from repro.core.attacks import Attacker
from repro.core.schemes import create_scheme
from repro.common.config import SystemConfig

from benchmarks.common import banner

CAPACITY = 1 << 22  # 4 MB device: 1024 pages
PAGES = 4
BLOCKS = 8  # a hot set: blocks accumulate > N updates between commits
WRITEBACKS = 600


def build_machine(scheme_name, seed=5):
    scheme = create_scheme(scheme_name, SystemConfig(), CAPACITY, seed=seed)
    rng = random.Random(seed)
    t = 0
    written = {}
    for i in range(WRITEBACKS):
        addr = rng.randrange(PAGES) * 4096 + rng.randrange(BLOCKS) * 64
        data = bytes([i % 256]) * 64
        scheme.writeback(t, addr, data)
        written[addr] = data
        t += 400
    return scheme, written, t


def crash_and_recover(scheme_name):
    scheme, written, t = build_machine(scheme_name)
    scheme.crash()
    report = scheme.recover()
    intact = report.success and all(
        scheme.read(t + i * 400, addr)[0] == data
        for i, (addr, data) in enumerate(written.items())
    )
    return report, intact


def test_clean_crash_recovery_outcomes(benchmark):
    def run_all():
        return {
            name: crash_and_recover(name)
            for name in ("no_cc", "sc", "osiris_plus", "ccnvm_no_ds", "ccnvm")
        }

    outcomes = benchmark.pedantic(run_all, rounds=1, iterations=1)
    lines = ["Clean mid-epoch crash recovery:"]
    for name, (report, intact) in outcomes.items():
        lines.append(
            f"  {name:12s} success={report.success!s:5s} data-intact={intact!s:5s} "
            f"retries={report.total_retries} nwb={report.nwb}"
        )
    banner("\n".join(lines))

    # Every crash-consistent design recovers all written-back data.
    for name in ("sc", "osiris_plus", "ccnvm_no_ds", "ccnvm"):
        report, intact = outcomes[name]
        assert report.success and intact, name

    # The baseline does not (the paper's motivation).
    assert not outcomes["no_cc"][0].success

    # Retries are bounded by N per block and counted exactly for cc-NVM.
    ccnvm_report = outcomes["ccnvm"][0]
    assert ccnvm_report.total_retries == ccnvm_report.nwb


def test_attacked_crash_recovery_outcomes(benchmark):
    """Spoof one block and replay another across the crash."""

    def run_matrix():
        results = {}
        for name in ("osiris_plus", "ccnvm"):
            scheme, written, t = build_machine(name, seed=9)
            attacker = Attacker(scheme.nvm)
            victim_spoof = sorted(written)[0]
            attacker.spoof_data(victim_spoof)
            scheme.crash()
            results[name] = (scheme.recover(), victim_spoof)
        return results

    results = benchmark.pedantic(run_matrix, rounds=1, iterations=1)
    lines = ["Crash + spoofing attack:"]
    for name, (report, victim) in results.items():
        located = [f.address for f in report.findings if f.kind == "data_tampering"]
        lines.append(
            f"  {name:12s} detected={not report.clean!s:5s} located={located}"
        )
    banner("\n".join(lines))

    ccnvm_report, victim = results["ccnvm"]
    assert not ccnvm_report.clean
    assert victim in [
        f.address for f in ccnvm_report.findings if f.kind == "data_tampering"
    ]
    # Osiris Plus also notices a spoofed block during its counter
    # restoration scan, but replay-class attacks it can only detect: see
    # tests/integration/test_attack_detection.py for the full matrix.
    assert not results["osiris_plus"][0].clean
