"""Client-observed latency of the simulation service (``repro serve``).

Measures, against a real daemon subprocess on an ephemeral port:

* **cold** — first evaluate submit: the full sweep executes;
* **warm** — identical resubmit: every cell resolves from the shared
  cache (``0 executed``), which must complete in under a second;
* **coalesced rider** — a second client submitting identical work while
  it runs: admission, coalescing, and the shared terminal result;
* **sustained throughput** — back-to-back warm submits per second.

Writes the measurements to ``BENCH_serve.json`` at the repo root (the
committed artifact).  The sweep length defaults to a quarter of
``CCNVM_BENCH_LENGTH`` so the cold run stays a few seconds.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import pytest

from repro.serve.client import ServeClient

from benchmarks.common import BENCH_LENGTH, banner

SERVE_LENGTH = int(
    os.environ.get("CCNVM_SERVE_BENCH_LENGTH", str(max(1000, BENCH_LENGTH // 4)))
)
WARM_SUBMITS = int(os.environ.get("CCNVM_SERVE_BENCH_SUBMITS", "20"))
ARTIFACT = Path(__file__).resolve().parent.parent / "BENCH_serve.json"


@pytest.fixture(scope="module")
def daemon():
    """A real ``repro serve`` subprocess on its own cache dir and port."""
    tmp = tempfile.TemporaryDirectory(prefix="serve-bench-")
    port_file = Path(tmp.name) / "serve.port"
    log_file = Path(tmp.name) / "serve.log"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--port", "0",
            "--port-file", str(port_file),
            "--log-file", str(log_file),
            "--cache-root", str(Path(tmp.name) / "cache"),
            "--quiet",
        ],
    )
    try:
        deadline = time.monotonic() + 30
        while not port_file.exists() or not port_file.read_text().strip():
            assert proc.poll() is None, "daemon exited during startup"
            assert time.monotonic() < deadline, "daemon never wrote its port"
            time.sleep(0.05)
        port = int(port_file.read_text().strip())
        yield ServeClient(f"http://127.0.0.1:{port}", timeout=600)
    finally:
        proc.terminate()
        proc.wait(timeout=10)
        tmp.cleanup()


def submit_and_wait(client: ServeClient, client_name: str, length: int) -> tuple[float, dict]:
    """One full round trip: submit, watch to terminal, fetch the result."""
    started = time.perf_counter()
    envelope = client.run(
        "evaluate", client=client_name, params={"length": length, "seed": 1}
    )
    elapsed = time.perf_counter() - started
    assert envelope["job"]["state"] == "done", envelope["job"]
    return elapsed, envelope


def test_serve_latency(daemon, benchmark):
    client = daemon

    cold_seconds, cold = submit_and_wait(client, "bench-cold", SERVE_LENGTH)
    assert cold["job"]["executed"] == cold["job"]["total"] == 40

    warm_seconds, warm = submit_and_wait(client, "bench-warm", SERVE_LENGTH)
    assert warm["job"]["executed"] == 0
    assert warm["job"]["cache_hits"] == 40
    assert warm_seconds < 1.0, (
        f"warm-cache submit took {warm_seconds:.3f}s (must be < 1s)"
    )

    # Coalesced rider: submit a fresh (cold) sweep without waiting, then
    # ride it from a second client while it runs.
    rider_length = SERVE_LENGTH + 1
    descriptor = client.submit(
        "evaluate", client="bench-lead", params={"length": rider_length, "seed": 1}
    )
    rider_started = time.perf_counter()
    rider = client.run(
        "evaluate", client="bench-rider", params={"length": rider_length, "seed": 1}
    )
    coalesced_seconds = time.perf_counter() - rider_started
    assert rider["job"]["job_id"] == descriptor["job_id"], "rider was not coalesced"
    assert rider["job"]["coalesced"] >= 1

    # Sustained warm submit rate, with the benchmark fixture timing one
    # representative round trip as well.
    benchmark.pedantic(
        submit_and_wait,
        args=(client, "bench-sustained", SERVE_LENGTH),
        rounds=1,
        iterations=1,
    )
    throughput_started = time.perf_counter()
    for i in range(WARM_SUBMITS):
        submit_and_wait(client, f"bench-sustained-{i}", SERVE_LENGTH)
    throughput_wall = time.perf_counter() - throughput_started
    submits_per_second = WARM_SUBMITS / throughput_wall

    document = {
        "benchmark": "serve",
        "config": {
            "length": SERVE_LENGTH,
            "seed": 1,
            "cells": 40,
            "warm_submits": WARM_SUBMITS,
        },
        "latency_seconds": {
            "cold": round(cold_seconds, 4),
            "warm": round(warm_seconds, 4),
            "coalesced_rider": round(coalesced_seconds, 4),
        },
        "throughput": {
            "warm_submits": WARM_SUBMITS,
            "wall_seconds": round(throughput_wall, 4),
            "submits_per_second": round(submits_per_second, 2),
        },
    }
    ARTIFACT.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")

    banner(
        f"serve latency ({SERVE_LENGTH} refs x 40 cells):\n"
        f"  cold:            {cold_seconds:8.3f}s\n"
        f"  warm:            {warm_seconds:8.3f}s\n"
        f"  coalesced rider: {coalesced_seconds:8.3f}s\n"
        f"  sustained:       {submits_per_second:8.2f} warm submits/s"
    )
