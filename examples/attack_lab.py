#!/usr/bin/env python3
"""Attack lab: every integrity attack of the threat model, demonstrated.

Walks the three attack classes (spoofing, splicing, replay) against a
cc-NVM machine, at runtime and across crashes, and contrasts cc-NVM's
locate-the-block recovery with Osiris Plus's detect-only recovery — the
comparison the paper leads with.

Run:  python examples/attack_lab.py
"""

from repro import IntegrityError, SecureMemory


def banner(title: str) -> None:
    print(f"\n=== {title} " + "=" * max(0, 60 - len(title)))


def fresh_machine(scheme: str = "ccnvm") -> SecureMemory:
    mem = SecureMemory(scheme, data_capacity=1 << 22, seed=42)
    for i, text in enumerate(
        (b"general ledger", b"patient records", b"session keys")
    ):
        mem.store(0x1000 + i * 0x4000, text)
    mem.flush()
    return mem


def cold_caches(mem: SecureMemory) -> None:
    """Empty every on-chip cache so the next access re-reads (and
    re-verifies) the NVM image — on-chip copies are trusted by design,
    so a demo of *detection* must go through memory."""
    mem.hierarchy.l1.drop_all()
    mem.hierarchy.l2.drop_all()
    mem.scheme.meta.crash()


def runtime_spoofing() -> None:
    banner("runtime spoofing: caught on the very next read")
    mem = fresh_machine()
    mem.attacker().spoof_data(0x1000)
    cold_caches(mem)
    try:
        mem.load(0x1000, 14)
        raise SystemExit("UNDETECTED — this must never happen")
    except IntegrityError as err:
        print(f"read raised IntegrityError: {err}")


def runtime_splicing() -> None:
    banner("runtime splicing: authentic data at the wrong address")
    mem = fresh_machine()
    mem.attacker().splice_data(0x1000, 0x5000)
    cold_caches(mem)
    try:
        mem.load(0x5000, 14)
        raise SystemExit("UNDETECTED — this must never happen")
    except IntegrityError as err:
        print(f"read raised IntegrityError: {err}")


def post_crash_location() -> None:
    banner("crash + spoofing: cc-NVM locates the exact tampered block")
    mem = fresh_machine()
    mem.store(0x9000, b"written this epoch, not yet committed")
    mem.persist(0x9000, 64)
    mem.attacker().spoof_data(0x1000)
    mem.crash()
    report = mem.recover()
    print(f"recovery success={report.success} (attack present)")
    for finding in report.findings:
        where = hex(finding.address) if finding.address is not None else finding.node
        print(f"  finding: {finding.kind} at {where}")
    print("  every OTHER block remains usable:",
          mem.load(0x9000, 37))


def replay_window_and_nwb() -> None:
    banner("the deferred-spreading replay window (Section 4.3)")
    mem = fresh_machine()
    attacker = mem.attacker()
    snapshot = attacker.record()  # adversary captures the committed state
    mem.store(0x1000, b"NEWER value")  # written inside the next epoch
    mem.persist(0x1000, 64)
    mem.crash()  # before the epoch commits
    attacker.replay_data(snapshot, 0x1000)  # roll the block back
    report = mem.recover()
    print(f"potential replay detected: {report.potential_replay_detected}")
    print(f"  Nwb (write-backs since commit) = {report.nwb}, "
          f"Nretry (counter roll-forwards)  = {report.total_retries}")
    print("  -> mismatch exposes the rollback even though data, HMAC,"
          " counter and tree are all mutually consistent")


def osiris_cannot_locate() -> None:
    banner("same attack against Osiris Plus: detected, not located")
    mem = fresh_machine("osiris_plus")
    attacker = mem.attacker()
    snapshot = attacker.record()
    mem.store(0x1000, b"NEWER value")
    mem.persist(0x1000, 64)
    mem.crash()
    attacker.replay_data(snapshot, 0x1000)
    report = mem.recover()
    print(f"detected: {report.potential_replay_detected}; findings with a "
          f"location: {[f for f in report.findings if f.address or f.node]}")
    for note in report.notes:
        print(f"  note: {note}")


def main() -> None:
    runtime_spoofing()
    runtime_splicing()
    post_crash_location()
    replay_window_and_nwb()
    osiris_cannot_locate()
    print("\nall attacks detected; cc-NVM additionally located every "
          "locatable one.")


if __name__ == "__main__":
    main()
