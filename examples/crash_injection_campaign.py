#!/usr/bin/env python3
"""Crash-injection campaign: recovery correctness at every cut point.

Replays the same write-back stream on a cc-NVM machine and injects a
power failure after every k-th operation (for a sweep of k), verifying
after each crash that (1) recovery succeeds cleanly, (2) every block the
application persisted reads back exactly, and (3) the recovery effort
(data-HMAC retries) stays within the bound the update-times limit N
guarantees.  This is the systematic version of the single-crash demos.

Run:  python examples/crash_injection_campaign.py
"""

import random

from repro.common.config import SystemConfig
from repro.core.schemes import create_scheme

CAPACITY = 1 << 22
STEPS = 160
CUT_POINTS = range(10, STEPS, 25)


def workload(seed: int):
    """A deterministic write-back stream with a hot set."""
    rng = random.Random(seed)
    steps = []
    for i in range(STEPS):
        page = rng.randrange(12)
        block = rng.randrange(6)
        steps.append((page * 4096 + block * 64, bytes([i % 256]) * 64))
    return steps


def run_until(cut: int, config: SystemConfig):
    scheme = create_scheme("ccnvm", config, CAPACITY, seed=99)
    written = {}
    t = 0
    for addr, data in workload(7)[:cut]:
        scheme.writeback(t, addr, data)
        written[addr] = data
        t += 400
    return scheme, written, t


def main() -> None:
    config = SystemConfig()
    n_limit = config.epoch.update_limit
    print(f"injecting crashes at {len(list(CUT_POINTS))} cut points "
          f"(update-times limit N = {n_limit})\n")
    print(f"{'cut':>5} {'success':>8} {'retries':>8} {'nwb':>5} "
          f"{'max-retry-ok':>13} {'data-intact':>12}")

    for cut in CUT_POINTS:
        scheme, written, t = run_until(cut, config)
        scheme.crash()
        report = scheme.recover()
        intact = all(
            scheme.read(t + i * 400, addr)[0] == data
            for i, (addr, data) in enumerate(written.items())
        )
        # Per-block retries are individually bounded by N; the recovery
        # total equals Nwb when no attack happened.
        bounded = report.total_retries <= report.nwb <= cut
        print(f"{cut:>5} {report.success!s:>8} {report.total_retries:>8} "
              f"{report.nwb:>5} {bounded!s:>13} {intact!s:>12}")
        assert report.success and report.clean and intact and bounded

    print("\nevery cut point recovered cleanly with exact data.")


if __name__ == "__main__":
    main()
