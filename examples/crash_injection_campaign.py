#!/usr/bin/env python3
"""Crash-injection campaign: the differential recovery oracle in action.

Sweeps the named micro-step crash sites (``repro faults sites`` lists
them) across the four consistent designs plus the w/o CC baseline, plus
the NVM media-fault phase, and checks each outcome against the design's
documented contract:

* cc-NVM (with and without deferred spreading) recovers from *every*
  reachable micro-step, including crashes injected into recovery itself;
* SC and Osiris Plus recover everywhere except the one window where the
  data block is durable but the tree root has not caught up — there the
  crash is indistinguishable from a replay and they (honestly) alarm;
* w/o CC degrades: with per-block staleness past the update-times limit
  N the counters are unrecoverable, and recovery says which blocks died.

Run:  python examples/crash_injection_campaign.py [--full]

The default is the CI-sized smoke campaign; ``--full`` sweeps all five
designs with the longer workload (a minute or two).
"""

import sys

from repro.faults import CampaignConfig, run_campaign


def main() -> None:
    cfg = CampaignConfig() if "--full" in sys.argv[1:] else CampaignConfig.smoke()
    print(f"schemes: {', '.join(cfg.schemes)}; workload: {cfg.steps} "
          f"write-backs over an 8-block hot set\n")
    result = run_campaign(cfg)
    print(result.summary())
    if not result.passed:
        raise SystemExit(1)
    recovered = sum(1 for r in result.injections if r.outcome == "RECOVERED")
    print(f"\n{len(result.sites_fired())} distinct crash sites fired; "
          f"{recovered} injections recovered with data intact; "
          f"every outcome matched its design's contract.")


if __name__ == "__main__":
    main()
