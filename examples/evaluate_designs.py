#!/usr/bin/env python3
"""Reproduce the paper's evaluation at a chosen scale.

Runs the Figure 5 matrix (eight SPEC-2006 surrogates x five designs) and
prints the IPC and write-traffic tables plus the headline numbers; with
``--sweep`` it adds the Figure 6 sensitivity panels.  This is the same
pipeline the benchmark harness uses — see ``benchmarks/`` for the
assertion-checked versions and EXPERIMENTS.md for recorded results.

Simulations go through the run orchestrator: ``--jobs N`` fans the
matrix out over worker processes, and completed cells are replayed from
the content-addressed cache under ``.repro-cache/`` on the next
invocation (disable with ``--no-cache``).

Run:  python examples/evaluate_designs.py [--length N] [--jobs N] [--sweep]
      (default length 4000 finishes in ~1 minute; 12000 matches the
      recorded benchmark runs)
"""

import argparse

from repro.analysis import experiments
from repro.analysis.report import headline_numbers, ipc_table, write_traffic_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--length", type=int, default=4000,
                        help="memory references per workload surrogate")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for the simulation matrix")
    parser.add_argument("--no-cache", action="store_true",
                        help="skip the on-disk result cache")
    parser.add_argument("--sweep", action="store_true",
                        help="also run the Figure 6 sensitivity sweeps")
    args = parser.parse_args()
    run = {"jobs": args.jobs, "cache": not args.no_cache}

    print(f"running Figure 5 matrix (8 workloads x 5 designs, "
          f"{args.length} refs each, jobs={args.jobs})...")
    comparisons = experiments.figure5_comparisons(args.length, args.seed, **run)

    print()
    print(ipc_table(comparisons).render())
    print()
    print(write_traffic_table(comparisons).render())
    print()
    print("headline numbers (paper vs this run):")
    print(headline_numbers(comparisons).render())

    if args.sweep:
        print("\nrunning Figure 6 sweeps...")
        print()
        print(experiments.figure6a(
            length=args.length, seed=args.seed, **run).render())
        print()
        print(experiments.figure6b(
            length=args.length, seed=args.seed, **run).render())


if __name__ == "__main__":
    main()
