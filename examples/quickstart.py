#!/usr/bin/env python3
"""Quickstart: a secure, crash-consistent NVM in five minutes.

Creates a cc-NVM machine with the paper's configuration, stores data
through the full pipeline (caches -> counter-mode encryption -> data
HMACs -> Merkle-tree-protected counters -> PCM), survives a power
failure, and shows what the attacker actually sees in memory.

Run:  python examples/quickstart.py
"""

from repro import SecureMemory


def main() -> None:
    # A cc-NVM machine.  The default device is the paper's 16 GB PCM
    # (stored sparsely, so this is cheap); `data_capacity` scales it down.
    mem = SecureMemory(scheme="ccnvm")
    print(f"secure NVM ready: {mem.capacity >> 30} GB, scheme = ccnvm")

    # -- ordinary persistent-memory usage ---------------------------------
    mem.store(0x1000, b"account balance: 1432.17")
    mem.store(0x2000, b"audit log entry #1")
    mem.persist(0x1000, 64)  # clwb-style durability point
    mem.persist(0x2000, 64)
    print("stored and persisted two records")

    # -- what the adversary sees ------------------------------------------
    ciphertext = mem.attacker().observe(0x1000)
    print(f"attacker reads NVM at 0x1000: {ciphertext[:24].hex()}... "
          "(counter-mode ciphertext, no plaintext)")

    # -- power failure ------------------------------------------------------
    mem.crash()
    print("power failure! all caches and volatile metadata lost")

    report = mem.recover()
    print(f"recovery: success={report.success}, clean={report.clean}, "
          f"counters rolled forward on {report.recovered_blocks} block(s) "
          f"with {report.total_retries} data-HMAC retries")

    balance = mem.load(0x1000, 24)
    print(f"data after recovery: {balance!r}")
    assert balance == b"account balance: 1432.17"

    # -- the machine keeps statistics everywhere ---------------------------
    mem.flush()  # commit the open epoch so metadata traffic is visible
    writes = mem.nvm_writes()
    print(f"NVM write traffic by region: {writes}")


if __name__ == "__main__":
    main()
