#!/usr/bin/env python3
"""A crash-safe key-value store on secure NVM.

The workload the paper's introduction motivates: an application that
"stores and manipulates persistent data in-place in memory".  This
example builds a small hash-table KV store directly on
:class:`~repro.core.api.SecureMemory`, with a write-ahead commit flag so
*application-level* consistency composes with cc-NVM's *metadata-level*
crash consistency.  A power failure mid-update loses at most the
uncommitted record — never the store's integrity, and never silently.

Run:  python examples/secure_kv_store.py
"""

from __future__ import annotations

import zlib

from repro import SecureMemory

BUCKETS = 256
SLOT_SIZE = 128  # 1 byte valid + 1 byte klen + 2 bytes vlen + payloads
HEADER = 4


class SecureKVStore:
    """A fixed-geometry persistent hash table over SecureMemory."""

    def __init__(self, memory: SecureMemory) -> None:
        self.memory = memory

    def _slot_addr(self, key: bytes) -> int:
        return (zlib.crc32(key) % BUCKETS) * SLOT_SIZE

    def put(self, key: bytes, value: bytes) -> None:
        """Insert/update one record with a two-step durable commit."""
        if len(key) > 60 or len(value) > SLOT_SIZE - HEADER - 60:
            raise ValueError("record too large for a slot")
        addr = self._slot_addr(key)
        record = (
            bytes([0, len(key)])
            + len(value).to_bytes(2, "little")
            + key
            + value
        )
        # Step 1: write the record with the valid flag CLEAR, persist.
        self.memory.store(addr, record.ljust(SLOT_SIZE, b"\x00"))
        self.memory.persist(addr, SLOT_SIZE)
        # Step 2: set the valid flag and persist again — the commit point.
        self.memory.store(addr, b"\x01")
        self.memory.persist(addr, 1)

    def get(self, key: bytes) -> bytes | None:
        """Look one record up; None when absent or uncommitted."""
        addr = self._slot_addr(key)
        header = self.memory.load(addr, HEADER)
        if header[0] != 1:
            return None
        klen = header[1]
        vlen = int.from_bytes(header[2:4], "little")
        stored_key = self.memory.load(addr + HEADER, klen)
        if stored_key != key:
            return None  # collision with a different key
        return self.memory.load(addr + HEADER + klen, vlen)


def main() -> None:
    mem = SecureMemory("ccnvm", data_capacity=1 << 20, seed=7)
    store = SecureKVStore(mem)

    print("populating the store...")
    records = {
        b"alice": b"balance=1200",
        b"bob": b"balance=87",
        b"carol": b"balance=5530",
    }
    for key, value in records.items():
        store.put(key, value)

    print("power failure mid-operation...")
    # An update that crashes between step 1 and step 2: the new record is
    # written but never committed.
    addr = store._slot_addr(b"dave")
    record = bytes([0, 4, 12, 0]) + b"dave" + b"balance=9999"
    mem.store(addr, record.ljust(SLOT_SIZE, b"\x00"))
    mem.persist(addr, SLOT_SIZE)
    mem.crash()

    report = mem.recover()
    print(f"cc-NVM recovery: success={report.success}, "
          f"retries={report.total_retries}")

    print("\nstate after recovery:")
    for key in (b"alice", b"bob", b"carol", b"dave"):
        value = store.get(key)
        status = value.decode() if value else "(not committed)"
        print(f"  {key.decode():6s} -> {status}")

    assert store.get(b"alice") == b"balance=1200"
    assert store.get(b"dave") is None  # torn update correctly invisible

    print("\nupdating after recovery works normally:")
    store.put(b"dave", b"balance=41")
    print(f"  dave   -> {store.get(b'dave').decode()}")

    mem.flush()  # commit the open epoch so metadata traffic is visible
    writes = mem.nvm_writes()
    total = sum(writes.values())
    meta = writes.get("counter", 0) + writes.get("merkle", 0)
    print(f"\nNVM writes: {total} total, {meta} metadata "
          f"({meta / total:.1%} overhead for full crash-consistent security)")


if __name__ == "__main__":
    main()
