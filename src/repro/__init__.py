"""cc-NVM: secure NVM with crash consistency, write-efficiency and
high performance — a full reproduction of the DAC 2019 paper.

The package implements, from scratch, every layer of the paper's system:

* counter-mode encryption and Bonsai-Merkle-Tree authentication over a
  16 GB (sparse) PCM model (:mod:`repro.crypto`, :mod:`repro.metadata`,
  :mod:`repro.mem`);
* the five evaluated designs — w/o CC, SC, Osiris Plus, cc-NVM w/o DS and
  cc-NVM — behind one scheme interface (:mod:`repro.core.schemes`);
* crash injection, attack injection and the four-step recovery of
  Section 4.4 (:mod:`repro.core`);
* a trace-driven CPU + cache-hierarchy timing model and the SPEC-2006-
  inspired workload profiles driving the paper's figures
  (:mod:`repro.sim`, :mod:`repro.workloads`).

Entry points:

* :class:`SecureMemory` — byte-granular secure memory facade;
* :func:`run_simulation` / :func:`run_design_comparison` — the evaluation
  pipeline behind Figures 5 and 6;
* :func:`create_scheme` — direct access to one design.
"""

from repro.common.config import SystemConfig, paper_config
from repro.core.api import SecureMemory
from repro.core.attacks import Attacker
from repro.core.recovery import AttackFinding, RecoveryReport
from repro.core.schemes import SCHEME_LABELS, SCHEMES, create_scheme
from repro.metadata.metacache import IntegrityError
from repro.sim.runner import (
    DesignComparison,
    SimulationResult,
    run_design_comparison,
    run_simulation,
)
from repro.sim.trace import Trace, TraceRecord
from repro.workloads.spec import SPEC_ORDER, SPEC_PROFILES, all_spec_traces, spec_trace

__version__ = "1.0.0"

__all__ = [
    "Attacker",
    "AttackFinding",
    "DesignComparison",
    "IntegrityError",
    "RecoveryReport",
    "SCHEME_LABELS",
    "SCHEMES",
    "SPEC_ORDER",
    "SPEC_PROFILES",
    "SecureMemory",
    "SimulationResult",
    "SystemConfig",
    "Trace",
    "TraceRecord",
    "all_spec_traces",
    "create_scheme",
    "paper_config",
    "run_design_comparison",
    "run_simulation",
    "spec_trace",
    "__version__",
]
