"""Experiment drivers for every figure in the paper's evaluation.

Each function regenerates one figure's data end to end — workload
generation, parameter sweep, baseline, normalization — and returns the
table/series objects from :mod:`repro.analysis.report`.  The benchmark
harness under ``benchmarks/`` is a thin timing/assertion wrapper around
these; the example scripts call them directly.

Every driver expresses its grid as :class:`~repro.runs.spec.RunSpec`s
and submits through :func:`repro.runs.run_specs`, so the same call can
run serially (``jobs=1``, the default), fan out across a worker pool
(``jobs=N``), and/or reuse the content-addressed on-disk cache
(``cache=True``) — results are identical in all cases because a spec's
content hash *is* its identity.

Scale note: the paper simulates 500 M instructions per benchmark in gem5.
These drivers default to tens of thousands of memory references per
workload — enough for the cache, epoch and traffic statistics to
stabilize — and accept a ``length`` parameter to trade fidelity for time.
"""

from __future__ import annotations

from repro.analysis.report import (
    FigureTable,
    HeadlineNumbers,
    SensitivitySeries,
    headline_numbers,
    ipc_table,
    write_traffic_table,
)
from repro.common.config import SystemConfig
from repro.runs import RunReport, orchestrate, simulation_spec
from repro.sim.runner import DesignComparison
from repro.workloads.spec import SPEC_ORDER

#: Default memory references per workload surrogate.
DEFAULT_LENGTH = 12_000

#: The five designs of the Figure 5 matrix (baseline first).
FIGURE5_DESIGNS = ["no_cc", "sc", "osiris_plus", "ccnvm_no_ds", "ccnvm"]

#: The three designs Figure 6 sweeps.
FIGURE6_SCHEMES = ["osiris_plus", "ccnvm_no_ds", "ccnvm"]

#: Representative subset for the sensitivity sweeps (one workload per
#: behaviour class keeps the sweep tractable; pass ``workloads=SPEC_ORDER``
#: for the full suite).
FIGURE6_WORKLOADS = ["lbm", "gcc", "milc"]


def _result_from_payload(payload) -> "SimulationResult":  # noqa: F821
    from repro.analysis.export import result_from_dict

    return result_from_dict(payload)


def figure5_comparisons(
    length: int = DEFAULT_LENGTH,
    seed: int = 1,
    config: SystemConfig | None = None,
    workloads: list[str] | None = None,
    jobs: int = 1,
    cache: bool = False,
    cache_root=None,
    timeout: float | None = None,
    progress=None,
    report_out: list | None = None,
) -> dict[str, DesignComparison]:
    """Run every Figure 5 (workload x design) cell once.

    *report_out*, when given a list, receives the orchestration
    :class:`~repro.runs.RunReport` (wall time, cache accounting) so
    callers like ``repro evaluate`` can surface it.
    """
    names = workloads or SPEC_ORDER
    grid = [
        (name, scheme, simulation_spec(scheme, name, length, seed, config=config))
        for name in names
        for scheme in FIGURE5_DESIGNS
    ]
    report = orchestrate(
        "fig5",
        [spec for _, _, spec in grid],
        jobs=jobs,
        use_cache=cache,
        cache_root=cache_root,
        timeout=timeout,
        progress=progress,
    )
    report.raise_on_failure()
    if report_out is not None:
        report_out.append(report)
    comparisons: dict[str, DesignComparison] = {}
    for name in names:
        results = {
            scheme: _result_from_payload(report.payload(spec))
            for wl, scheme, spec in grid
            if wl == name
        }
        comparisons[name] = DesignComparison(workload=name, results=results)
    return comparisons


def figure5a(
    comparisons: dict[str, DesignComparison] | None = None,
    length: int = DEFAULT_LENGTH,
    seed: int = 1,
) -> FigureTable:
    """Figure 5(a): normalized IPC per benchmark and design."""
    comparisons = comparisons or figure5_comparisons(length, seed)
    return ipc_table(comparisons)


def figure5b(
    comparisons: dict[str, DesignComparison] | None = None,
    length: int = DEFAULT_LENGTH,
    seed: int = 1,
) -> FigureTable:
    """Figure 5(b): normalized NVM write traffic per benchmark and design."""
    comparisons = comparisons or figure5_comparisons(length, seed)
    return write_traffic_table(comparisons)


def headline(
    comparisons: dict[str, DesignComparison] | None = None,
    length: int = DEFAULT_LENGTH,
    seed: int = 1,
) -> HeadlineNumbers:
    """The abstract's scalars, measured."""
    comparisons = comparisons or figure5_comparisons(length, seed)
    return headline_numbers(comparisons)


def motivation(
    length: int = DEFAULT_LENGTH,
    seed: int = 1,
    config: SystemConfig | None = None,
    jobs: int = 1,
    cache: bool = False,
) -> tuple[float, float]:
    """Section 2.3's naive-approach numbers.

    Returns ``(sc_performance_loss, sc_write_amplification)`` — the paper
    reports 41.4 % and 5.5x.
    """
    comparisons = figure5_comparisons(length, seed, config, jobs=jobs, cache=cache)
    table_ipc = ipc_table(comparisons)
    table_writes = write_traffic_table(comparisons)
    return 1.0 - table_ipc.average("sc"), table_writes.average("sc")


def _sensitivity(
    parameter: str,
    values: list[int],
    make_config,
    title: str,
    length: int,
    seed: int,
    workloads: list[str],
    schemes: list[str],
    jobs: int = 1,
    cache: bool = False,
    cache_root=None,
    timeout: float | None = None,
    progress=None,
    report_out: list | None = None,
) -> SensitivitySeries:
    """One Figure 6 panel as a single orchestrated grid.

    The whole (value x scheme x workload) grid — baselines included — is
    submitted at once, so the pool keeps every worker busy across swept
    values instead of synchronizing per point.
    """
    run_schemes = (["no_cc"] if "no_cc" not in schemes else []) + list(schemes)
    grid = {}
    for value in values:
        config = make_config(value)
        for scheme in run_schemes:
            for name in workloads:
                grid[(value, scheme, name)] = simulation_spec(
                    scheme, name, length, seed, config=config
                )
    report = orchestrate(
        f"fig6-{parameter}",
        list(grid.values()),
        jobs=jobs,
        use_cache=cache,
        cache_root=cache_root,
        timeout=timeout,
        progress=progress,
    )
    report.raise_on_failure()
    if report_out is not None:
        report_out.append(report)

    def result(value, scheme, name):
        return _result_from_payload(report.payload(grid[(value, scheme, name)]))

    series = SensitivitySeries(title=title, parameter=parameter)
    for value in values:
        baselines = {name: result(value, "no_cc", name) for name in workloads}
        for scheme in schemes:
            ipc_ratios = []
            write_ratios = []
            for name in workloads:
                cell = result(value, scheme, name)
                ipc_ratios.append(cell.ipc / baselines[name].ipc)
                write_ratios.append(cell.nvm_writes / baselines[name].nvm_writes)
            series.add_point(
                value,
                scheme,
                ipc=sum(ipc_ratios) / len(ipc_ratios),
                writes=sum(write_ratios) / len(write_ratios),
            )
    return series


def figure6a(
    values: list[int] | None = None,
    length: int = DEFAULT_LENGTH,
    seed: int = 1,
    workloads: list[str] | None = None,
    schemes: list[str] | None = None,
    **run_kwargs,
) -> SensitivitySeries:
    """Figure 6(a): sweep the update-times limit N (M fixed at 64)."""
    return _sensitivity(
        parameter="N",
        values=values or [4, 8, 16, 32, 64],
        make_config=lambda n: SystemConfig().with_epoch(update_limit=n),
        title="Figure 6(a): impact of the update-times limit N (M=64)",
        length=length,
        seed=seed,
        workloads=workloads or FIGURE6_WORKLOADS,
        schemes=schemes or FIGURE6_SCHEMES,
        **run_kwargs,
    )


def figure6b(
    values: list[int] | None = None,
    length: int = DEFAULT_LENGTH,
    seed: int = 1,
    workloads: list[str] | None = None,
    schemes: list[str] | None = None,
    **run_kwargs,
) -> SensitivitySeries:
    """Figure 6(b): sweep the dirty-address-queue entries M (N fixed at 16).

    M is bounded by the 64-entry WPQ ("it must be less than 64"), hence
    the paper's 32..64 sweep.
    """
    return _sensitivity(
        parameter="M",
        values=values or [32, 40, 48, 56, 64],
        make_config=lambda m: SystemConfig().with_epoch(dirty_queue_entries=m),
        title="Figure 6(b): impact of the dirty-address-queue entries M (N=16)",
        length=length,
        seed=seed,
        workloads=workloads or FIGURE6_WORKLOADS,
        schemes=schemes or ["ccnvm_no_ds", "ccnvm"],
        **run_kwargs,
    )


def meta_cache_sweep(
    sizes_kb: list[int] | None = None,
    length: int = DEFAULT_LENGTH,
    seed: int = 1,
    workloads: list[str] | None = None,
    **run_kwargs,
) -> SensitivitySeries:
    """Ablation: how much the paper's premise — metadata caching — buys.

    Sweeps the shared counter/Merkle meta cache (the paper fixes 128 KB)
    for cc-NVM, normalized per point against w/o CC at the *same* size so
    the series isolates the consistency overhead rather than raw caching.
    """
    from dataclasses import replace

    from repro.common.config import CacheConfig

    def make_config(size_kb: int) -> SystemConfig:
        base = SystemConfig()
        meta = CacheConfig(
            size_bytes=size_kb * 1024,
            associativity=8,
            hit_latency=32,
            name="meta",
            hashed_sets=True,
        )
        return replace(base, security=replace(base.security, meta_cache=meta))

    return _sensitivity(
        parameter="meta_kb",
        values=sizes_kb or [16, 32, 64, 128, 256],
        make_config=make_config,
        title="Ablation: meta cache size (cc-NVM, normalized to w/o CC)",
        length=length,
        seed=seed,
        workloads=workloads or FIGURE6_WORKLOADS,
        schemes=["ccnvm"],
        **run_kwargs,
    )


def deferred_spreading_ablation(
    length: int = DEFAULT_LENGTH,
    seed: int = 1,
    config: SystemConfig | None = None,
    workloads: list[str] | None = None,
    jobs: int = 1,
    cache: bool = False,
    cache_root=None,
) -> dict[str, dict[str, float]]:
    """DESIGN.md's ablation: what deferred spreading actually saves.

    Returns, per workload, the counter-HMAC computation counts of cc-NVM
    with and without DS, their ratio, and the IPC ratio between the two.
    """
    names = workloads or FIGURE6_WORKLOADS
    grid = {
        (scheme, name): simulation_spec(scheme, name, length, seed, config=config)
        for scheme in ("ccnvm", "ccnvm_no_ds")
        for name in names
    }
    report = orchestrate(
        "ablation-ds",
        list(grid.values()),
        jobs=jobs,
        use_cache=cache,
        cache_root=cache_root,
    )
    report.raise_on_failure()
    results: dict[str, dict[str, float]] = {}
    for name in names:
        with_ds = _result_from_payload(report.payload(grid[("ccnvm", name)]))
        without = _result_from_payload(report.payload(grid[("ccnvm_no_ds", name)]))
        results[name] = {
            "hmacs_with_ds": with_ds.counter_hmacs,
            "hmacs_without_ds": without.counter_hmacs,
            "hmac_savings": 1.0 - with_ds.counter_hmacs / max(1, without.counter_hmacs),
            "ipc_gain": with_ds.ipc / without.ipc - 1.0,
        }
    return results


# Re-exported for callers that previously imported the orchestration-free
# report type from here.
__all__ = [
    "DEFAULT_LENGTH",
    "FIGURE5_DESIGNS",
    "FIGURE6_SCHEMES",
    "FIGURE6_WORKLOADS",
    "RunReport",
    "deferred_spreading_ablation",
    "figure5_comparisons",
    "figure5a",
    "figure5b",
    "figure6a",
    "figure6b",
    "headline",
    "meta_cache_sweep",
    "motivation",
]
