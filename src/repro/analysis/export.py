"""Export figure data for external plotting.

The in-repo rendering is ASCII (no plotting dependency); real papers get
re-plotted, so every table/series exports to CSV and JSON with stable
column names.  ``ascii_bars`` additionally renders a Figure-5-style
grouped bar chart directly in the terminal.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import asdict, fields

from repro.analysis.report import FigureTable, SensitivitySeries
from repro.core.schemes import SCHEME_LABELS
from repro.sim.runner import SimulationResult


def result_to_dict(result: SimulationResult) -> dict:
    """Flatten a :class:`SimulationResult` into a JSON-able dict.

    This is the serialization shared by the run cache, the run journal
    and the ``BENCH_fig5.json`` artifact, so it must (and does) survive
    an exact round-trip through :func:`result_from_dict`.
    """
    return asdict(result)


def result_from_dict(data: dict) -> SimulationResult:
    """Rebuild a :class:`SimulationResult` from :func:`result_to_dict`."""
    known = {f.name for f in fields(SimulationResult)}
    unknown = set(data) - known
    if unknown:
        raise ValueError(f"unknown SimulationResult fields: {sorted(unknown)}")
    return SimulationResult(**data)


def result_to_json(result: SimulationResult) -> str:
    """Canonical JSON document for one simulation result."""
    return json.dumps(result_to_dict(result), indent=2, sort_keys=True)


def result_from_json(text: str) -> SimulationResult:
    """Inverse of :func:`result_to_json`."""
    return result_from_dict(json.loads(text))


def fig5_bench_document(comparisons, run_meta: dict | None = None) -> dict:
    """The ``BENCH_fig5.json`` document as a plain dict.

    Carries the full per-cell results (round-trippable), both normalized
    figure tables, the headline scalars, and whatever orchestration
    metadata (wall time, cache accounting, fingerprint) the caller adds.
    This is also the result body a ``repro serve`` evaluate job returns,
    so everything except ``run`` must be a pure function of the matrix —
    byte-identical whether computed by the CLI, the daemon, or a warm
    cache replay.
    """
    from repro.analysis.report import headline_numbers, ipc_table, write_traffic_table

    ipc = ipc_table(comparisons)
    writes = write_traffic_table(comparisons)
    return {
        "benchmark": "fig5",
        "workloads": list(comparisons),
        "results": {
            workload: {
                scheme: result_to_dict(result)
                for scheme, result in cmp.results.items()
            }
            for workload, cmp in comparisons.items()
        },
        "fig5a_ipc": {"rows": ipc.rows, "averages": ipc.averages()},
        "fig5b_writes": {"rows": writes.rows, "averages": writes.averages()},
        "headline": asdict(headline_numbers(comparisons)),
        "run": dict(run_meta or {}),
    }


def fig5_bench_to_json(comparisons, run_meta: dict | None = None) -> str:
    """Serialized :func:`fig5_bench_document` (the committed artifact)."""
    return json.dumps(
        fig5_bench_document(comparisons, run_meta), indent=2, sort_keys=True
    )


def fig5_bench_from_json(text: str) -> dict:
    """Validated inverse of :func:`fig5_bench_to_json`.

    Rebuilds every per-cell :class:`SimulationResult` (schema check) and
    recomputes the figure tables and headline from them, verifying the
    document's derived sections match its raw cells — the round trip the
    serve wire path and CI rely on.  Returns ``workload -> scheme ->
    SimulationResult``.
    """
    from repro.analysis.report import headline_numbers, ipc_table, write_traffic_table
    from repro.sim.runner import DesignComparison

    document = json.loads(text)
    if document.get("benchmark") != "fig5":
        raise ValueError(f"not a fig5 document: {document.get('benchmark')!r}")
    # Rebuild in the document's recorded workload order, not JSON's
    # sorted key order: the table averages sum floats across workloads,
    # and float addition is order-sensitive in the last bits.
    workloads = document.get("workloads") or []
    if sorted(workloads) != sorted(document["results"]):
        raise ValueError("fig5 document workloads disagree with its results")
    results = {
        workload: {
            scheme: result_from_dict(cell)
            for scheme, cell in document["results"][workload].items()
        }
        for workload in workloads
    }
    comparisons = {
        workload: DesignComparison(workload=workload, results=cells)
        for workload, cells in results.items()
    }
    derived = {
        "fig5a_ipc": {
            "rows": ipc_table(comparisons).rows,
            "averages": ipc_table(comparisons).averages(),
        },
        "fig5b_writes": {
            "rows": write_traffic_table(comparisons).rows,
            "averages": write_traffic_table(comparisons).averages(),
        },
        "headline": asdict(headline_numbers(comparisons)),
    }
    for key, expect in derived.items():
        got = document.get(key)
        if json.dumps(got, sort_keys=True) != json.dumps(expect, sort_keys=True):
            raise ValueError(f"fig5 document section {key!r} does not match "
                             "its own raw cells")
    return results


def table_to_csv(table: FigureTable) -> str:
    """CSV with a ``workload`` column plus one column per design."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["workload"] + list(table.schemes))
    for workload, row in table.rows.items():
        writer.writerow([workload] + [f"{row[s]:.6f}" for s in table.schemes])
    writer.writerow(["average"] + [
        f"{table.average(s):.6f}" for s in table.schemes
    ])
    return buffer.getvalue()


def table_to_json(table: FigureTable) -> str:
    """JSON document with rows, averages and display labels."""
    return json.dumps(
        {
            "title": table.title,
            "schemes": list(table.schemes),
            "labels": {s: SCHEME_LABELS.get(s, s) for s in table.schemes},
            "rows": table.rows,
            "averages": table.averages(),
        },
        indent=2,
        sort_keys=True,
    )


def series_to_csv(series: SensitivitySeries) -> str:
    """CSV with parameter value, design, and both metrics per row."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow([series.parameter, "scheme", "normalized_ipc",
                     "normalized_writes"])
    for value in sorted(series.points):
        for scheme, metrics in sorted(series.points[value].items()):
            writer.writerow(
                [value, scheme, f"{metrics['ipc']:.6f}",
                 f"{metrics['writes']:.6f}"]
            )
    return buffer.getvalue()


def series_to_json(series: SensitivitySeries) -> str:
    """JSON document with the swept points per design."""
    return json.dumps(
        {
            "title": series.title,
            "parameter": series.parameter,
            "points": {str(v): m for v, m in sorted(series.points.items())},
        },
        indent=2,
        sort_keys=True,
    )


def campaign_to_json(result) -> str:
    """JSON document for a fault-campaign result (``CampaignResult``)."""
    return json.dumps(result.to_dict(), indent=2, sort_keys=True)


def campaign_to_csv(result) -> str:
    """CSV with one row per injection, then one per media experiment.

    Media rows reuse the site/hit columns for the fault kind and address,
    so a single flat file carries the whole campaign.
    """
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(
        ["phase", "scheme", "site", "hit", "fired", "outcome", "expected",
         "ok", "total_retries", "nwb", "unrecoverable"]
    )
    for r in result.injections:
        writer.writerow(
            ["injection", r.scheme, r.site, r.hit, int(r.fired), r.outcome,
             r.expected, int(r.ok), r.total_retries, r.nwb, r.unrecoverable]
        )
    for m in result.media:
        writer.writerow(
            ["media", m.scheme, m.kind, f"{m.addr:#x}", 1, m.outcome,
             m.expected, int(m.ok), "", "", ""]
        )
    return buffer.getvalue()


def crash_summary_to_json(summary: dict) -> str:
    """JSON document for a crash exploration (``run_explore`` summary).

    The summary is already pure content — no timings, no cache counters —
    so this serialization is byte-identical across serial, parallel and
    fully-cached runs of the same exploration.
    """
    return json.dumps(summary, indent=2, sort_keys=True)


def campaign_summary_to_json(summary: dict) -> str:
    """JSON document for a crash campaign (``run_campaign`` summary).

    Carries the scheme x workload grid with per-cell class tables
    (fingerprint, representative, witness count, verdict), shard
    failures, and the campaign totals.  Pure content like the
    exploration summary: serial, pooled and warm-cache runs of the same
    campaign serialize byte-identically.
    """
    return json.dumps(summary, indent=2, sort_keys=True)


def reproducer_to_json(repro) -> str:
    """JSON artifact for one minimized crash reproducer (``Reproducer``)."""
    return json.dumps(repro.to_dict(), indent=2, sort_keys=True)


def reproducer_from_json(text: str):
    """Inverse of :func:`reproducer_to_json`."""
    from repro.crashsim import Reproducer

    return Reproducer.from_dict(json.loads(text))


def lint_to_json(report) -> str:
    """JSON document for a persist-order lint run (``LintReport``).

    Same shape as ``repro lint --json``: schema version, run metadata,
    per-rule charters, unbaselined findings, baselined findings and
    stale baseline keys.  Byte-stable for identical trees: findings are
    sorted, keys are sorted, and wall-clock runtime is excluded.
    """
    return json.dumps(report.to_dict(), indent=2, sort_keys=True)


def lint_from_json(text: str):
    """Inverse of :func:`lint_to_json` (schema-checked).

    Rebuilds a ``LintReport`` whose :func:`lint_to_json` rendering is
    byte-identical to *text* — the round trip CI and tooling rely on.
    Rejects documents from a different schema version rather than
    guessing at field meanings.
    """
    from repro.lint.findings import Finding, sort_findings
    from repro.lint.runner import SCHEMA_VERSION, LintReport

    document = json.loads(text)
    version = document.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"lint report schema {version!r} is not the supported "
            f"{SCHEMA_VERSION!r}"
        )
    new = [Finding.from_dict(d) for d in document["findings"]]
    baselined = [Finding.from_dict(d) for d in document["baselined_findings"]]
    counts = document["counts"]
    if counts["new"] != len(new) or counts["baselined"] != len(baselined):
        raise ValueError("lint report counts disagree with its findings")
    return LintReport(
        root=document["root"],
        findings=sort_findings(new + baselined),
        new=new,
        baselined=baselined,
        stale_baseline=list(document["stale_baseline"]),
        baseline_path=document["baseline"],
        files_analyzed=document["files_analyzed"],
    )


def ascii_bars(table: FigureTable, width: int = 40, ceiling: float | None = None) -> str:
    """A grouped horizontal bar chart, one group per workload.

    *ceiling* fixes the full-scale value (defaults to the table maximum),
    so IPC tables naturally scale to 1.0 and traffic tables to the SC
    amplification.
    """
    top = ceiling or max(max(row.values()) for row in table.rows.values())
    label_width = max(len(SCHEME_LABELS.get(s, s)) for s in table.schemes)
    lines = [table.title]
    for workload, row in table.rows.items():
        lines.append(f"{workload}:")
        for scheme in table.schemes:
            value = row[scheme]
            filled = max(0, min(width, round(value / top * width)))
            bar = "#" * filled + "." * (width - filled)
            label = SCHEME_LABELS.get(scheme, scheme)
            lines.append(f"  {label:<{label_width}} |{bar}| {value:.2f}")
    return "\n".join(lines)
