"""Result tables in the shape of the paper's figures.

The benchmark harness produces :class:`~repro.sim.runner.DesignComparison`
objects; this module renders them as the rows/series the paper reports —
normalized IPC per benchmark and design (Figure 5(a)), normalized NVM
write traffic (Figure 5(b)), sensitivity series over N and M (Figure 6) —
plus the headline scalars quoted in the abstract and Sections 2.3/5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.schemes import SCHEME_LABELS
from repro.sim.runner import DesignComparison

#: Figure 5's design order (the baseline is the normalization target).
FIGURE5_SCHEMES = ["sc", "osiris_plus", "ccnvm_no_ds", "ccnvm"]


def geometric_mean(values: list[float]) -> float:
    """Geometric mean (the conventional aggregate for normalized ratios)."""
    if not values:
        return 0.0
    product = 1.0
    for v in values:
        product *= v
    return product ** (1.0 / len(values))


@dataclass
class FigureTable:
    """One figure's data: rows = workloads, columns = designs."""

    title: str
    schemes: list[str]
    rows: dict[str, dict[str, float]] = field(default_factory=dict)

    def add_row(self, workload: str, values: dict[str, float]) -> None:
        """Record one workload's series."""
        self.rows[workload] = dict(values)

    def column(self, scheme: str) -> list[float]:
        """All workloads' values for one design (row order)."""
        return [row[scheme] for row in self.rows.values()]

    def average(self, scheme: str) -> float:
        """Geometric-mean aggregate of one design's column."""
        return geometric_mean(self.column(scheme))

    def averages(self) -> dict[str, float]:
        """Geometric-mean aggregate per design."""
        return {scheme: self.average(scheme) for scheme in self.schemes}

    def render(self, fmt: str = "{:>6.3f}") -> str:
        """ASCII table matching the paper's figure layout."""
        labels = [SCHEME_LABELS.get(s, s) for s in self.schemes]
        width = max(12, max((len(w) for w in self.rows), default=12))
        header = f"{'workload':<{width}} " + " ".join(f"{l:>14}" for l in labels)
        lines = [self.title, "=" * len(header), header, "-" * len(header)]
        for workload, row in self.rows.items():
            cells = " ".join(f"{fmt.format(row[s]):>14}" for s in self.schemes)
            lines.append(f"{workload:<{width}} {cells}")
        lines.append("-" * len(header))
        cells = " ".join(f"{fmt.format(self.average(s)):>14}" for s in self.schemes)
        lines.append(f"{'average':<{width}} {cells}")
        return "\n".join(lines)


def ipc_table(
    comparisons: dict[str, DesignComparison],
    schemes: list[str] | None = None,
    title: str = "Figure 5(a): system IPC, normalized to w/o CC",
) -> FigureTable:
    """Build the Figure 5(a) table from per-workload comparisons."""
    schemes = schemes or FIGURE5_SCHEMES
    table = FigureTable(title, schemes)
    for workload, cmp in comparisons.items():
        table.add_row(
            workload, {s: cmp.normalized_ipc(s) for s in schemes}
        )
    return table


def write_traffic_table(
    comparisons: dict[str, DesignComparison],
    schemes: list[str] | None = None,
    title: str = "Figure 5(b): NVM write traffic, normalized to w/o CC",
) -> FigureTable:
    """Build the Figure 5(b) table from per-workload comparisons."""
    schemes = schemes or FIGURE5_SCHEMES
    table = FigureTable(title, schemes)
    for workload, cmp in comparisons.items():
        table.add_row(
            workload, {s: cmp.normalized_writes(s) for s in schemes}
        )
    return table


@dataclass(frozen=True)
class HeadlineNumbers:
    """The scalars the abstract and Sections 1/2.3/5 quote."""

    #: cc-NVM IPC improvement over Osiris Plus (paper: +20.4 %).
    ccnvm_ipc_gain_over_osiris: float
    #: cc-NVM extra NVM write traffic vs the w/o-CC baseline (paper:
    #: 29.6 % in the abstract; Section 5.2 reports 39 % on its mix).
    ccnvm_extra_write_traffic: float
    #: SC performance degradation vs baseline (paper Section 2.3: 41.4 %).
    sc_ipc_loss: float
    #: SC write amplification vs baseline (paper Section 2.3: 5.5x).
    sc_write_amplification: float
    #: cc-NVM IPC loss vs baseline (paper Section 5.1: 18.7 %).
    ccnvm_ipc_loss: float

    def render(self) -> str:
        """Paper-vs-measured summary block."""
        rows = [
            ("cc-NVM IPC gain over Osiris Plus", "+20.4%",
             f"{self.ccnvm_ipc_gain_over_osiris * 100:+.1f}%"),
            ("cc-NVM extra write traffic vs w/o CC", "+29.6%..+39%",
             f"{self.ccnvm_extra_write_traffic * 100:+.1f}%"),
            ("SC performance degradation", "-41.4%",
             f"{-self.sc_ipc_loss * 100:.1f}%"),
            ("SC write amplification", "5.5x",
             f"{self.sc_write_amplification:.2f}x"),
            ("cc-NVM IPC loss vs w/o CC", "-18.7%",
             f"{-self.ccnvm_ipc_loss * 100:.1f}%"),
        ]
        width = max(len(r[0]) for r in rows)
        lines = [f"{'metric':<{width}}  {'paper':>14} {'measured':>12}"]
        for name, paper, measured in rows:
            lines.append(f"{name:<{width}}  {paper:>14} {measured:>12}")
        return "\n".join(lines)


def headline_numbers(
    comparisons: dict[str, DesignComparison],
) -> HeadlineNumbers:
    """Compute the headline scalars from a set of workload comparisons."""
    ipc = ipc_table(comparisons)
    writes = write_traffic_table(comparisons)
    ccnvm_ipc = ipc.average("ccnvm")
    osiris_ipc = ipc.average("osiris_plus")
    return HeadlineNumbers(
        ccnvm_ipc_gain_over_osiris=ccnvm_ipc / osiris_ipc - 1.0,
        ccnvm_extra_write_traffic=writes.average("ccnvm") - 1.0,
        sc_ipc_loss=1.0 - ipc.average("sc"),
        sc_write_amplification=writes.average("sc"),
        ccnvm_ipc_loss=1.0 - ccnvm_ipc,
    )


@dataclass
class SensitivitySeries:
    """One Figure 6 panel: metric vs a swept parameter, per design."""

    title: str
    parameter: str
    points: dict[int, dict[str, dict[str, float]]] = field(default_factory=dict)

    def add_point(
        self, value: int, scheme: str, ipc: float, writes: float
    ) -> None:
        """Record one (parameter value, design) measurement."""
        self.points.setdefault(value, {})[scheme] = {
            "ipc": ipc,
            "writes": writes,
        }

    def series(self, scheme: str, metric: str) -> list[tuple[int, float]]:
        """(parameter, value) pairs for one design and metric."""
        return [
            (value, metrics[scheme][metric])
            for value, metrics in sorted(self.points.items())
            if scheme in metrics
        ]

    def render(self) -> str:
        """ASCII rendering of both metric panels."""
        lines = [self.title]
        schemes = sorted({s for m in self.points.values() for s in m})
        for metric in ("ipc", "writes"):
            lines.append(f"  normalized {metric} vs {self.parameter}:")
            header = f"    {self.parameter:>6} " + " ".join(
                f"{SCHEME_LABELS.get(s, s):>14}" for s in schemes
            )
            lines.append(header)
            for value in sorted(self.points):
                cells = " ".join(
                    f"{self.points[value].get(s, {}).get(metric, float('nan')):>14.3f}"
                    for s in schemes
                )
                lines.append(f"    {value:>6} {cells}")
        return "\n".join(lines)
