"""The traffic headline document: descriptor workloads x schemes.

The trafficgen analogue of ``BENCH_fig5.json``: run every workload
descriptor (ingested trace, interleaved tenants, custom profile) on
every requested scheme through the orchestrator, and fold the results
into one pure-content JSON document.  Like every other headline
artifact, the document carries **no timings and no orchestration
counters** — a serial run, a ``--jobs N`` run and a warm-cache run of
the same workloads serialize byte-identically; the orchestration story
lives in the returned :class:`~repro.runs.orchestrate.RunReport`.

Workloads are keyed by their descriptor's short content label, and the
full canonical descriptor (plus its digest) is embedded per workload,
so the document is self-describing: a reader can re-run any row from
the document alone (given, for ``trace`` descriptors, a store holding
the digest).
"""

from __future__ import annotations

import json
from typing import Mapping

from repro.analysis.export import result_from_dict
from repro.runs import orchestrate
from repro.runs.spec import simulation_spec
from repro.trafficgen.descriptor import (
    descriptor_digest,
    descriptor_label,
    validate_descriptor,
)

#: Document schema version.
TRAFFIC_DOC_VERSION = 1

#: Default scheme set for traffic benches (the Figure-5 design list).
DEFAULT_SCHEMES = ("no_cc", "sc", "osiris_plus", "ccnvm_no_ds", "ccnvm")


def traffic_specs(
    descriptors,
    schemes=DEFAULT_SCHEMES,
    length: int = 20_000,
    seed: int = 1,
    warmup: float = 0.0,
):
    """The spec grid of one traffic bench, in deterministic order.

    Returns ``(rows, specs)`` where each row is
    ``(label, scheme, canonical_descriptor, spec)``.
    """
    rows = []
    specs = []
    for descriptor in descriptors:
        canonical = validate_descriptor(descriptor)
        label = descriptor_label(canonical)
        for scheme in schemes:
            spec = simulation_spec(
                scheme,
                "",
                length,
                seed,
                warmup=warmup,
                workload_descriptor=canonical,
            )
            rows.append((label, scheme, canonical, spec))
            specs.append(spec)
    return rows, specs


def traffic_document(
    descriptors,
    schemes=DEFAULT_SCHEMES,
    length: int = 20_000,
    seed: int = 1,
    warmup: float = 0.0,
    jobs: int = 1,
    cache: bool = True,
    cache_root=None,
    timeout: float | None = None,
    progress=None,
):
    """Run the bench; returns ``(document, RunReport)``."""
    rows, specs = traffic_specs(
        descriptors, schemes=schemes, length=length, seed=seed, warmup=warmup
    )
    report = orchestrate(
        "traffic-bench",
        specs,
        jobs=jobs,
        use_cache=cache,
        cache_root=cache_root,
        timeout=timeout,
        progress=progress,
    )
    report.raise_on_failure()

    workloads: dict[str, dict] = {}
    results: dict[str, dict] = {}
    for label, scheme, canonical, spec in rows:
        if label not in workloads:
            entry = {
                "descriptor": canonical,
                "digest": descriptor_digest(canonical),
            }
            if canonical["kind"] == "interleave":
                from repro.trafficgen.interleave import interleave_attribution

                entry["attribution"] = interleave_attribution(
                    canonical, length, seed
                )
            workloads[label] = entry
        payload = dict(report.payload(spec))
        payload.pop("obs", None)
        result = result_from_dict(payload)
        results.setdefault(label, {})[scheme] = {
            "ipc": result.ipc,
            "cycles": result.cycles,
            "instructions": result.instructions,
            "nvm_writes": result.nvm_writes,
            "nvm_reads": result.nvm_reads,
            "writes_by_region": dict(sorted(result.writes_by_region.items())),
            "llc_writebacks": result.llc_writebacks,
            "epochs": result.epochs,
            "counter_hmacs": result.counter_hmacs,
            "data_hmacs": result.data_hmacs,
        }

    document = {
        "version": TRAFFIC_DOC_VERSION,
        "kind": "traffic-bench",
        "config": {
            "schemes": list(schemes),
            "length": length,
            "seed": seed,
            "warmup": warmup,
        },
        "workloads": {k: workloads[k] for k in sorted(workloads)},
        "results": {
            k: {s: results[k][s] for s in sorted(results[k])}
            for k in sorted(results)
        },
    }
    return document, report


def traffic_document_to_json(document: dict) -> str:
    """Canonical pretty JSON of one traffic document."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def traffic_document_from_json(text: str) -> dict:
    """Parse + sanity-check a traffic document."""
    document = json.loads(text)
    if not isinstance(document, dict) or document.get("kind") != "traffic-bench":
        raise ValueError("not a traffic-bench document")
    version = document.get("version")
    if version != TRAFFIC_DOC_VERSION:
        raise ValueError(
            f"unsupported traffic-bench version {version!r} "
            f"(this build reads {TRAFFIC_DOC_VERSION})"
        )
    for key in ("config", "workloads", "results"):
        if key not in document:
            raise ValueError(f"traffic-bench document is missing {key!r}")
    return document
