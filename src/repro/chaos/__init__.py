"""Deterministic infrastructure-fault injection for the serving stack.

The simulated NVM survives power failures by construction; this package
makes the *host* stack that serves those simulations — worker pool,
result cache, run journal, daemon — survivable and *tested* the same
way:

* :mod:`repro.chaos.plan` — the chaos-site registry (drift-checked
  against the source tree like the fault-site registry) and seeded
  :class:`~repro.chaos.plan.ChaosPlan` schedules that travel through
  ``CCNVM_CHAOS_PLAN`` into spawn workers;
* :mod:`repro.chaos.inject` — the process-global injector behind the
  ``chaos_fire(site)`` hooks threaded through pool/cache/journal/serve;
* :mod:`repro.chaos.campaign` — ``repro chaos run``: drives the real
  service under single-site plans and asserts the global invariants
  (every job terminates, exactly-once resume across a kill, results
  byte-identical to the fault-free baseline once retried to success,
  breaker trips and recovers).
"""

from repro.chaos.inject import ChaosInjector, chaos_fire, install
from repro.chaos.plan import (
    ALL_SITE_NAMES,
    CHAOS_PLAN_ENV,
    SITES,
    ChaosError,
    ChaosPlan,
    ChaosSite,
)

__all__ = [
    "ALL_SITE_NAMES",
    "CHAOS_PLAN_ENV",
    "ChaosError",
    "ChaosInjector",
    "ChaosPlan",
    "ChaosSite",
    "SITES",
    "chaos_fire",
    "install",
]
