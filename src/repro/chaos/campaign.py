"""The chaos campaign: drive the real service under injected faults.

``repro chaos run`` sweeps seeded single-site :class:`ChaosPlan`s over
the full serving stack — worker pool, result cache, run journal, HTTP
front-end — and asserts the global robustness invariants the subsystem
promises:

* **termination** — every submitted job reaches a terminal state; no
  watcher hangs (each event is bounded by a per-event timeout);
* **exactly-once** — across an interrupted sweep and a resume, every
  cell is executed exactly once: the journal holds one fresh record per
  spec and the resumed job's accounting adds up;
* **byte-stability** — once retried to success, the result document is
  byte-identical to a fault-free run (modulo the explicitly non-stable
  ``run`` metadata block);
* **degradation** — the circuit breaker trips after consecutive
  failures, cache-only mode still serves warm work, and the half-open
  probe recovers the service.

Everything is driven through the real :class:`ServeClient` against a
real :class:`SimulationService` + :class:`HttpServer` on an ephemeral
port — the same stack the daemon runs, minus the process boundary (the
CI smoke job adds the process boundary and a genuine SIGKILL on top).
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import shutil
import threading
import time
from dataclasses import dataclass, field

from repro.chaos.inject import ChaosInjector, deactivate, install
from repro.chaos.plan import CHAOS_PLAN_ENV, ChaosPlan
from repro.runs.cache import ResultCache, code_fingerprint
from repro.runs.journal import RunJournal
from repro.runs.orchestrate import run_specs, sweep_journal_path
from repro.runs.spec import simulation_spec
from repro.serve.client import ServeClient, ServeError
from repro.serve.http import HttpServer
from repro.serve.protocol import is_terminal_event
from repro.serve.service import SimulationService

#: The sweep table: one seeded single-site plan per entry.  ``hits``
#: are 1-based per-process visit numbers; worker sites count inside the
#: (short-lived) spawn workers, everything else in the service process.
#: ``evidence`` names how the campaign proves the fault actually fired:
#: ``fires`` (the in-process injector logged it), ``retried`` (the job
#: reports supervision retries — worker faults fire in child processes
#: the parent injector cannot see).
SWEEP_SITES: tuple[dict, ...] = (
    {"site": "pool.worker_crash", "hits": (2,), "params": {"exit_code": 70},
     "jobs": 2, "timeout": 3.0, "evidence": "retried"},
    {"site": "pool.worker_hang", "hits": (2,), "params": {"hang_seconds": 30.0},
     "jobs": 2, "timeout": 3.0, "evidence": "retried"},
    {"site": "pool.result_corrupt", "hits": (2,), "params": {},
     "jobs": 1, "evidence": "retried"},
    {"site": "cache.put_eio", "hits": (1,), "params": {}, "evidence": "fires"},
    {"site": "cache.put_enospc", "hits": (1,), "params": {}, "evidence": "fires"},
    {"site": "cache.put_torn", "hits": (1,), "params": {}, "evidence": "fires"},
    {"site": "cache.get_missing", "hits": (6,), "params": {},
     "submits": 2, "evidence": "fires"},
    {"site": "journal.append_torn", "hits": (2,), "params": {},
     "evidence": "fires"},
    {"site": "journal.fsync_fail", "hits": (2,), "params": {},
     "evidence": "fires"},
    {"site": "serve.exec_error", "hits": (1,), "params": {},
     "evidence": "fires"},
    {"site": "serve.conn_drop", "hits": (2,), "params": {},
     "evidence": "fires"},
    {"site": "serve.slow_loris", "hits": (2, 4),
     "params": {"delay_seconds": 0.05}, "evidence": "fires"},
)


@dataclass
class ChaosCampaignConfig:
    """Everything ``repro chaos run`` can configure."""

    workdir: str
    seed: int = 7
    length: int = 120
    run_seed: int = 1
    workloads: tuple[str, ...] = ("lbm",)
    #: Sites to sweep (None = the full SWEEP_SITES table).
    sites: tuple[str, ...] | None = None
    scenarios: tuple[str, ...] = ("sweep", "resume", "breaker")
    #: Supervision settings handed to the service under test.
    retries: int = 2
    #: Extra whole-job resubmits after a failed/degraded attempt.
    resubmits: int = 2
    #: Per-event watch timeout: exceeding it is a HANG, an invariant
    #: violation in its own right.
    event_timeout: float = 60.0
    #: Progress logger (``line -> None``); None = silent.
    log: object = None


@dataclass
class ChaosCampaignResult:
    """One campaign's verdicts, JSON-able for CI artifacts."""

    checks: list[dict] = field(default_factory=list)

    def record(self, scenario: str, name: str, ok: bool, detail: str = "",
               **extra) -> None:
        self.checks.append(
            {"scenario": scenario, "name": name, "ok": bool(ok),
             "detail": detail, **extra}
        )

    @property
    def ok(self) -> bool:
        return all(c["ok"] for c in self.checks)

    @property
    def failures(self) -> list[dict]:
        return [c for c in self.checks if not c["ok"]]

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "checks": list(self.checks),
            "failed": len(self.failures),
            "total": len(self.checks),
        }

    def summary(self) -> str:
        return (
            f"{len(self.checks)} check(s), "
            f"{len(self.failures)} failure(s): "
            + ("OK" if self.ok else "FAIL")
        )


class _Harness:
    """Service + HTTP listener on a private event-loop thread.

    The in-src twin of the integration-test harness: the campaign is a
    shipped tool, so it cannot import from the test tree.
    """

    def __init__(self, cache_root, **service_kw) -> None:
        self.cache_root = cache_root
        self.service_kw = service_kw
        self.service = None
        self.port = None
        self.loop = None
        self._ready = threading.Event()
        self._stop = None
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self.loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self.service = SimulationService(
            cache_root=self.cache_root, **self.service_kw
        )
        self.service.start()
        server = HttpServer(self.service)
        self.port = await server.listen_tcp("127.0.0.1", 0)
        self._ready.set()
        await self._stop.wait()
        await server.close()
        await self.service.stop()

    def __enter__(self) -> "_Harness":
        self._thread.start()
        if not self._ready.wait(10):
            raise RuntimeError("campaign service failed to come up")
        return self

    def __exit__(self, *exc) -> None:
        self.loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(10)

    def client(self, timeout: float) -> ServeClient:
        return ServeClient(f"http://127.0.0.1:{self.port}", timeout=timeout)


class ChaosCampaign:
    """Run the configured scenarios and collect verdicts."""

    def __init__(self, config: ChaosCampaignConfig) -> None:
        self.config = config
        self.log = config.log or (lambda line: None)
        self._baseline: str | None = None

    # -- plumbing ------------------------------------------------------------

    def _params(self, length: int | None = None) -> dict:
        return {
            "length": length if length is not None else self.config.length,
            "seed": self.config.run_seed,
            "workloads": list(self.config.workloads),
        }

    def _specs(self, length: int | None = None):
        from repro.analysis.experiments import FIGURE5_DESIGNS

        params = self._params(length)
        return [
            simulation_spec(scheme, name, params["length"], params["seed"])
            for name in params["workloads"]
            for scheme in FIGURE5_DESIGNS
        ]

    @staticmethod
    def _stable_doc(result_envelope: dict) -> str:
        """The byte-stable text of a result document (minus run meta)."""
        doc = {
            k: v
            for k, v in result_envelope["result"].items()
            if k != "run"
        }
        return json.dumps(doc, sort_keys=True, separators=(",", ":"))

    @contextlib.contextmanager
    def _chaos(self, plan: ChaosPlan | None):
        """Install *plan* in-process and export it to spawn workers."""
        if plan is None:
            yield None
            return
        os.environ[CHAOS_PLAN_ENV] = plan.to_json()
        injector = ChaosInjector(plan)
        install(injector)
        try:
            yield injector
        finally:
            deactivate()
            os.environ.pop(CHAOS_PLAN_ENV, None)

    def _run_one_job(self, client: ServeClient, params: dict) -> dict:
        """Submit once and watch to the terminal event.

        Returns ``{"state": ..., "job_id": ...}``; ``state`` is the
        terminal job state, ``"hung"`` when an event timed out (the
        invariant violation the campaign exists to catch), or
        ``"degraded"`` for a 503 refusal.
        """
        try:
            descriptor = client.submit("evaluate", params=params)
        except ServeError as exc:
            if exc.status == 503:
                return {"state": "degraded", "job_id": None,
                        "error": exc.message}
            raise
        job_id = descriptor["job_id"]
        try:
            terminal = None
            for event in client.watch(
                job_id, timeout=self.config.event_timeout
            ):
                if is_terminal_event(event):
                    terminal = event
            state = terminal["event"] if terminal else "failed"
            error = (
                terminal["data"].get("job", {}).get("error", "")
                if terminal
                else "stream ended without a terminal event"
            )
        except TimeoutError as exc:
            # socket.timeout is an alias of TimeoutError on 3.10+.
            return {"state": "hung", "job_id": job_id, "error": str(exc)}
        except ServeError as exc:
            return {"state": "failed", "job_id": job_id, "error": exc.message}
        return {"state": state, "job_id": job_id, "error": error}

    def _run_to_success(
        self, client: ServeClient, params: dict, submits: int = 1
    ) -> tuple[dict | None, list[str]]:
        """Drive *submits* successful jobs, resubmitting through failures.

        Returns the final successful job's result envelope (or None) and
        the list of non-fatal problems seen along the way.  A hang is
        fatal immediately: nothing may block forever.
        """
        problems: list[str] = []
        envelope = None
        remaining = submits
        budget = submits + self.config.resubmits
        while remaining > 0 and budget > 0:
            budget -= 1
            run = self._run_one_job(client, params)
            if run["state"] == "hung":
                problems.append(f"HANG: {run['error']}")
                return None, problems
            if run["state"] == "done":
                remaining -= 1
                envelope = client.result(run["job_id"])
                continue
            problems.append(
                f"attempt ended {run['state']}: {run.get('error', '')}"
            )
            if run["state"] == "degraded":
                time.sleep(0.3)
        if remaining > 0:
            problems.append(
                f"{remaining} submit(s) never reached success "
                f"within the resubmit budget"
            )
            return None, problems
        return envelope, problems

    # -- scenarios -----------------------------------------------------------

    def run(self) -> ChaosCampaignResult:
        result = ChaosCampaignResult()
        workdir = self.config.workdir
        os.makedirs(workdir, exist_ok=True)
        self.log(f"chaos campaign: baseline run (fault-free) in {workdir}")
        self._baseline = self._make_baseline(os.path.join(workdir, "baseline"))
        for scenario in self.config.scenarios:
            if scenario == "sweep":
                self._scenario_sweep(result)
            elif scenario == "resume":
                self._scenario_resume(result)
            elif scenario == "breaker":
                self._scenario_breaker(result)
            else:
                raise ValueError(f"unknown chaos scenario {scenario!r}")
        return result

    def _make_baseline(self, cache_root: str) -> str:
        with self._chaos(None), _Harness(cache_root, jobs=1) as harness:
            client = harness.client(self.config.event_timeout)
            envelope, problems = self._run_to_success(client, self._params())
            if envelope is None:
                raise RuntimeError(
                    f"fault-free baseline failed: {problems}"
                )
            return self._stable_doc(envelope)

    def _sweep_table(self) -> list[dict]:
        if self.config.sites is None:
            return list(SWEEP_SITES)
        wanted = set(self.config.sites)
        table = [s for s in SWEEP_SITES if s["site"] in wanted]
        unknown = wanted - {s["site"] for s in table}
        if unknown:
            raise ValueError(f"unknown sweep site(s): {sorted(unknown)}")
        return table

    def _scenario_sweep(self, result: ChaosCampaignResult) -> None:
        for entry in self._sweep_table():
            site = entry["site"]
            self.log(f"chaos sweep: {site} hits={list(entry['hits'])}")
            cache_root = os.path.join(
                self.config.workdir, f"site-{site.replace('.', '-')}"
            )
            plan = ChaosPlan(
                seed=self.config.seed,
                schedule={
                    site: {"hits": list(entry["hits"]),
                           "params": dict(entry["params"])}
                },
            )
            service_kw = {
                "jobs": entry.get("jobs", 1),
                "timeout": entry.get("timeout"),
                "retries": self.config.retries,
            }
            with self._chaos(plan) as injector, _Harness(
                cache_root, **service_kw
            ) as harness:
                client = harness.client(self.config.event_timeout)
                envelope, problems = self._run_to_success(
                    client, self._params(), submits=entry.get("submits", 1)
                )
                fired = len(injector.fires)
                retried = (
                    envelope["job"].get("retried", 0) if envelope else 0
                )
            if envelope is None:
                result.record(
                    "sweep", site, False,
                    detail="; ".join(problems) or "no successful run",
                )
                continue
            doc_ok = self._stable_doc(envelope) == self._baseline
            if entry["evidence"] == "fires":
                evidence_ok = fired >= 1
                evidence = f"{fired} in-process fire(s)"
            else:
                evidence_ok = retried >= 1 or fired >= 1
                evidence = f"{retried} supervision retr(y/ies), {fired} fire(s)"
            detail = (
                f"{evidence}; doc {'matches' if doc_ok else 'DIFFERS FROM'} "
                "baseline"
            )
            if problems:
                detail += f"; retried through: {problems}"
            result.record(
                "sweep", site, doc_ok and evidence_ok, detail=detail,
                fires=fired, retried=retried, attempts_failed=len(problems),
            )

    def _scenario_resume(self, result: ChaosCampaignResult) -> None:
        """Exactly-once across an interrupted sweep and a restart."""
        self.log("chaos resume: interrupted sweep, lost cache, restart")
        cache_root = os.path.join(self.config.workdir, "resume")
        specs = self._specs()
        cache = ResultCache(cache_root, fingerprint=code_fingerprint())
        journal_path = sweep_journal_path(cache, "serve-evaluate", specs)
        # A "previous daemon" completed two cells, then died; its cache
        # was lost too (the harder path) — only the journal survives.
        with RunJournal(journal_path, cache.fingerprint) as journal:
            run_specs(specs[:2], jobs=1, cache=cache, journal=journal)
        shutil.rmtree(cache.results_dir)

        with self._chaos(None), _Harness(cache_root, jobs=1) as harness:
            client = harness.client(self.config.event_timeout)
            envelope, problems = self._run_to_success(client, self._params())
        if envelope is None:
            result.record("resume", "resume", False,
                          detail="; ".join(problems))
            return
        job = envelope["job"]
        accounting_ok = (
            job["journal_hits"] == 2
            and job["executed"] == len(specs) - 2
            and job["done"] == len(specs)
        )
        # The journal itself is the exactly-once witness: one fresh
        # (non-cached) record per spec, covering every spec exactly once.
        fresh: dict[str, int] = {}
        with open(journal_path, "rb") as handle:
            for line in handle.read().splitlines():
                record = json.loads(line)
                if "spec_hash" in record and not record.get("cached"):
                    fresh[record["spec_hash"]] = (
                        fresh.get(record["spec_hash"], 0) + 1
                    )
        all_hashes = {s.spec_hash() for s in specs}
        once_ok = (
            set(fresh) == all_hashes
            and all(count == 1 for count in fresh.values())
        )
        doc_ok = self._stable_doc(envelope) == self._baseline
        result.record(
            "resume", "resume", accounting_ok and once_ok and doc_ok,
            detail=(
                f"journal_hits={job['journal_hits']} "
                f"executed={job['executed']} done={job['done']}; "
                f"{len(fresh)}/{len(all_hashes)} cells journaled fresh "
                f"exactly once: {once_ok}; doc matches baseline: {doc_ok}"
            ),
        )

    def _scenario_breaker(self, result: ChaosCampaignResult) -> None:
        """Trip the breaker, verify cache-only mode, recover by probe."""
        self.log("chaos breaker: trip, degrade to cache-only, recover")
        cache_root = os.path.join(self.config.workdir, "breaker")
        plan = ChaosPlan(
            seed=self.config.seed,
            schedule={"serve.exec_error": {"hits": [2, 3], "params": {}}},
        )
        cooldown = 1.5
        with self._chaos(plan), _Harness(
            cache_root, jobs=1, retries=0,
            breaker_threshold=2, breaker_cooldown=cooldown,
        ) as harness:
            client = harness.client(self.config.event_timeout)
            # Visit 1: clean — warms the cache for the degraded check.
            warmup = self._run_one_job(client, self._params())
            # Visits 2 and 3 fail; the second consecutive failure trips.
            fail_1 = self._run_one_job(client, self._params(self.config.length + 1))
            fail_2 = self._run_one_job(client, self._params(self.config.length + 2))
            tripped = harness.service.breaker.state == "open"
            # Cold work is refused with 503 + Retry-After...
            cold = self._run_one_job(client, self._params(self.config.length + 3))
            try:
                client.readyz()
                ready_degraded = False
            except ServeError as exc:
                ready_degraded = exc.status == 503
            healthz_alive = client.healthz()["status"] == "degraded"
            # ...while warm work is still served from the cache.
            warm = self._run_one_job(client, self._params())
            # After the cooldown, the next cold submit is the half-open
            # probe; visit 4+ is clean, so it closes the breaker.
            time.sleep(cooldown + 0.2)
            probe = self._run_one_job(client, self._params(self.config.length + 4))
            recovered = harness.service.breaker.state == "closed"
            try:
                ready_after = client.readyz()["status"] == "ready"
            except ServeError:
                ready_after = False
            breaker = harness.service.breaker.snapshot()
        checks = {
            "warmup done": warmup["state"] == "done",
            "two failures": fail_1["state"] == "failed"
            and fail_2["state"] == "failed",
            "breaker tripped": tripped,
            "cold refused 503": cold["state"] == "degraded",
            "readyz 503 while degraded": ready_degraded,
            "healthz still live": healthz_alive,
            "warm served in degraded mode": warm["state"] == "done",
            "probe closed the breaker": probe["state"] == "done" and recovered,
            "readyz ready after recovery": ready_after,
        }
        failed = [name for name, ok in checks.items() if not ok]
        result.record(
            "breaker", "breaker", not failed,
            detail=("all checks passed" if not failed
                    else f"failed: {failed}"),
            breaker=breaker,
        )


def run_campaign(config: ChaosCampaignConfig) -> ChaosCampaignResult:
    """Module-level entry point used by the CLI."""
    return ChaosCampaign(config).run()
