"""The process-global chaos injector behind :func:`chaos_fire`.

Instrumented code calls ``chaos_fire("component.step")`` at each
injection point.  With no plan armed the call is a tuple-compare and a
return — cheap enough to leave in production paths.  With a plan armed
(explicitly via :func:`install`, or inherited through the
``CCNVM_CHAOS_PLAN`` environment variable, which is how ``spawn``
worker processes pick it up) the injector counts per-process visits
and returns the site's parameter dict exactly at the scheduled visit
numbers; the instrumented code then performs the failure itself —
exiting, sleeping, corrupting, raising — so each site's semantics live
next to the code they break.

The env-var lookup happens once per process (lazily, on the first
``chaos_fire``); tests that mutate the environment afterwards must
call :func:`reset` to force a re-read.
"""

from __future__ import annotations

import os
from collections import Counter

from repro.chaos.plan import ChaosPlan


class ChaosInjector:
    """Counts per-site visits and fires a plan's scheduled failures."""

    def __init__(self, plan: ChaosPlan) -> None:
        self.plan = plan
        #: Visits per site in this process (scheduled or not — the
        #: counts double as site-coverage discovery).
        self.hits: Counter[str] = Counter()
        #: Log of every fired injection: {site, hit, params}.
        self.fires: list[dict] = []

    def fire(self, site_name: str) -> dict | None:
        """Count one visit; the site's params exactly when it fires."""
        self.hits[site_name] += 1
        entry = self.plan.schedule.get(site_name)
        if entry is None or self.hits[site_name] not in entry["hits"]:
            return None
        params = dict(entry["params"])
        self.fires.append(
            {"site": site_name, "hit": self.hits[site_name], "params": params}
        )
        return params


#: Three states: _UNSET (read CCNVM_CHAOS_PLAN on first use), None
#: (explicitly off, env ignored), or the live injector.
_UNSET = object()
_active: object = _UNSET


def install(plan: ChaosPlan | ChaosInjector) -> ChaosInjector:
    """Arm *plan* in this process; returns the live injector."""
    global _active
    injector = plan if isinstance(plan, ChaosInjector) else ChaosInjector(plan)
    _active = injector
    return injector


def deactivate() -> None:
    """Disarm chaos in this process (the environment is ignored too)."""
    global _active
    _active = None


def reset() -> None:
    """Forget any installed injector; re-read the environment next time."""
    global _active
    _active = _UNSET


def active() -> ChaosInjector | None:
    """The live injector, arming from the environment on first use."""
    global _active
    if _active is _UNSET:
        plan = ChaosPlan.from_env(os.environ)
        _active = None if plan is None else ChaosInjector(plan)
    return _active  # type: ignore[return-value]


def chaos_fire(site_name: str) -> dict | None:
    """The injection hook: params when *site_name* fires, else ``None``."""
    injector = active()
    if injector is None:
        return None
    return injector.fire(site_name)
