"""Infrastructure chaos-site registry and seeded injection plans.

The faults subsystem (:mod:`repro.faults.plan`) crashes the *modeled*
NVM at named micro-steps; this module does the same for the *host*
stack that serves the simulations — worker processes, the on-disk
result cache, the run journal, and the daemon's HTTP surface.  Every
injectable failure carries a dotted site name (``component.step``),
the registry below is the single source of truth for what exists, and
a drift test asserts that the set of ``chaos_fire("...")`` call sites
in the source tree equals the registry, both directions — exactly the
discipline the fault-site registry already enforces.

A :class:`ChaosPlan` is a seeded, deterministic schedule: for each
site, the 1-based visit numbers at which it fires (per process) plus
optional parameters (hang duration, exit code, ...).  Plans serialize
to canonical JSON and travel in the ``CCNVM_CHAOS_PLAN`` environment
variable, which ``spawn`` worker processes inherit — the same plan
governs every process of a run, so a chaos campaign is reproducible
from its seed alone.

Site semantics (what breaks when the site fires):

=======================  ====================================================
site                     failure
=======================  ====================================================
``pool.worker_crash``    the worker process dies outright (``os._exit``)
                         before touching the spec — the parent only
                         learns via the chunk deadline
``pool.worker_hang``     the worker sleeps past any reasonable deadline
``pool.result_corrupt``  the result payload is mutated after its
                         integrity digest was taken (torn IPC)
``cache.put_eio``        the cache write fails with ``EIO``
``cache.put_enospc``     the cache write fails with ``ENOSPC``
``cache.put_torn``       the cache writer dies mid-write, orphaning a
                         partial ``*.tmp`` file
``cache.get_missing``    a present entry reads as a miss (lost
                         generation / evicted underfoot)
``journal.append_torn``  the journal append is cut mid-record
``journal.fsync_fail``   the post-append fsync fails (durability of the
                         record is unknown; it is discarded)
``serve.exec_error``     the executor raises before running the job
``serve.conn_drop``      the server drops the SSE connection mid-stream
``serve.slow_loris``     the server stalls between SSE events
=======================  ====================================================
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass

#: Environment variable carrying the active plan as canonical JSON.
#: ``spawn`` workers inherit the parent's environment, so setting this
#: before a run deterministically arms every process of that run.
CHAOS_PLAN_ENV = "CCNVM_CHAOS_PLAN"


class ChaosError(RuntimeError):
    """An injected infrastructure failure (the host-stack analogue of
    :class:`~repro.faults.plan.PowerFailure`)."""

    def __init__(self, site: str) -> None:
        super().__init__(f"injected infrastructure fault at {site}")
        self.site = site


@dataclass(frozen=True)
class ChaosSite:
    """One injectable infrastructure failure point."""

    name: str
    component: str  # 'pool' | 'cache' | 'journal' | 'serve'
    description: str
    #: Whether a supervised stack is expected to retry this to success.
    retryable: bool = True


SITES: tuple[ChaosSite, ...] = (
    ChaosSite(
        "pool.worker_crash",
        "pool",
        "worker process exits hard before executing the spec",
    ),
    ChaosSite(
        "pool.worker_hang",
        "pool",
        "worker sleeps past the chunk deadline",
    ),
    ChaosSite(
        "pool.result_corrupt",
        "pool",
        "result payload mutated after its integrity digest (torn IPC)",
    ),
    ChaosSite(
        "cache.put_eio",
        "cache",
        "cache write fails with EIO before the temp file exists",
    ),
    ChaosSite(
        "cache.put_enospc",
        "cache",
        "cache write fails with ENOSPC before the temp file exists",
    ),
    ChaosSite(
        "cache.put_torn",
        "cache",
        "cache writer dies mid-write, orphaning a partial *.tmp",
    ),
    ChaosSite(
        "cache.get_missing",
        "cache",
        "a present entry reads as a miss (generation lost underfoot)",
    ),
    ChaosSite(
        "journal.append_torn",
        "journal",
        "journal append cut mid-record (tail truncated back on repair)",
    ),
    ChaosSite(
        "journal.fsync_fail",
        "journal",
        "post-append fsync fails; the record's durability is unknown",
    ),
    ChaosSite(
        "serve.exec_error",
        "serve",
        "the executor raises before the job runs (feeds the breaker)",
    ),
    ChaosSite(
        "serve.conn_drop",
        "serve",
        "the SSE connection is dropped mid-stream",
        retryable=True,
    ),
    ChaosSite(
        "serve.slow_loris",
        "serve",
        "the server stalls between SSE events",
    ),
)

ALL_SITE_NAMES: tuple[str, ...] = tuple(s.name for s in SITES)

_BY_NAME = {s.name: s for s in SITES}


def site(name: str) -> ChaosSite:
    """Look one site up by name (raises ``KeyError`` on unknown names)."""
    return _BY_NAME[name]


def sites_for_component(component: str) -> tuple[str, ...]:
    """The site names belonging to one component, in registry order."""
    return tuple(s.name for s in SITES if s.component == component)


class ChaosPlan:
    """A deterministic schedule: site -> visit numbers to fire at.

    ``schedule`` maps a registered site name to ``{"hits": [...],
    "params": {...}}`` where *hits* are the 1-based per-process visit
    numbers at which the site fires and *params* tune the failure
    (``hang_seconds``, ``exit_code``, ``delay_seconds``, ...).  Visit
    counters are per process — a fresh worker starts at visit 1 —
    which is what makes "fails on the first try, succeeds on the
    supervised retry in a fresh process" schedules expressible.
    """

    def __init__(self, seed: int, schedule: dict[str, dict]) -> None:
        self.seed = int(seed)
        self.schedule: dict[str, dict] = {}
        for name in sorted(schedule):
            entry = schedule[name]
            if name not in _BY_NAME:
                raise ValueError(
                    f"unknown chaos site {name!r}; see repro chaos sites"
                )
            hits = sorted({int(h) for h in entry.get("hits", ())})
            if not hits or hits[0] < 1:
                raise ValueError(
                    f"site {name!r} needs 1-based hit numbers, got {hits}"
                )
            self.schedule[name] = {
                "hits": hits,
                "params": dict(entry.get("params") or {}),
            }
        if not self.schedule:
            raise ValueError("an empty chaos plan never fires")

    @classmethod
    def generate(
        cls,
        seed: int,
        sites: list[str] | tuple[str, ...],
        fires: int = 1,
        max_hit: int = 3,
        params: dict[str, dict] | None = None,
    ) -> "ChaosPlan":
        """Seeded plan: each site fires at *fires* visits drawn from
        ``[1, max_hit]`` — same seed, same schedule, every time."""
        rng = random.Random(int(seed))
        schedule = {}
        for name in sorted(set(sites)):
            pool = list(range(1, max(1, int(max_hit)) + 1))
            rng.shuffle(pool)
            schedule[name] = {
                "hits": sorted(pool[: max(1, int(fires))]),
                "params": dict((params or {}).get(name) or {}),
            }
        return cls(seed, schedule)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {"seed": self.seed, "schedule": self.schedule}

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosPlan":
        return cls(data.get("seed", 0), data.get("schedule", {}))

    def to_json(self) -> str:
        """Canonical JSON (sorted keys, compact) — the env-var payload."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str) -> "ChaosPlan":
        return cls.from_dict(json.loads(text))

    @classmethod
    def from_env(cls, environ) -> "ChaosPlan | None":
        """The plan armed in *environ*, or ``None`` when chaos is off."""
        text = environ.get(CHAOS_PLAN_ENV)
        if not text:
            return None
        return cls.from_json(text)

    def describe(self) -> str:
        parts = [
            f"{name}@{','.join(str(h) for h in entry['hits'])}"
            for name, entry in self.schedule.items()
        ]
        return f"seed {self.seed}: " + " ".join(parts)
