"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``info`` — the modeled configuration (the paper's Section 5 setup);
* ``evaluate`` — regenerate the Figure 5 tables and headline numbers;
* ``sweep`` — the Figure 6 sensitivity panels;
* ``demo`` — a one-minute crash/attack/recovery walk-through;
* ``simulate`` — run one workload on one design and dump statistics;
* ``faults run`` — the fault-injection campaign (crash sites x schemes x
  media faults) judged by the differential recovery oracle;
* ``faults sites`` — the catalogue of instrumented crash sites;
* ``crash explore`` — enumerate every crash state ADR semantics permit
  for a recorded persist trace and judge each one's recovery
  (``--classes`` routes the states through the equivalence-class
  reducer); ``crash campaign`` — the standing scheme x workload grid of
  reduced explorations with exhaustive-coverage gates; ``crash
  replay`` / ``crash minimize`` — re-run and delta-debug the replayable
  reproducer artifacts the explorer emits for violations;
* ``traffic ace`` — bounded exhaustive workload enumeration
  (k writes x address-overlap patterns x fence placements, canonical-form
  deduped) with ``--campaign`` running the whole set through the crash
  explorer; ``traffic ingest`` — validate/normalize an external trace
  (CSV/JSONL/Lackey) into the content-addressed trace store; ``traffic
  interleave`` — merge N tenant streams over one memory system with
  per-tenant attribution; ``traffic catalog`` — descriptor schema, ace
  bounds and stored traces;
* ``lint`` — the persistence-domain static analyzer (persist-order
  rules P0-P5, crash-site coverage, scheme contract);
* ``runs status`` / ``runs gc`` — inspect and prune the content-addressed
  result cache the orchestrated commands share.

``evaluate``, ``sweep``, ``faults run`` and ``crash explore`` all submit
through the run orchestrator: ``--jobs N`` fans the grid out over N worker processes,
results are reused from ``.repro-cache/`` when the simulator sources are
unchanged (``--no-cache`` forces re-execution), and interrupted sweeps
resume from their journal.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis import experiments
from repro.analysis.report import headline_numbers, ipc_table, write_traffic_table
from repro.common.config import SystemConfig
from repro.core.schemes import SCHEME_LABELS, SCHEMES
from repro.faults.plan import ALL_SITE_NAMES
from repro.sim.runner import run_simulation
from repro.workloads.spec import SPEC_ORDER, spec_trace


def cmd_info(_args: argparse.Namespace) -> int:
    config = SystemConfig()
    print("cc-NVM reproduction — modeled system (paper Section 5)")
    print(f"  core               3 GHz, peak IPC {config.cpu.peak_ipc}")
    print(f"  L1                 {config.l1.size_bytes >> 10} KB, "
          f"{config.l1.associativity}-way, {config.l1.hit_latency} cycles")
    print(f"  L2                 {config.l2.size_bytes >> 10} KB, "
          f"{config.l2.associativity}-way, {config.l2.hit_latency} cycles")
    meta = config.security.meta_cache
    print(f"  meta cache         {meta.size_bytes >> 10} KB, "
          f"{meta.associativity}-way, {meta.hit_latency} cycles")
    print(f"  NVM                {config.nvm.capacity_bytes >> 30} GB PCM, "
          f"{config.nvm.read_latency_ns:.0f}/{config.nvm.write_latency_ns:.0f} ns, "
          f"{config.nvm.banks} banks")
    print(f"  AES / HMAC         {config.security.aes_latency_ns:.0f} ns / "
          f"{config.security.hmac_latency_cycles} cycles")
    print(f"  WPQ                {config.controller.wpq_entries} entries (ADR)")
    print(f"  epoch triggers     M={config.epoch.dirty_queue_entries}, "
          f"N={config.epoch.update_limit}, "
          f"lookup {config.epoch.dirty_queue_lookup_cycles} cycles")
    print(f"  designs            {', '.join(SCHEME_LABELS.values())}")
    print(f"  workloads          {', '.join(SPEC_ORDER)}")
    return 0


def _progress_printer(args: argparse.Namespace):
    """A live per-spec progress line (suppressed under --quiet)."""
    if getattr(args, "quiet", False):
        return None

    def progress(outcome, done, total):
        tag = outcome.source if outcome.ok else outcome.status.upper()
        print(f"  [{done:>3}/{total}] {outcome.spec.describe():<42} "
              f"{outcome.duration:6.2f}s  {tag}")

    return progress


def _run_kwargs(args: argparse.Namespace) -> dict:
    """Orchestration knobs shared by evaluate/sweep/faults run."""
    return {
        "jobs": args.jobs,
        "cache": not args.no_cache,
        "timeout": args.timeout,
        "progress": _progress_printer(args),
    }


def cmd_evaluate(args: argparse.Namespace) -> int:
    print(f"Figure 5 matrix: 8 workloads x 5 designs, {args.length} refs each "
          f"(jobs={args.jobs}, cache={'off' if args.no_cache else 'on'})")
    reports: list = []
    comparisons = experiments.figure5_comparisons(
        args.length, args.seed, report_out=reports, **_run_kwargs(args)
    )
    report = reports[0]
    ipc = ipc_table(comparisons)
    writes = write_traffic_table(comparisons)
    print()
    print(ipc.render())
    print()
    print(writes.render())
    print()
    print(headline_numbers(comparisons).render())
    print()
    print(f"orchestration: {report.summary()}")
    if args.json:
        from repro.runs import code_fingerprint

        from repro.analysis.export import fig5_bench_to_json

        meta = {
            "length": args.length,
            "seed": args.seed,
            "jobs": args.jobs,
            "fingerprint": code_fingerprint(),
            "wall_seconds": report.wall_seconds,
            "executed": report.executed,
            "cache_hits": report.cache_hits,
            "journal_hits": report.journal_hits,
        }
        with open(args.json, "w") as f:
            f.write(fig5_bench_to_json(comparisons, meta))
        print(f"wrote benchmark artifact to {args.json}")
    if args.export:
        import os

        from repro.analysis.export import table_to_csv, table_to_json

        os.makedirs(args.export, exist_ok=True)
        for name, table in (("fig5a_ipc", ipc), ("fig5b_writes", writes)):
            with open(os.path.join(args.export, f"{name}.csv"), "w") as f:
                f.write(table_to_csv(table))
            with open(os.path.join(args.export, f"{name}.json"), "w") as f:
                f.write(table_to_json(table))
        print(f"\nexported CSV/JSON to {args.export}/")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    kwargs = _run_kwargs(args)
    print(experiments.figure6a(length=args.length, seed=args.seed, **kwargs).render())
    print()
    print(experiments.figure6b(length=args.length, seed=args.seed, **kwargs).render())
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    session = None
    if args.report or args.stats_json:
        # The session keeps a handle on the built system, which is how
        # the live stat tree stays reachable after the run.
        from repro.obs import ObsSession

        session = ObsSession()
    trace = spec_trace(args.workload, args.length, args.seed)
    result = run_simulation(args.scheme, trace, obs=session)
    print(f"{result.label} on {result.workload}: "
          f"{result.instructions} instructions, {result.cycles} cycles, "
          f"IPC {result.ipc:.4f}")
    print(f"  NVM writes {result.nvm_writes} {result.writes_by_region}, "
          f"reads {result.nvm_reads}")
    print(f"  LLC write-backs {result.llc_writebacks}, epochs {result.epochs} "
          f"{result.drains_by_trigger}")
    print(f"  HMAC computations: {result.counter_hmacs} counter, "
          f"{result.data_hmacs} data")
    if args.report:
        print()
        print(session.system.scheme.stats.report())
    if args.stats_json:
        import json

        with open(args.stats_json, "w") as f:
            json.dump(session.system.scheme.stats.as_dict(), f,
                      indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote statistics JSON to {args.stats_json}")
    return 0


def _obs_session(args: argparse.Namespace, sample_every: int = 0):
    from repro.obs import DEFAULT_CAPACITY, ObsSession

    return ObsSession(
        capacity=args.capacity or DEFAULT_CAPACITY, sample_every=sample_every
    )


def cmd_obs_trace(args: argparse.Namespace) -> int:
    import json

    from repro.obs.export import events_to_trace, validate_trace, write_chrome_trace

    session = _obs_session(args)
    trace = spec_trace(args.workload, args.length, args.seed)
    result = run_simulation(args.scheme, trace, obs=session)
    chrome = events_to_trace(
        session.bus.events(),
        process_name=f"repro:{args.scheme}",
        thread_name=args.workload,
    )
    problems = validate_trace(chrome)
    print(f"{result.label} on {result.workload}: {len(session.bus)} event(s), "
          f"{session.bus.dropped} dropped, "
          f"{'valid' if not problems else 'INVALID'} trace")
    for problem in problems[:10]:
        print(f"  {problem}")
    if args.out:
        write_chrome_trace(args.out, chrome)
        print(f"wrote Chrome trace_event JSON to {args.out} "
              f"(open in ui.perfetto.dev or chrome://tracing)")
    else:
        print(json.dumps(chrome, indent=None, separators=(",", ":")))
    return 0 if not problems else 1


def cmd_obs_timeline(args: argparse.Namespace) -> int:
    from repro.analysis.export import result_from_dict
    from repro.obs import DEFAULT_CAPACITY
    from repro.obs.export import obs_headline_to_json, write_json
    from repro.obs.timeline import TimelineSummary, render_table
    from repro.runs import orchestrate
    from repro.runs.spec import simulation_spec

    obs_params = {"capacity": args.capacity or DEFAULT_CAPACITY, "timeline": True}
    specs = [
        simulation_spec(
            scheme, args.workload, args.length, args.seed, obs=obs_params
        )
        for scheme in args.schemes
    ]
    print(f"obs timeline: {args.workload} x {len(specs)} design(s), "
          f"{args.length} refs (jobs={args.jobs}, "
          f"cache={'off' if args.no_cache else 'on'})")
    report = orchestrate(
        "obs-timeline",
        specs,
        jobs=args.jobs,
        use_cache=not args.no_cache,
        timeout=args.timeout,
        progress=_progress_printer(args),
    )
    report.raise_on_failure()
    summaries = []
    for spec in specs:
        payload = dict(report.payload(spec))
        obs_payload = payload.pop("obs")
        result_from_dict(payload)  # round-trip check: payload stays rebuildable
        summaries.append(TimelineSummary.from_dict(obs_payload["timeline"]))
    print()
    print(render_table(summaries))
    print()
    print(f"orchestration: {report.summary()}")
    if args.json:
        write_json(
            args.json,
            obs_headline_to_json(
                [s.as_dict() for s in summaries], args.workload, args.length
            ),
        )
        print(f"wrote obs headline artifact to {args.json}")
    low = [
        s.scheme
        for s in summaries
        if s.cycle_coverage < 0.95 or s.write_coverage < 0.95
    ]
    if low:
        print(f"attribution below 95% for: {', '.join(low)}")
        return 1
    return 0


def cmd_obs_sample(args: argparse.Namespace) -> int:
    import json

    from repro.obs.export import series_to_csv, series_to_json

    session = _obs_session(args, sample_every=args.every)
    trace = spec_trace(args.workload, args.length, args.seed)
    result = run_simulation(args.scheme, trace, obs=session)
    samples = session.samples()
    print(f"{result.label} on {result.workload}: {len(samples)} sample(s) "
          f"every {args.every} cycles "
          f"({session.sampler.dropped} dropped)")
    if args.json:
        text = json.dumps(
            series_to_json(samples, every=args.every), indent=2, sort_keys=True
        ) + "\n"
    else:
        text = series_to_csv(samples)
    if args.out:
        with open(args.out, "w") as f:
            f.write(text)
        print(f"wrote time-series to {args.out}")
    else:
        print(text, end="")
    return 0


def cmd_demo(_args: argparse.Namespace) -> int:
    from repro import SecureMemory

    mem = SecureMemory(data_capacity=1 << 22)
    mem.store(0x1000, b"the data that must survive")
    mem.persist(0x1000, 64)
    print("stored + persisted; crashing...")
    mem.crash()
    report = mem.recover()
    print(f"recovered: success={report.success}, retries={report.total_retries}")
    print(f"data: {mem.load(0x1000, 26)!r}")
    mem.attacker().spoof_data(0x1000)
    mem.crash()
    report = mem.recover()
    located = [hex(f.address) for f in report.findings if f.address is not None]
    print(f"after spoofing: success={report.success}, located={located}")
    return 0


def cmd_faults_run(args: argparse.Namespace) -> int:
    from repro.faults import CampaignConfig, run_campaign

    cfg = CampaignConfig.smoke() if args.smoke else CampaignConfig()
    overrides = {}
    if args.schemes:
        overrides["schemes"] = tuple(args.schemes)
    if args.sites:
        overrides["sites"] = tuple(args.sites)
    if args.steps is not None:
        overrides["steps"] = args.steps
    if args.seed is not None:
        overrides["seed"] = args.seed
    if overrides:
        import dataclasses

        cfg = dataclasses.replace(cfg, **overrides)
    result = run_campaign(
        cfg,
        jobs=args.jobs,
        cache=not args.no_cache,
        timeout=args.timeout,
        progress=_progress_printer(args),
    )
    print(result.summary())
    if args.export:
        import os

        from repro.analysis.export import campaign_to_csv, campaign_to_json

        os.makedirs(args.export, exist_ok=True)
        with open(os.path.join(args.export, "fault_campaign.csv"), "w") as f:
            f.write(campaign_to_csv(result))
        with open(os.path.join(args.export, "fault_campaign.json"), "w") as f:
            f.write(campaign_to_json(result))
        print(f"exported CSV/JSON to {args.export}/")
    return 0 if result.passed else 1


def cmd_faults_sites(args: argparse.Namespace) -> int:
    from repro.faults import SITES, sites_for_scheme

    sites = SITES
    if args.scheme:
        reachable = set(sites_for_scheme(args.scheme))
        sites = tuple(s for s in SITES if s.name in reachable)
    if args.json:
        import json

        print(json.dumps(
            [
                {
                    "name": s.name,
                    "component": s.component,
                    "description": s.description,
                    "schemes": list(s.schemes),
                }
                for s in sites
            ],
            indent=2,
        ))
        return 0
    scope = f" reachable by {args.scheme}" if args.scheme else ""
    print(f"instrumented crash sites (component.step){scope}:")
    for s in sites:
        print(f"  {s.name:26s} [{s.component:8s}] {s.description}")
        print(f"  {'':26s} reached by: {', '.join(s.schemes)}")
    return 0


def cmd_crash_explore(args: argparse.Namespace) -> int:
    from repro.crashsim import ExploreConfig, run_explore
    from repro.crashsim.explore import DEFAULT_SHARDS, DEFAULT_STEPS

    cfg = ExploreConfig(
        schemes=tuple(args.schemes),
        steps=DEFAULT_STEPS if args.steps is None else args.steps,
        window=args.window,
        budget=args.budget,
        seed=args.seed,
        shards=DEFAULT_SHARDS if args.shards is None else args.shards,
        torn_batches=args.torn_batches,
        nested_depth=args.nested_depth,
        profile=args.profile,
        reduce=args.classes,
        spot=args.spot,
    )
    mode = "classes (reduced, exhaustive)" if cfg.reduce else f"budget {cfg.budget}"
    print(f"crash exploration: {', '.join(cfg.schemes)} @ {cfg.steps} steps, "
          f"profile {cfg.profile}, window {cfg.window}, {mode}, seed {cfg.seed} "
          f"(jobs={args.jobs}, cache={'off' if args.no_cache else 'on'})")
    summary, report = run_explore(cfg, **_run_kwargs(args))
    print()
    ok = True
    for scheme, entry in summary["schemes"].items():
        violations = entry["violations"]
        mismatches = entry.get("class_mismatches", [])
        status = (
            "ok"
            if not violations and entry["nested_ok"] and not mismatches
            else "VIOLATED"
        )
        ok = ok and status == "ok"
        outcomes = ", ".join(f"{k}={v}" for k, v in entry["outcomes"].items())
        print(f"  {scheme:14s} {entry['states_evaluated']:5d} states "
              f"({entry['distinct_states']} distinct)  [{outcomes}]  "
              f"{len(violations)} violation(s), "
              f"nested {'ok' if entry['nested_ok'] else 'FAILED'}  -> {status}")
        if cfg.reduce:
            ratio = entry["reduction_ratio"]
            print(f"  {'':14s} {entry['classes']} classes cover "
                  f"{entry['states_covered']} states with "
                  f"{entry['oracle_calls']} oracle calls "
                  f"({ratio if ratio is not None else '-'}x reduction), "
                  f"{len(mismatches)} spot mismatch(es)")
        for v in violations[:5]:
            print(f"      {v['state']}: {'; '.join(v['verdict']['problems'][:2])}")
    print(f"\norchestration: {report.summary()}")
    if args.export:
        from repro.analysis.export import crash_summary_to_json

        with open(args.export, "w") as f:
            f.write(crash_summary_to_json(summary))
        print(f"wrote exploration summary to {args.export}")
    if args.reproducers:
        import json
        import os

        os.makedirs(args.reproducers, exist_ok=True)
        written = 0
        for scheme, entry in summary["schemes"].items():
            for v in entry["violations"]:
                if "reproducer" not in v:
                    continue
                name = v["state"].replace("=", "").replace(",", "_")
                path = os.path.join(args.reproducers, f"{scheme}_{name}.json")
                with open(path, "w") as f:
                    json.dump(v["reproducer"], f, indent=2, sort_keys=True)
                written += 1
        print(f"wrote {written} minimized reproducer(s) to {args.reproducers}/")
    return 0 if ok else 1


def cmd_crash_campaign(args: argparse.Namespace) -> int:
    from repro.crashsim import CrashCampaignConfig, run_campaign
    from repro.crashsim.explore import DEFAULT_SHARDS, DEFAULT_STEPS

    cfg = CrashCampaignConfig(
        schemes=tuple(args.schemes or ()),
        profiles=tuple(args.profiles or ()),
        steps=DEFAULT_STEPS if args.steps is None else args.steps,
        window=args.window,
        seed=args.seed,
        shards=DEFAULT_SHARDS if args.shards is None else args.shards,
        spot=args.spot,
    )
    schemes = cfg.resolved_schemes()
    profiles = cfg.resolved_profiles()
    print(f"crash campaign: {len(schemes)} scheme(s) x {len(profiles)} "
          f"profile(s) @ {cfg.steps} steps, window {cfg.window}, seed "
          f"{cfg.seed}, spot {cfg.spot} "
          f"(jobs={args.jobs}, cache={'off' if args.no_cache else 'on'})")
    summary, report = run_campaign(cfg, **_run_kwargs(args))
    print()
    for scheme in sorted(summary["grid"]):
        for profile, cell in sorted(summary["grid"][scheme].items()):
            bad = (cell["violations"] or cell["class_mismatches"]
                   or cell["sampling_fallbacks"])
            ratio = cell["reduction_ratio"]
            print(f"  {scheme:14s} {profile:12s} "
                  f"{cell['states_covered']:6d} states covered by "
                  f"{cell['oracle_calls']:5d} oracle calls "
                  f"({cell['classes']:4d} classes, "
                  f"{ratio if ratio is not None else '-':>7}x)  "
                  f"{len(cell['violations'])} violation(s)"
                  f"{'  <- CHECK' if bad else ''}")
            for v in cell["violations"][:3]:
                print(f"      {v['state']}: "
                      f"{'; '.join(v['verdict']['problems'][:2])}")
    totals = summary["totals"]
    failures = summary["failures"]
    print(f"\n  totals: {totals['cells']} cells, {totals['covered']} states "
          f"covered, {totals['oracle_calls']} oracle calls "
          f"({totals['reduction_ratio']}x), {totals['classes']} classes, "
          f"{totals['violations']} violation(s), "
          f"{totals['class_mismatches']} class mismatch(es), "
          f"{totals['sampling_fallbacks']} sampling fallback(s), "
          f"{len(failures)} failed shard(s)")
    for failure in failures[:5]:
        print(f"      FAILED {failure['scheme']}/{failure['profile']} "
              f"shard {failure['shard']}: {failure['error']}")
    print(f"orchestration: {report.summary()}")
    if args.json:
        from repro.analysis.export import campaign_summary_to_json

        with open(args.json, "w") as f:
            f.write(campaign_summary_to_json(summary))
        print(f"wrote campaign summary to {args.json}")
    if args.reproducers:
        import json
        import os

        os.makedirs(args.reproducers, exist_ok=True)
        written = 0
        for scheme in summary["grid"]:
            for profile, cell in summary["grid"][scheme].items():
                for v in cell["violations"]:
                    if "reproducer" not in v:
                        continue
                    name = v["state"].replace("=", "").replace(",", "_")
                    path = os.path.join(
                        args.reproducers, f"{scheme}_{profile}_{name}.json"
                    )
                    with open(path, "w") as f:
                        json.dump(v["reproducer"], f, indent=2, sort_keys=True)
                    written += 1
        print(f"wrote {written} minimized reproducer(s) to {args.reproducers}/")
    problems = []
    if totals["violations"]:
        problems.append(f"{totals['violations']} violation(s)")
    if totals["class_mismatches"]:
        problems.append(f"{totals['class_mismatches']} class mismatch(es)")
    if totals["sampling_fallbacks"]:
        problems.append(
            f"{totals['sampling_fallbacks']} sampling fallback(s) "
            "(coverage not exhaustive)"
        )
    if failures:
        problems.append(f"{len(failures)} failed shard(s)")
    if args.min_classes and totals["classes"] < args.min_classes:
        problems.append(
            f"only {totals['classes']} classes (< --min-classes "
            f"{args.min_classes})"
        )
    if problems:
        print(f"campaign FAILED: {', '.join(problems)}")
        return 1
    print("campaign ok: exhaustive coverage, no violations")
    return 0


def _load_reproducer(path: str):
    from repro.analysis.export import reproducer_from_json

    with open(path) as f:
        return reproducer_from_json(f.read())


def cmd_crash_replay(args: argparse.Namespace) -> int:
    from repro.crashsim import replay

    repro_artifact = _load_reproducer(args.file)
    print(f"replaying: {repro_artifact.description}")
    print(f"  scheme {repro_artifact.scheme}, {len(repro_artifact.ops)} persist "
          f"micro-op(s), schedule {repro_artifact.schedule or 'none'}")
    verdict = replay(repro_artifact)
    expected = {p.split(":", 1)[0] for p in repro_artifact.problems}
    reproduced = expected <= set(verdict.signature())
    print(f"  outcome {verdict.outcome} (recorded {repro_artifact.outcome})")
    for problem in verdict.problems:
        print(f"    {problem}")
    print("failure reproduced" if reproduced else "failure did NOT reproduce")
    return 0 if reproduced else 1


def cmd_crash_minimize(args: argparse.Namespace) -> int:
    from repro.analysis.export import reproducer_to_json
    from repro.crashsim import (
        RecoveryOracle,
        build_state,
        from_state,
        minimize,
        rebuild_trace,
    )

    repro_artifact = _load_reproducer(args.file)
    trace = rebuild_trace(repro_artifact)
    oracle = RecoveryOracle(
        repro_artifact.scheme,
        data_capacity=repro_artifact.data_capacity,
        seed=repro_artifact.seed,
    )
    schedule = repro_artifact.schedule or None
    signature = frozenset(p.split(":", 1)[0] for p in repro_artifact.problems)
    minimal = minimize(
        trace, repro_artifact.ops, oracle, signature, schedule=schedule
    )
    final = oracle.evaluate(build_state(trace, minimal), schedule)
    result = from_state(
        trace,
        minimal,
        final,
        description=(f"{repro_artifact.description} (re-minimized from "
                     f"{len(repro_artifact.ops)} to {len(minimal)} ops)"),
        data_capacity=repro_artifact.data_capacity,
        schedule=schedule,
    )
    print(f"minimized {len(repro_artifact.ops)} -> {len(minimal)} persist micro-op(s)")
    if args.out:
        with open(args.out, "w") as f:
            f.write(reproducer_to_json(result))
        print(f"wrote minimized reproducer to {args.out}")
    else:
        print(reproducer_to_json(result))
    return 0


def _traffic_gate(summary: dict) -> list[str]:
    """The ace-campaign pass/fail gates (same bar as ``crash campaign``)."""
    totals = summary["totals"]
    problems = []
    if totals["violations"]:
        problems.append(f"{totals['violations']} violation(s)")
    if totals["class_mismatches"]:
        problems.append(f"{totals['class_mismatches']} class mismatch(es)")
    if totals["sampling_fallbacks"]:
        problems.append(
            f"{totals['sampling_fallbacks']} sampling fallback(s) "
            "(coverage not exhaustive)"
        )
    if summary["failures"]:
        problems.append(f"{len(summary['failures'])} failed shard(s)")
    return problems


def cmd_traffic_ace(args: argparse.Namespace) -> int:
    from repro.trafficgen.ace import (
        ace_campaign_config,
        enumeration_stats,
        enumerate_ace,
    )

    stats = enumeration_stats(args.k)
    print(f"ace enumeration @ k={args.k}: "
          f"{stats['canonical_workloads']} canonical workload(s) "
          f"({stats['overlap_classes']} overlap classes x "
          f"{stats['fence_placements']} fence placements), "
          f"{stats['raw_workloads']} raw -> {stats['dedup_ratio']}x dedup")
    if args.list:
        for w in enumerate_ace(args.k):
            print(f"  {w.profile()}  lines={w.lines()}")
    if not args.campaign:
        return 0
    from repro.crashsim import run_campaign

    cfg = ace_campaign_config(
        args.k, schemes=tuple(args.schemes or ()), seed=args.seed,
        spot=args.spot,
    )
    schemes = cfg.resolved_schemes()
    print(f"ace crash campaign: {len(schemes)} scheme(s) x "
          f"{len(cfg.profiles)} workload(s), seed {cfg.seed} "
          f"(jobs={args.jobs}, cache={'off' if args.no_cache else 'on'})")
    summary, report = run_campaign(cfg, **_run_kwargs(args))
    totals = summary["totals"]
    print(f"\n  totals: {totals['cells']} cells, {totals['covered']} states "
          f"covered, {totals['oracle_calls']} oracle calls, "
          f"{totals['violations']} violation(s), "
          f"{totals['sampling_fallbacks']} sampling fallback(s)")
    for scheme in sorted(summary["grid"]):
        cells = summary["grid"][scheme]
        violations = sum(len(c["violations"]) for c in cells.values())
        covered = sum(c["states_covered"] for c in cells.values())
        print(f"  {scheme:14s} {len(cells):4d} workloads, "
              f"{covered:6d} states covered, {violations} violation(s)")
        for profile, cell in sorted(cells.items()):
            for v in cell["violations"][:2]:
                print(f"      {profile} {v['state']}: "
                      f"{'; '.join(v['verdict']['problems'][:2])}")
    print(f"orchestration: {report.summary()}")
    if args.json:
        from repro.analysis.export import campaign_summary_to_json

        with open(args.json, "w") as f:
            f.write(campaign_summary_to_json(summary))
        print(f"wrote ace campaign summary to {args.json}")
    problems = _traffic_gate(summary)
    if problems:
        print(f"ace campaign FAILED: {', '.join(problems)}")
        return 1
    print(f"ace campaign ok: every bounded workload recovered on every "
          f"scheme ({stats['dedup_ratio']}x canonical-form dedup)")
    return 0


def _traffic_bench(args: argparse.Namespace, descriptors: list) -> int:
    """Shared --run/--specs-out/--json tail of ingest and interleave."""
    import json

    from repro.analysis.traffic import (
        traffic_document,
        traffic_document_to_json,
        traffic_specs,
    )

    if args.specs_out:
        _, specs = traffic_specs(
            descriptors, schemes=tuple(args.schemes), length=args.length,
            seed=args.seed,
        )
        with open(args.specs_out, "w") as f:
            json.dump([s.to_dict() for s in specs], f, indent=2,
                      sort_keys=True)
        print(f"wrote {len(specs)} RunSpec(s) to {args.specs_out} "
              f"(submit with `repro client submit --specs {args.specs_out}`)")
    if not args.run:
        return 0
    document, report = traffic_document(
        descriptors, schemes=tuple(args.schemes), length=args.length,
        seed=args.seed, **_run_kwargs(args),
    )
    print()
    for label in sorted(document["results"]):
        for scheme, row in document["results"][label].items():
            print(f"  {label:28s} {scheme:14s} ipc={row['ipc']:.3f} "
                  f"nvm_writes={row['nvm_writes']}")
    print(f"orchestration: {report.summary()}")
    if args.json:
        with open(args.json, "w") as f:
            f.write(traffic_document_to_json(document))
        print(f"wrote traffic bench document to {args.json}")
    return 0


def cmd_traffic_ingest(args: argparse.Namespace) -> int:
    import os

    from repro.trafficgen.ingest import STORE_ENV, TraceFormatError, TraceStore

    store = TraceStore(args.store)
    if args.store:
        # Pool workers resolve trace digests through the environment;
        # an explicit --store must reach them too.
        os.environ[STORE_ENV] = str(store.root)
    try:
        descriptor = store.ingest(
            args.file, fmt=args.format, name=args.name,
            footprint=args.footprint, base=0,
        )
    except TraceFormatError as exc:
        print(f"trace rejected: {exc}", file=sys.stderr)
        return 1
    print(f"ingested {args.file} ({args.format}): "
          f"{descriptor['records']} reference(s) -> "
          f"{store.trace_path(descriptor['digest'])}")
    return _traffic_bench(args, [descriptor])


def _parse_tenant(text: str) -> dict:
    parts = text.split(":")
    if len(parts) not in (2, 3):
        raise SystemExit(
            f"bad --tenant {text!r} (want name:profile[:weight])"
        )
    tenant = {"name": parts[0], "profile": parts[1]}
    if len(parts) == 3:
        try:
            tenant["weight"] = float(parts[2])
        except ValueError:
            raise SystemExit(f"bad --tenant weight in {text!r}") from None
    return tenant


def cmd_traffic_interleave(args: argparse.Namespace) -> int:
    from repro.trafficgen.descriptor import (
        descriptor_label,
        interleave_descriptor,
    )
    from repro.trafficgen.interleave import interleave_attribution

    try:
        descriptor = interleave_descriptor(
            [_parse_tenant(t) for t in args.tenant],
            policy=args.policy, burst=args.burst,
        )
    except ValueError as exc:
        print(f"bad interleave: {exc}", file=sys.stderr)
        return 1
    attribution = interleave_attribution(descriptor, args.length, args.seed)
    print(f"interleave {descriptor_label(descriptor)}: "
          f"{len(descriptor['tenants'])} tenant(s), policy {args.policy}")
    for name, row in attribution["tenants"].items():
        low, high = row["range"]
        print(f"  {name:12s} weight={row['weight']:<5g} "
              f"share={row['share']:<7g} refs={row['references']:<7d} "
              f"writes={row['writes']:<6d} lines={row['distinct_lines']:<6d} "
              f"range=[{low:#x},{high:#x})")
    return _traffic_bench(args, [descriptor])


def cmd_traffic_catalog(args: argparse.Namespace) -> int:
    import json

    from repro.trafficgen.ace import MAX_K, enumeration_stats
    from repro.trafficgen.descriptor import DESCRIPTOR_KINDS, SCHEMA_VERSION
    from repro.trafficgen.ingest import TraceStore

    store = TraceStore(args.store)
    entries = store.catalog()
    if args.json:
        print(json.dumps(
            {
                "schema_version": SCHEMA_VERSION,
                "descriptor_kinds": list(DESCRIPTOR_KINDS),
                "ace": [enumeration_stats(k) for k in range(1, MAX_K + 1)],
                "store": {"root": str(store.root), "traces": entries},
            },
            indent=2, sort_keys=True,
        ))
        return 0
    print(f"workload descriptor schema v{SCHEMA_VERSION}; "
          f"kinds: {', '.join(DESCRIPTOR_KINDS)}")
    print("\nace enumeration bounds:")
    print(f"  {'k':>2} {'raw':>10} {'canonical':>10} {'dedup':>7}")
    for k in range(1, MAX_K + 1):
        stats = enumeration_stats(k)
        print(f"  {k:>2} {stats['raw_workloads']:>10} "
              f"{stats['canonical_workloads']:>10} "
              f"{stats['dedup_ratio']:>6}x")
    print(f"\ntrace store at {store.root}: {len(entries)} trace(s)")
    for meta in entries:
        print(f"  {meta['digest'][:12]}  {meta['name']:24s} "
              f"{meta['records']:>9d} refs  ({meta['source']})")
    return 0


def cmd_runs_status(args: argparse.Namespace) -> int:
    import json

    from repro.runs import ResultCache

    cache = ResultCache(args.root)
    status = cache.status()
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    print(f"result cache at {status['root']} "
          f"(current code fingerprint {status['fingerprint']})")
    if not status["generations"]:
        print("  no cached results")
    for fingerprint, info in status["generations"].items():
        marker = "current" if info["current"] else "stale"
        print(f"  {fingerprint}  {info['entries']:5d} entries  "
              f"{info['bytes'] / 1024:8.1f} KB  [{marker}]")
    stats = status["stats"]
    print(f"  lifetime: {stats['hits']} hits, {stats['misses']} misses, "
          f"{stats['stores']} stores over {stats['flushes']} sweep(s)")
    if status["journals"]:
        print(f"  journals: {', '.join(status['journals'])}")
    return 0


def cmd_runs_gc(args: argparse.Namespace) -> int:
    from repro.runs import ResultCache

    cache = ResultCache(args.root)
    swept = cache.gc(
        everything=args.all,
        max_generations=args.max_generations,
        max_bytes=args.max_bytes,
    )
    if args.all:
        scope = "all generations"
    elif args.max_generations is not None or args.max_bytes is not None:
        knobs = []
        if args.max_generations is not None:
            knobs.append(f"max {args.max_generations} generation(s)")
        if args.max_bytes is not None:
            knobs.append(f"max {args.max_bytes} bytes")
        scope = ", ".join(knobs)
    else:
        scope = "stale generations"
    print(f"gc ({scope}): removed {swept['removed']} entr(y/ies), "
          f"kept {swept['kept']}, reclaimed {swept['reclaimed_bytes']} bytes")
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import DaemonConfig, run_daemon

    config = DaemonConfig(
        host=args.host,
        port=None if args.no_tcp else args.port,
        unix_socket=args.unix_socket,
        cache_root=args.cache_root,
        shards=args.shards,
        quota=args.quota,
        max_depth=args.max_depth,
        jobs=args.jobs,
        max_generations=args.max_generations,
        max_bytes=args.max_bytes,
        port_file=args.port_file,
        log_file=args.log_file,
        quiet=args.quiet,
        timeout=args.timeout,
        retries=args.retries,
        breaker_threshold=args.breaker_threshold,
        breaker_cooldown=args.breaker_cooldown,
    )
    return run_daemon(config)


def _serve_client(args: argparse.Namespace):
    from repro.serve import ServeClient

    return ServeClient(args.server)


def _print_serve_event(event: dict) -> None:
    kind = event["event"]
    data = event["data"]
    if kind == "progress":
        print(f"  [{data['done']:>3}/{data['total']}] {data['label']:<42} "
              f"{data['duration']:6.2f}s  {data['source']}")
    elif kind == "done":
        print(f"  {data['summary']}")
    elif kind == "failed":
        print(f"  FAILED: {data['job'].get('error', 'unknown error')}")
    elif kind == "deadline":
        print(f"  DEADLINE: {data['job'].get('error', 'deadline exceeded')}")
    elif kind == "chaos":
        fires = ", ".join(
            f"{f['site']}@{f['hit']}" for f in data.get("fires", [])
        )
        print(f"  [chaos] injected fault(s) fired: {fires}")
    else:
        print(f"  [{kind}] job {data['job']['job_id']} "
              f"(shard {data['job']['shard']})")


def cmd_client_submit(args: argparse.Namespace) -> int:
    import json

    from repro.serve import ServeError

    client = _serve_client(args)
    if args.specs:
        with open(args.specs) as f:
            specs = json.load(f)
        kind, params = "specs", {}
    else:
        specs = None
        kind = "evaluate"
        params = {"length": args.length, "seed": args.seed}
        if args.workloads:
            params["workloads"] = args.workloads
    try:
        descriptor = client.submit(
            kind, client=args.client, priority=args.priority,
            specs=specs, params=params,
        )
    except ServeError as exc:
        print(f"submit rejected: {exc}", file=sys.stderr)
        return 1
    coalesced = descriptor["coalesced"] > 0
    print(f"job {descriptor['job_id']} {descriptor['state']} "
          f"(kind={descriptor['kind']}, {descriptor['total']} spec(s), "
          f"shard {descriptor['shard']}"
          f"{', coalesced onto a running job' if coalesced else ''})")
    if args.no_wait:
        return 0
    on_event = None if args.quiet else _print_serve_event
    terminal = None
    for event in client.watch(descriptor["job_id"]):
        if on_event is not None:
            on_event(event)
        terminal = event
    if terminal is None:
        print("event stream ended without a terminal event", file=sys.stderr)
        return 1
    job = terminal["data"]["job"]
    if terminal["event"] in ("failed", "deadline"):
        print(f"job {terminal['event']}: {job.get('error', 'unknown error')}",
              file=sys.stderr)
        return 1
    retried = (f", {job['retried']} retried"
               if job.get("retried") else "")
    print(f"result: {job['executed']} executed, {job['cache_hits']} from cache, "
          f"{job['journal_hits']} from journal, {job['coalesced']} coalesced "
          f"rider(s){retried}")
    if args.json:
        envelope = client.result(descriptor["job_id"])
        document = envelope["result"]
        if kind == "evaluate":
            from repro.analysis.export import fig5_bench_from_json

            text = json.dumps(document, indent=2, sort_keys=True)
            fig5_bench_from_json(text)  # round-trip check before writing
        else:
            text = json.dumps(document, indent=2, sort_keys=True)
        with open(args.json, "w") as f:
            f.write(text)
        print(f"wrote result document to {args.json}")
    return 0


def cmd_client_watch(args: argparse.Namespace) -> int:
    from repro.serve import ServeError

    client = _serve_client(args)
    try:
        terminal = None
        for event in client.watch(args.job_id):
            _print_serve_event(event)
            terminal = event
    except ServeError as exc:
        print(f"watch failed: {exc}", file=sys.stderr)
        return 1
    if terminal is None or terminal["event"] != "done":
        return 1
    return 0


def cmd_client_status(args: argparse.Namespace) -> int:
    import json

    from repro.serve import ServeError

    client = _serve_client(args)
    try:
        status = client.status()
    except (ServeError, OSError) as exc:
        print(f"status failed: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    queue = status["queue"]
    cache = status["cache"]
    totals = status["totals"]
    print(f"serve at {args.server}: up {status['timing']['uptime_seconds']}s")
    print(f"  queue: {queue['in_flight']} in flight over {queue['shards']} "
          f"shard(s) {queue['depths']}, quota {queue['quota']}/client, "
          f"depth bound {queue['max_depth']}")
    if queue["clients"]:
        held = ", ".join(f"{c}={n}" for c, n in queue["clients"].items())
        print(f"  clients: {held}")
    print(f"  jobs: {totals['submitted']} submitted, {totals['coalesced']} "
          f"coalesced, {totals['completed']} completed, {totals['failed']} "
          f"failed")
    stats = cache["stats"]
    print(f"  cache {cache['root']} (fingerprint {cache['fingerprint']}): "
          f"{stats['hits']} hits, {stats['misses']} misses, "
          f"{stats['stores']} stores, {stats['gc_reclaimed_bytes']} bytes "
          f"reclaimed over {stats['gc_runs']} gc run(s)")
    return 0


def cmd_chaos_sites(args: argparse.Namespace) -> int:
    from repro.chaos.plan import SITES

    print(f"{len(SITES)} chaos site(s):")
    for site in SITES:
        retry = "retryable" if site.retryable else "terminal"
        print(f"  {site.name:<24} [{site.component}] ({retry})")
        print(f"      {site.description}")
    return 0


def cmd_chaos_plan(args: argparse.Namespace) -> int:
    from repro.chaos.plan import ALL_SITE_NAMES, CHAOS_PLAN_ENV, ChaosPlan

    schedule = {}
    for spec in args.site or []:
        name, _, hits_text = spec.partition(":")
        if not hits_text:
            print(f"--site needs name:hit1[,hit2...], got {spec!r}",
                  file=sys.stderr)
            return 2
        try:
            hits = [int(h) for h in hits_text.split(",")]
        except ValueError:
            print(f"bad hit list in {spec!r}", file=sys.stderr)
            return 2
        schedule[name] = {"hits": hits, "params": {}}
    try:
        if schedule:
            plan = ChaosPlan(seed=args.seed, schedule=schedule)
        else:
            plan = ChaosPlan.generate(args.seed, ALL_SITE_NAMES, fires=args.fires)
    except ValueError as exc:
        print(f"bad plan: {exc}", file=sys.stderr)
        return 2
    print(plan.to_json())
    print(f"# export {CHAOS_PLAN_ENV}='{plan.to_json()}'", file=sys.stderr)
    return 0


def cmd_chaos_run(args: argparse.Namespace) -> int:
    import json
    import tempfile

    from repro.chaos.campaign import ChaosCampaignConfig, run_campaign

    log = (lambda line: None) if args.quiet else (
        lambda line: print(f"[chaos] {line}", file=sys.stderr, flush=True)
    )
    workdir = args.workdir or tempfile.mkdtemp(prefix="repro-chaos-")
    config = ChaosCampaignConfig(
        workdir=workdir,
        seed=args.seed,
        length=args.length,
        sites=tuple(args.sites) if args.sites else None,
        scenarios=tuple(args.scenarios),
        retries=args.retries,
        event_timeout=args.event_timeout,
        log=log,
    )
    try:
        result = run_campaign(config)
    except (RuntimeError, ValueError) as exc:
        print(f"chaos campaign aborted: {exc}", file=sys.stderr)
        return 1
    if args.json:
        with open(args.json, "w") as f:
            json.dump(result.to_dict(), f, indent=2, sort_keys=True)
        log(f"wrote campaign report to {args.json}")
    for check in result.checks:
        mark = "ok " if check["ok"] else "FAIL"
        print(f"  [{mark}] {check['scenario']}/{check['name']}: "
              f"{check['detail']}")
    print(f"chaos campaign: {result.summary()}")
    return 0 if result.ok else 1


def cmd_lint(args: argparse.Namespace) -> int:
    import sys
    from pathlib import Path

    import repro
    from repro.lint import LintConfig, run_lint, write_baseline

    root = Path(args.root) if args.root else Path(repro.__file__).resolve().parent
    base_dir = root.parent
    if args.baseline:
        baseline = Path(args.baseline)
    else:
        candidates = (
            Path.cwd() / "lint-baseline.txt",
            base_dir.parent / "lint-baseline.txt",
        )
        baseline = next((c for c in candidates if c.exists()), None)
    if args.design:
        design = Path(args.design)
    else:
        # Anchor validation (B0) wants the DESIGN.md that travels with
        # the baseline; skip it when linting a bare tree without one.
        candidate = baseline.parent / "DESIGN.md" if baseline else None
        design = candidate if candidate is not None and candidate.exists() else None
    config = LintConfig(
        root=root, base_dir=base_dir, baseline_path=baseline, design_path=design
    )
    report = run_lint(config)
    if args.update_baseline:
        target = Path(args.baseline) if args.baseline else Path.cwd() / "lint-baseline.txt"
        count = write_baseline(report, target)
        print(f"wrote {count} baseline entr(y/ies) to {target}")
        return 0
    if args.json:
        from repro.analysis.export import lint_to_json

        print(lint_to_json(report))
    else:
        print(report.render_text())
    print(f"analyzer runtime: {report.duration_seconds:.2f}s", file=sys.stderr)
    exit_code = 0 if report.ok(strict=args.strict) else 1

    if args.cross_check:
        import json

        from repro.lint.crosscheck import cross_check
        from repro.lint.model import build_model

        model = build_model(config.root, config.base_dir)
        xcheck = cross_check(model, config)
        print(xcheck.render_text())
        if args.cross_check_out:
            out = Path(args.cross_check_out)
            out.write_text(
                json.dumps(xcheck.to_dict(), indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            print(f"cross-check site diff written to {out}", file=sys.stderr)
        if not xcheck.ok:
            exit_code = 1
    return exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="cc-NVM (DAC 2019) reproduction"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="show the modeled configuration").set_defaults(
        func=cmd_info
    )

    def add_run_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes for the sweep (default 1)")
        p.add_argument("--no-cache", action="store_true",
                       help="always re-execute; skip the on-disk result cache")
        p.add_argument("--timeout", type=float, default=None, metavar="SEC",
                       help="per-spec wall-clock budget (parallel runs only)")
        p.add_argument("--quiet", action="store_true",
                       help="suppress per-spec progress lines")

    evaluate = sub.add_parser("evaluate", help="regenerate Figure 5")
    evaluate.add_argument("--length", type=int, default=4000)
    evaluate.add_argument("--seed", type=int, default=1)
    evaluate.add_argument("--export", metavar="DIR", default=None,
                          help="also write CSV/JSON figure data into DIR")
    evaluate.add_argument("--json", metavar="FILE", default=None,
                          help="write the BENCH_fig5.json benchmark artifact")
    add_run_options(evaluate)
    evaluate.set_defaults(func=cmd_evaluate)

    sweep = sub.add_parser("sweep", help="regenerate Figure 6")
    sweep.add_argument("--length", type=int, default=3000)
    sweep.add_argument("--seed", type=int, default=1)
    add_run_options(sweep)
    sweep.set_defaults(func=cmd_sweep)

    simulate = sub.add_parser("simulate", help="run one workload on one design")
    simulate.add_argument("workload", choices=SPEC_ORDER)
    simulate.add_argument("--scheme", default="ccnvm", choices=sorted(SCHEME_LABELS))
    simulate.add_argument("--length", type=int, default=4000)
    simulate.add_argument("--seed", type=int, default=1)
    simulate.add_argument("--report", action="store_true",
                          help="print the full nested statistics report")
    simulate.add_argument("--stats-json", metavar="FILE", default=None,
                          help="write the statistics tree as JSON to FILE")
    simulate.set_defaults(func=cmd_simulate)

    obs = sub.add_parser(
        "obs", help="observability: event traces, timelines, time-series"
    )
    osub = obs.add_subparsers(dest="obs_command", required=True)

    def add_obs_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--length", type=int, default=4000)
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--capacity", type=int, default=None, metavar="N",
                       help="event ring-buffer budget (default 1M events); "
                            "oldest events are dropped beyond it")

    otrace = osub.add_parser(
        "trace", help="capture one run's event stream as a Chrome/Perfetto trace"
    )
    otrace.add_argument("workload", choices=SPEC_ORDER)
    otrace.add_argument("--scheme", default="ccnvm", choices=sorted(SCHEME_LABELS))
    add_obs_options(otrace)
    otrace.add_argument("--out", metavar="FILE", default=None,
                        help="write trace_event JSON to FILE (default stdout)")
    otrace.set_defaults(func=cmd_obs_trace)

    otimeline = osub.add_parser(
        "timeline", help="per-phase cycle/NVM-write attribution across designs"
    )
    otimeline.add_argument("workload", choices=SPEC_ORDER)
    otimeline.add_argument("--schemes", nargs="+", metavar="SCHEME",
                           choices=sorted(SCHEME_LABELS),
                           default=list(SCHEME_LABELS))
    add_obs_options(otimeline)
    otimeline.add_argument("--json", metavar="FILE", default=None,
                           help="write the BENCH_obs_headline.json artifact")
    add_run_options(otimeline)
    otimeline.set_defaults(func=cmd_obs_timeline)

    osample = osub.add_parser(
        "sample", help="interval-sampled stat deltas as a time-series"
    )
    osample.add_argument("workload", choices=SPEC_ORDER)
    osample.add_argument("--scheme", default="ccnvm", choices=sorted(SCHEME_LABELS))
    osample.add_argument("--every", type=int, default=1000, metavar="K",
                         help="sampling interval in cycles (default 1000)")
    add_obs_options(osample)
    osample.add_argument("--out", metavar="FILE", default=None,
                         help="write the series to FILE (default stdout)")
    osample.add_argument("--json", action="store_true",
                         help="emit the JSON series instead of CSV")
    osample.set_defaults(func=cmd_obs_sample)

    sub.add_parser("demo", help="crash/attack/recovery walk-through").set_defaults(
        func=cmd_demo
    )

    faults = sub.add_parser("faults", help="fault-injection campaigns")
    fsub = faults.add_subparsers(dest="faults_command", required=True)
    frun = fsub.add_parser(
        "run", help="sweep crash sites x schemes under the recovery oracle"
    )
    frun.add_argument("--smoke", action="store_true",
                      help="CI-sized campaign (two schemes, short workload)")
    frun.add_argument("--schemes", nargs="+", metavar="SCHEME",
                      choices=sorted(SCHEME_LABELS), default=None)
    frun.add_argument("--sites", nargs="+", metavar="SITE", default=None,
                      choices=ALL_SITE_NAMES,
                      help="restrict the sweep to these crash sites")
    frun.add_argument("--steps", type=int, default=None,
                      help="write-backs in the main workload loop")
    frun.add_argument("--seed", type=int, default=None)
    frun.add_argument("--export", metavar="DIR", default=None,
                      help="also write campaign CSV/JSON into DIR")
    add_run_options(frun)
    frun.set_defaults(func=cmd_faults_run)
    fsites = fsub.add_parser("sites", help="list the instrumented crash sites")
    fsites.add_argument("--scheme", default=None, choices=sorted(SCHEME_LABELS),
                        help="only the sites this design's execution can reach")
    fsites.add_argument("--json", action="store_true",
                        help="emit the machine-readable catalogue")
    fsites.set_defaults(func=cmd_faults_sites)

    crash = sub.add_parser(
        "crash", help="systematic crash-state exploration (ADR semantics)"
    )
    csub = crash.add_subparsers(dest="crash_command", required=True)
    cexplore = csub.add_parser(
        "explore",
        help="enumerate every ADR-permitted crash state and judge recovery",
    )
    cexplore.add_argument("--schemes", nargs="+", metavar="SCHEME",
                          choices=sorted(SCHEME_LABELS), default=["ccnvm"])
    cexplore.add_argument("--steps", type=int, default=None,
                          help="write-backs in the recorded workload "
                               "(default: the smoke budget)")
    cexplore.add_argument("--window", type=int, default=4,
                          help="in-flight reordering window (units)")
    cexplore.add_argument("--budget", type=int, default=16,
                          help="drop-set budget per crash point; exhaustive "
                               "below it, seeded sampling above")
    cexplore.add_argument("--seed", type=int, default=7)
    cexplore.add_argument("--shards", type=int, default=None,
                          help="enumerate cells per scheme (default 4)")
    cexplore.add_argument("--torn-batches", action="store_true",
                          help="also emit protocol-violating partially-applied "
                               "batches (demonstrates oracle sensitivity)")
    cexplore.add_argument("--nested-depth", type=int, default=2, choices=(1, 2),
                          help="crash-during-recovery schedule depth")
    cexplore.add_argument("--profile", default="hotset",
                          help="recording workload: 'hotset' or a Figure-5 "
                               "SPEC surrogate name")
    cexplore.add_argument("--classes", action="store_true",
                          help="route states through the equivalence-class "
                               "reducer: exhaustive drop-sets (budget "
                               "ignored), one oracle run per class")
    cexplore.add_argument("--spot", type=int, default=1,
                          help="passing-class witnesses spot-checked against "
                               "the representative (reduce mode)")
    cexplore.add_argument("--export", metavar="FILE", default=None,
                          help="write the JSON exploration summary to FILE")
    cexplore.add_argument("--reproducers", metavar="DIR", default=None,
                          help="write minimized reproducer JSON artifacts "
                               "into DIR")
    add_run_options(cexplore)
    cexplore.set_defaults(func=cmd_crash_explore)
    ccampaign = csub.add_parser(
        "campaign",
        help="the standing exhaustive campaign: scheme x workload grid of "
             "reduced (class-covered) explorations",
    )
    ccampaign.add_argument("--schemes", nargs="+", metavar="SCHEME",
                           choices=sorted(SCHEME_LABELS), default=None,
                           help="grid rows (default: every scheme)")
    ccampaign.add_argument("--profiles", nargs="+", metavar="PROFILE",
                           default=None,
                           help="grid columns (default: hotset plus every "
                                "Figure-5 surrogate)")
    ccampaign.add_argument("--steps", type=int, default=None,
                           help="write-backs per recorded workload "
                                "(default: the smoke budget)")
    ccampaign.add_argument("--window", type=int, default=4,
                           help="in-flight reordering window (units)")
    ccampaign.add_argument("--seed", type=int, default=7)
    ccampaign.add_argument("--shards", type=int, default=None,
                           help="enumerate cells per grid cell (default 4)")
    ccampaign.add_argument("--spot", type=int, default=1,
                           help="passing-class witnesses spot-checked per "
                                "class")
    ccampaign.add_argument("--min-classes", type=int, default=0,
                           help="fail unless the campaign distinguishes at "
                                "least this many classes in total")
    ccampaign.add_argument("--json", metavar="FILE", default=None,
                           help="write the JSON campaign summary (grid, "
                                "class tables, totals) to FILE")
    ccampaign.add_argument("--reproducers", metavar="DIR", default=None,
                           help="write minimized reproducer JSON artifacts "
                                "into DIR")
    add_run_options(ccampaign)
    ccampaign.set_defaults(func=cmd_crash_campaign)
    creplay = csub.add_parser(
        "replay", help="re-run a reproducer artifact on a fresh oracle"
    )
    creplay.add_argument("file", help="reproducer JSON artifact")
    creplay.set_defaults(func=cmd_crash_replay)
    cminimize = csub.add_parser(
        "minimize", help="delta-debug a reproducer's op list to 1-minimal"
    )
    cminimize.add_argument("file", help="reproducer JSON artifact")
    cminimize.add_argument("--out", metavar="FILE", default=None,
                           help="write the minimized artifact (default stdout)")
    cminimize.set_defaults(func=cmd_crash_minimize)

    runs = sub.add_parser("runs", help="inspect/prune the run result cache")
    rsub = runs.add_subparsers(dest="runs_command", required=True)
    rstatus = rsub.add_parser("status", help="cache inventory and hit/miss stats")
    rstatus.add_argument("--root", default=None, metavar="DIR",
                         help="cache directory (default .repro-cache or "
                              "$CCNVM_CACHE_DIR)")
    rstatus.add_argument("--json", action="store_true",
                         help="emit the machine-readable inventory")
    rstatus.set_defaults(func=cmd_runs_status)
    rgc = rsub.add_parser("gc", help="drop results from stale code fingerprints")
    rgc.add_argument("--root", default=None, metavar="DIR",
                     help="cache directory (default .repro-cache or "
                          "$CCNVM_CACHE_DIR)")
    rgc.add_argument("--all", action="store_true",
                     help="drop everything, journals and stats included")
    rgc.add_argument("--max-generations", type=int, default=None, metavar="N",
                     help="retain the current generation plus the N-1 newest "
                          "stale ones instead of dropping every stale one")
    rgc.add_argument("--max-bytes", type=int, default=None, metavar="B",
                     help="evict oldest entries (stale generations first) "
                          "until the store fits in B bytes")
    rgc.set_defaults(func=cmd_runs_gc)

    serve = sub.add_parser(
        "serve", help="run the long-lived simulation service daemon"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8377,
                       help="TCP port (0 picks an ephemeral one; see "
                            "--port-file)")
    serve.add_argument("--no-tcp", action="store_true",
                       help="serve only the unix socket")
    serve.add_argument("--unix-socket", default=None, metavar="PATH",
                       help="also (or only, with --no-tcp) listen on a unix "
                            "domain socket")
    serve.add_argument("--cache-root", default=None, metavar="DIR",
                       help="shared result cache (default .repro-cache or "
                            "$CCNVM_CACHE_DIR); one daemon per cache root")
    serve.add_argument("--shards", type=int, default=2,
                       help="work-queue shards = concurrently executing jobs")
    serve.add_argument("--quota", type=int, default=4,
                       help="max queued+running jobs per client (429 beyond)")
    serve.add_argument("--max-depth", type=int, default=64,
                       help="global admission bound on jobs in flight (503 "
                            "beyond)")
    serve.add_argument("--jobs", type=int, default=1, metavar="N",
                       help="worker processes per executing job")
    serve.add_argument("--max-generations", type=int, default=None, metavar="N",
                       help="evict the cache down to N generations after "
                            "each job")
    serve.add_argument("--max-bytes", type=int, default=None, metavar="B",
                       help="evict the cache down to B bytes after each job")
    serve.add_argument("--port-file", default=None, metavar="FILE",
                       help="write the bound TCP port here once listening")
    serve.add_argument("--log-file", default=None, metavar="FILE",
                       help="append the daemon log here")
    serve.add_argument("--quiet", action="store_true",
                       help="suppress the stderr log")
    serve.add_argument("--timeout", type=float, default=None, metavar="S",
                       help="per-spec execution timeout in seconds")
    serve.add_argument("--retries", type=int, default=2, metavar="N",
                       help="supervision retries for retryable failures "
                            "(worker death/hang/torn IPC)")
    serve.add_argument("--breaker-threshold", type=int, default=5, metavar="K",
                       help="consecutive job failures before degrading to "
                            "cache-only mode")
    serve.add_argument("--breaker-cooldown", type=float, default=30.0,
                       metavar="S",
                       help="seconds before the degraded service probes "
                            "the execution path again")
    serve.set_defaults(func=cmd_serve)

    client = sub.add_parser(
        "client", help="thin clients for a running `repro serve` daemon"
    )
    clsub = client.add_subparsers(dest="client_command", required=True)

    def add_client_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--server", default="http://127.0.0.1:8377",
                       metavar="URL",
                       help="http://host:port or unix:///path "
                            "(default http://127.0.0.1:8377)")

    csubmit = clsub.add_parser(
        "submit", help="submit a job (Figure 5 evaluate, or a spec file)"
    )
    add_client_options(csubmit)
    csubmit.add_argument("--length", type=int, default=4000)
    csubmit.add_argument("--seed", type=int, default=1)
    csubmit.add_argument("--workloads", nargs="+", metavar="WL",
                         choices=SPEC_ORDER, default=None,
                         help="restrict the evaluate matrix (default: all)")
    csubmit.add_argument("--specs", metavar="FILE", default=None,
                         help="submit raw RunSpec dicts from a JSON list "
                              "instead of the evaluate matrix")
    csubmit.add_argument("--client", default="cli", metavar="NAME",
                         help="client identity for quota accounting")
    csubmit.add_argument("--priority", type=int, default=0,
                         help="lower runs earlier within a shard")
    csubmit.add_argument("--no-wait", action="store_true",
                         help="return after admission; do not stream progress")
    csubmit.add_argument("--quiet", action="store_true",
                         help="suppress per-event progress lines")
    csubmit.add_argument("--json", metavar="FILE", default=None,
                         help="write the result document (for evaluate: the "
                              "BENCH_fig5-shaped document) to FILE")
    csubmit.set_defaults(func=cmd_client_submit)

    cwatch = clsub.add_parser("watch", help="stream a job's progress events")
    add_client_options(cwatch)
    cwatch.add_argument("job_id")
    cwatch.set_defaults(func=cmd_client_watch)

    cstatus = clsub.add_parser("status", help="daemon queue/cache inventory")
    add_client_options(cstatus)
    cstatus.add_argument("--json", action="store_true",
                         help="emit the machine-readable status document")
    cstatus.set_defaults(func=cmd_client_status)

    chaos = sub.add_parser(
        "chaos", help="deterministic infrastructure-fault injection"
    )
    chsub = chaos.add_subparsers(dest="chaos_command", required=True)
    chsites = chsub.add_parser(
        "sites", help="list the registered chaos injection sites"
    )
    chsites.set_defaults(func=cmd_chaos_sites)
    chplan = chsub.add_parser(
        "plan", help="emit a seeded chaos plan as canonical JSON "
                     "(export it via CCNVM_CHAOS_PLAN)"
    )
    chplan.add_argument("--seed", type=int, default=7)
    chplan.add_argument("--site", action="append", metavar="NAME:HIT[,HIT]",
                        help="schedule one site at the given 1-based visit "
                             "number(s); repeatable (default: a generated "
                             "plan over every site)")
    chplan.add_argument("--fires", type=int, default=1,
                        help="fires per site for generated plans")
    chplan.set_defaults(func=cmd_chaos_plan)
    chrun = chsub.add_parser(
        "run", help="chaos campaign: sweep fault sites against the real "
                    "service and assert the robustness invariants"
    )
    chrun.add_argument("--seed", type=int, default=7)
    chrun.add_argument("--length", type=int, default=120,
                       help="trace length per simulation cell")
    chrun.add_argument("--sites", nargs="+", metavar="NAME", default=None,
                       help="restrict the sweep to these sites")
    chrun.add_argument("--scenarios", nargs="+",
                       choices=("sweep", "resume", "breaker"),
                       default=["sweep", "resume", "breaker"])
    chrun.add_argument("--retries", type=int, default=2,
                       help="supervision retries in the service under test")
    chrun.add_argument("--event-timeout", type=float, default=60.0,
                       metavar="S",
                       help="per-event watch timeout; exceeding it is "
                            "recorded as a hang")
    chrun.add_argument("--workdir", default=None, metavar="DIR",
                       help="campaign scratch directory (default: a fresh "
                            "temp dir)")
    chrun.add_argument("--json", metavar="FILE", default=None,
                       help="write the machine-readable campaign report")
    chrun.add_argument("--quiet", action="store_true",
                       help="suppress progress logging")
    chrun.set_defaults(func=cmd_chaos_run)

    traffic = sub.add_parser(
        "traffic",
        help="the workload frontier: ace enumeration, trace ingestion, "
             "multi-tenant interleaving",
    )
    tsub = traffic.add_subparsers(dest="traffic_command", required=True)

    def add_bench_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--run", action="store_true",
                       help="run the workload on --schemes and print the "
                            "traffic bench results")
        p.add_argument("--schemes", nargs="+", metavar="S",
                       choices=sorted(SCHEMES),
                       default=["no_cc", "sc", "osiris_plus", "ccnvm_no_ds",
                                "ccnvm"],
                       help="designs for --run (default: the Figure-5 five)")
        p.add_argument("--length", type=int, default=20000,
                       help="references per run (default 20000)")
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--json", metavar="FILE", default=None,
                       help="write the traffic bench document to FILE")
        p.add_argument("--specs-out", metavar="FILE", default=None,
                       help="write the RunSpec list for `repro client "
                            "submit --specs` (daemon submission)")
        add_run_options(p)

    tace = tsub.add_parser(
        "ace",
        help="bounded exhaustive workload enumeration for the crash explorer",
    )
    tace.add_argument("--k", type=int, default=3,
                      help="writes per workload (default 3)")
    tace.add_argument("--list", action="store_true",
                      help="print every canonical workload profile name")
    tace.add_argument("--campaign", action="store_true",
                      help="run the full enumeration through the crash "
                           "explorer with exhaustive-coverage gates")
    tace.add_argument("--schemes", nargs="+", metavar="S", default=None,
                      choices=sorted(SCHEMES),
                      help="restrict the campaign (default: all schemes)")
    tace.add_argument("--seed", type=int, default=7)
    tace.add_argument("--spot", type=int, default=1,
                      help="witness spot checks per passing class")
    tace.add_argument("--json", metavar="FILE", default=None,
                      help="write the campaign summary document to FILE")
    add_run_options(tace)
    tace.set_defaults(func=cmd_traffic_ace)

    tingest = tsub.add_parser(
        "ingest", help="validate + normalize an external trace into the store"
    )
    tingest.add_argument("file", help="trace file (CSV/JSONL/Lackey)")
    tingest.add_argument("--format", choices=["csv", "jsonl", "lackey"],
                         default="csv")
    tingest.add_argument("--name", default=None,
                         help="workload name (default: the file stem)")
    tingest.add_argument("--store", default=None, metavar="DIR",
                         help="trace store root (default .repro-traffic or "
                              "$CCNVM_TRAFFIC_STORE)")
    tingest.add_argument("--footprint", type=int, default=16 << 20,
                         help="footprint addresses are folded into "
                              "(default 16 MiB)")
    add_bench_options(tingest)
    tingest.set_defaults(func=cmd_traffic_ingest)

    tinterleave = tsub.add_parser(
        "interleave", help="merge N tenant streams over one memory system"
    )
    tinterleave.add_argument("--tenant", action="append", required=True,
                             metavar="NAME:PROFILE[:WEIGHT]",
                             help="one tenant (repeat; at least 2)")
    tinterleave.add_argument("--policy",
                             choices=["round_robin", "weighted", "bursty"],
                             default="round_robin")
    tinterleave.add_argument("--burst", type=int, default=8,
                             help="max burst length for --policy bursty")
    add_bench_options(tinterleave)
    tinterleave.set_defaults(func=cmd_traffic_interleave)

    tcatalog = tsub.add_parser(
        "catalog", help="descriptor schema, ace bounds and stored traces"
    )
    tcatalog.add_argument("--store", default=None, metavar="DIR")
    tcatalog.add_argument("--json", action="store_true",
                          help="emit the machine-readable catalog")
    tcatalog.set_defaults(func=cmd_traffic_catalog)

    lint = sub.add_parser("lint", help="persistence-domain static analysis")
    lint.add_argument("--root", default=None, metavar="DIR",
                      help="tree to analyze (default: the installed repro package)")
    lint.add_argument("--baseline", default=None, metavar="FILE",
                      help="accepted-findings file "
                           "(default: ./lint-baseline.txt when present)")
    lint.add_argument("--json", action="store_true",
                      help="emit the machine-readable report")
    lint.add_argument("--strict", action="store_true",
                      help="also fail on stale baseline entries")
    lint.add_argument("--update-baseline", action="store_true",
                      help="rewrite the baseline from the current findings "
                           "(existing justification anchors are preserved)")
    lint.add_argument("--design", default=None, metavar="FILE",
                      help="DESIGN.md holding {#anchor} baseline "
                           "justifications (default: next to the baseline)")
    lint.add_argument("--cross-check", action="store_true",
                      help="replay a smoke persist trace and diff dynamic "
                           "persist sites against the static set")
    lint.add_argument("--cross-check-out", default=None, metavar="FILE",
                      help="write the static/dynamic site diff as JSON")
    lint.set_defaults(func=cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
