"""Shared infrastructure: config, stats, constants, persistence domains."""

from repro.common.persistence import (
    DomainDeclaration,
    declaration,
    is_declared,
    persistence,
    persistent_attrs,
    volatile_attrs,
)

__all__ = [
    "DomainDeclaration",
    "declaration",
    "is_declared",
    "persistence",
    "persistent_attrs",
    "volatile_attrs",
]
