"""Address arithmetic helpers.

All addresses in the model are plain integers (physical byte addresses).
The helpers here centralize the line/page alignment math so that the rest
of the code never open-codes shifts and masks.
"""

from __future__ import annotations

from repro.common.constants import (
    BLOCKS_PER_PAGE,
    CACHE_LINE_BITS,
    CACHE_LINE_SIZE,
    PAGE_BITS,
    PAGE_SIZE,
)


def line_align(addr: int) -> int:
    """Round *addr* down to the start of its cache line."""
    return addr & ~(CACHE_LINE_SIZE - 1)


def line_offset(addr: int) -> int:
    """Byte offset of *addr* inside its cache line."""
    return addr & (CACHE_LINE_SIZE - 1)


def line_index(addr: int) -> int:
    """Global index of the cache line containing *addr*."""
    return addr >> CACHE_LINE_BITS


def line_address(index: int) -> int:
    """Byte address of the cache line with global index *index*."""
    return index << CACHE_LINE_BITS


def page_align(addr: int) -> int:
    """Round *addr* down to the start of its page."""
    return addr & ~(PAGE_SIZE - 1)


def page_index(addr: int) -> int:
    """Global index of the page containing *addr*."""
    return addr >> PAGE_BITS


def page_address(index: int) -> int:
    """Byte address of the page with global index *index*."""
    return index << PAGE_BITS


def block_in_page(addr: int) -> int:
    """Index (0..63) of the data block containing *addr* within its page."""
    return (addr >> CACHE_LINE_BITS) & (BLOCKS_PER_PAGE - 1)


def is_line_aligned(addr: int) -> bool:
    """True if *addr* is the first byte of a cache line."""
    return (addr & (CACHE_LINE_SIZE - 1)) == 0


def lines_covering(addr: int, size: int) -> list[int]:
    """Line-aligned addresses of every cache line touched by ``[addr, addr+size)``.

    A zero-sized access touches no lines.
    """
    if size <= 0:
        return []
    first = line_align(addr)
    last = line_align(addr + size - 1)
    return list(range(first, last + 1, CACHE_LINE_SIZE))
