"""Configuration dataclasses for the full cc-NVM system model.

Defaults follow the paper's evaluation setup (Section 5):

* x86-64 out-of-order core at 3 GHz;
* private 32 KB L1 (2 cycles), shared 256 KB 8-way L2 (20 cycles);
* shared 128 KB 8-way meta cache at the L2 level (32 cycles) holding both
  encryption counters and Merkle-tree nodes;
* 64 B blocks, LRU replacement everywhere;
* PCM with 60 ns reads / 150 ns writes, 16 GB capacity;
* 32-entry read queue / 64-entry write queue in the memory controller,
  64-entry (4 KB) ADR-protected write pending queue;
* 72 ns AES latency, 80-cycle SHA-1 HMAC latency, 128-bit HMAC codewords
  (hence a 4-ary, 12-level Merkle tree);
* 32-cycle dirty-address-queue lookup;
* update-times limit N = 16 and 64-entry dirty address queue (M = 64) for
  the epoch trigger conditions.

Each config class is immutable (frozen dataclass) so a config can be shared
between system components without defensive copying; derived quantities are
exposed as properties.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from repro.common.constants import CACHE_LINE_SIZE, DEFAULT_NVM_CAPACITY


@dataclass(frozen=True)
class CpuConfig:
    """Core and clock parameters of the trace-driven CPU model."""

    #: Core clock in Hz (3 GHz in the paper).
    frequency_hz: float = 3e9

    #: Instructions retired per cycle while no memory stall is pending.  A
    #: modest out-of-order core sustains about 2 on SPEC-like code.
    peak_ipc: float = 2.0

    #: Fraction of a demand-read miss latency hidden by out-of-order
    #: memory-level parallelism.  0.0 models a fully blocking core, values
    #: toward 1.0 model perfect overlap.  The normalized figures are largely
    #: insensitive to this constant because it applies to every design.
    mlp_overlap: float = 0.35

    #: Fraction of an LLC write-back's blocking latency hidden from the
    #: core by the miss-status/write-back buffers.  The eviction only
    #: delays the demand fill when those buffers back up, so part of the
    #: serial metadata work (the HMAC chain to the root in SC / Osiris
    #: Plus / cc-NVM w/o DS) overlaps useful execution.  The exposed
    #: fraction is what Figure 5(a) measures.
    writeback_overlap: float = 0.6

    def ns_to_cycles(self, nanoseconds: float) -> int:
        """Convert a latency in nanoseconds to (rounded) core cycles."""
        return round(nanoseconds * self.frequency_hz / 1e9)


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one set-associative cache."""

    size_bytes: int
    associativity: int
    hit_latency: int
    line_size: int = CACHE_LINE_SIZE
    name: str = "cache"
    #: XOR-fold high address bits into the set index.  The metadata
    #: regions start at large power-of-two offsets, so plain modulo
    #: indexing maps the index-0 node of *every* tree level into the same
    #: set; hashed indexing (standard practice for shared metadata
    #: caches) spreads them out.
    hashed_sets: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes % (self.associativity * self.line_size):
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"{self.associativity} ways x {self.line_size} B lines"
            )
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"{self.name}: number of sets must be a power of two")

    @property
    def num_sets(self) -> int:
        """Number of sets (size / (ways * line size))."""
        return self.size_bytes // (self.associativity * self.line_size)

    @property
    def num_lines(self) -> int:
        """Total number of cache lines."""
        return self.size_bytes // self.line_size


@dataclass(frozen=True)
class NVMConfig:
    """The PCM device model."""

    capacity_bytes: int = DEFAULT_NVM_CAPACITY
    read_latency_ns: float = 60.0
    write_latency_ns: float = 150.0
    #: Independent banks per rank: access *latency* stays at the array
    #: timings above, but the device sustains one line transfer per
    #: (latency / banks) once requests pipeline across banks.
    banks: int = 8

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("NVM capacity must be positive")
        if self.banks <= 0:
            raise ValueError("NVM needs at least one bank")


@dataclass(frozen=True)
class ControllerConfig:
    """Memory-controller queueing parameters."""

    read_queue_entries: int = 32
    write_queue_entries: int = 64
    #: ADR-protected write pending queue entries (64 x 64 B = 4 KB).
    wpq_entries: int = 64
    #: Maximum re-reads of a line after an ECC-detected media fault before
    #: the controller gives up and reports a permanent media failure.
    read_retry_limit: int = 3
    #: Initial backoff between read retries, in core cycles (doubles per
    #: attempt — PCM drift faults often clear after a short wait).
    read_retry_backoff_cycles: int = 16
    #: Hard ceiling on a single retry's backoff, in core cycles.  The
    #: exponential doubling must not grow unbounded with the retry limit:
    #: a burst of correlated faults would otherwise stall the read port
    #: for arbitrarily long while recovery is trying to make progress.
    read_retry_backoff_cap_cycles: int = 256


@dataclass(frozen=True)
class SecurityConfig:
    """Latency and sizing of the encryption/authentication engines."""

    #: End-to-end AES (OTP generation) latency in nanoseconds.
    aes_latency_ns: float = 72.0
    #: One SHA-1 HMAC computation, in core cycles.
    hmac_latency_cycles: int = 80
    #: Meta cache shared by counters and Merkle-tree nodes.
    meta_cache: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=128 * 1024,
            associativity=8,
            hit_latency=32,
            name="meta",
            hashed_sets=True,
        )
    )


@dataclass(frozen=True)
class EpochConfig:
    """Tunables of the epoch-based consistency mechanism (Section 4.2)."""

    #: M — number of entries in the drainer's dirty address queue.  Bounded
    #: above by the WPQ depth ("it must be less than 64", i.e. at most 64).
    dirty_queue_entries: int = 64
    #: N — a metadata cache line that has been updated more than this many
    #: times since turning dirty triggers a drain (bounds recovery retries).
    update_limit: int = 16
    #: Look-up latency of the dirty address queue in core cycles.
    dirty_queue_lookup_cycles: int = 32


@dataclass(frozen=True)
class SystemConfig:
    """Aggregate configuration for one simulated system instance."""

    cpu: CpuConfig = field(default_factory=CpuConfig)
    l1: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=32 * 1024, associativity=2, hit_latency=2, name="l1"
        )
    )
    l2: CacheConfig = field(
        default_factory=lambda: CacheConfig(
            size_bytes=256 * 1024, associativity=8, hit_latency=20, name="l2"
        )
    )
    nvm: NVMConfig = field(default_factory=NVMConfig)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    security: SecurityConfig = field(default_factory=SecurityConfig)
    epoch: EpochConfig = field(default_factory=EpochConfig)

    def __post_init__(self) -> None:
        if self.epoch.dirty_queue_entries > self.controller.wpq_entries:
            raise ValueError(
                "dirty address queue cannot have more entries than the WPQ "
                f"({self.epoch.dirty_queue_entries} > {self.controller.wpq_entries})"
            )

    # -- paper-derived latencies, in core cycles ---------------------------

    @property
    def nvm_read_cycles(self) -> int:
        """PCM read latency in core cycles (60 ns -> 180 at 3 GHz)."""
        return self.cpu.ns_to_cycles(self.nvm.read_latency_ns)

    @property
    def nvm_write_cycles(self) -> int:
        """PCM write latency in core cycles (150 ns -> 450 at 3 GHz)."""
        return self.cpu.ns_to_cycles(self.nvm.write_latency_ns)

    @property
    def aes_cycles(self) -> int:
        """OTP generation latency in core cycles (72 ns -> 216 at 3 GHz)."""
        return self.cpu.ns_to_cycles(self.security.aes_latency_ns)

    def with_epoch(self, **changes: Any) -> "SystemConfig":
        """A copy of this config with epoch parameters replaced.

        Convenience for sensitivity sweeps::

            cfg.with_epoch(update_limit=32)
        """
        return replace(self, epoch=replace(self.epoch, **changes))

    def with_nvm(self, **changes: Any) -> "SystemConfig":
        """A copy of this config with NVM parameters replaced."""
        return replace(self, nvm=replace(self.nvm, **changes))


def paper_config() -> SystemConfig:
    """The exact configuration used in the paper's evaluation (Section 5)."""
    return SystemConfig()
