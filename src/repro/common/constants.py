"""Architectural constants shared across the cc-NVM model.

The values here mirror the evaluation setup of the paper (Section 5):
64-byte cache blocks everywhere, 4 KB pages, a 16 GB PCM device, 128-bit
HMAC codewords, and a 4-ary Bonsai Merkle Tree.  Everything that is a
*tunable* (cache sizes, latencies, queue depths, epoch triggers) lives in
:mod:`repro.common.config` instead; this module only holds quantities that
the address-map and codec layers treat as fixed by the architecture.
"""

from __future__ import annotations

#: Size of one cache block / memory line in bytes.  All traffic between the
#: LLC, the memory controller and the NVM moves in units of this size.
CACHE_LINE_SIZE = 64

#: log2(CACHE_LINE_SIZE); used for fast address-to-line conversions.
CACHE_LINE_BITS = 6

#: Size of one page in bytes.  One counter line covers one data page.
PAGE_SIZE = 4096

#: log2(PAGE_SIZE).
PAGE_BITS = 12

#: Number of data blocks per page (PAGE_SIZE / CACHE_LINE_SIZE).
BLOCKS_PER_PAGE = PAGE_SIZE // CACHE_LINE_SIZE

#: HMAC codeword width used throughout the design, in bytes (128-bit,
#: Section 5: "The HMAC is 128-bit codewords").
HMAC_SIZE = 16

#: Number of child HMACs one 64 B Merkle-tree node can hold; this fixes the
#: tree arity ("thus the Merkle Tree is 4-ary").
MERKLE_ARITY = CACHE_LINE_SIZE // HMAC_SIZE

#: Split-counter layout inside one 64 B counter line: one 64-bit major
#: counter shared by the page plus one 7-bit minor counter per data block
#: (64 blocks/page).  8 + 64 * 7 / 8 = 64 bytes exactly.
MAJOR_COUNTER_BYTES = 8
MINOR_COUNTER_BITS = 7
MINOR_COUNTER_MAX = (1 << MINOR_COUNTER_BITS) - 1

#: Default modeled NVM capacity (16 GB, Section 5).
DEFAULT_NVM_CAPACITY = 16 << 30

#: Levels of the Bonsai Merkle Tree for the default 16 GB device, counting
#: the counter-line leaf level and the on-chip root (Section 2.3 / 5.2:
#: "12 layers for a 16 GB NVM with 128-bit HMAC").
DEFAULT_MERKLE_LEVELS = 12
