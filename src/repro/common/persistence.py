"""Persistence-domain declarations for the static analyzer and runtime.

cc-NVM's correctness argument rests on a write-ordering discipline:
persistent state — the TCB root registers, ``Nwb``, the NVM line arrays —
may only change through sanctioned micro-ops (the owning class's methods,
the WPQ's ``write``/``write_atomic``/``commit_atomic``), in an order the
recovery algorithm can undo or roll forward.  This module is the single
place that discipline is *declared* so ``repro.lint`` can *enforce* it.

Classes annotate themselves with the :func:`persistence` decorator::

    @persistence(
        persistent=("root_new", "root_old", "nwb"),
        volatile=(),
        aka=("tcb",),
        mutators=("update_root_new", "commit_root", "set_roots"),
    )
    class TCB: ...

* ``persistent`` — attribute names that survive a power failure.  The
  lint rule P1 forbids assigning them outside the owning class: all
  mutation must go through the class's own methods, which are the
  sanctioned (and fault-instrumented) micro-ops.
* ``volatile`` — attribute names lost at a power failure.  Rule P4
  forbids recovery-path code from reading them: recovery must work from
  the NVM image and the persistent TCB registers alone.
* ``aka`` — receiver names under which instances of the class
  conventionally appear elsewhere (``self.tcb``, ``scheme.wpq`` ...);
  the analyzer uses them to attribute ``x.tcb.nwb = 0`` to :class:`TCB`
  without type inference.
* ``mutators`` — the class's sanctioned write-path methods, quoted in
  lint messages as the suggested fix for a direct store.

The decorator arguments must be **literal** tuples/lists of strings: the
analyzer reads them from the AST without importing the code (importing
the system under analysis could run it).  Non-literal declarations are
themselves reported by the analyzer (rule P0).

Declarations are inherited: a subclass's effective domains are the union
of its own and its ancestors' (``CcNVM`` adds ``_draining`` to the base
scheme's volatile set, for example).  At runtime the same information is
queryable through :func:`persistent_attrs` / :func:`volatile_attrs`,
which the unit tests use to cross-check the model against reality.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Name of the attribute the decorator stores its declaration under.
DECLARATION_ATTR = "__persistence__"


@dataclass(frozen=True)
class DomainDeclaration:
    """The declared persistence domains of one class (not inherited)."""

    cls_name: str
    persistent: tuple[str, ...] = ()
    volatile: tuple[str, ...] = ()
    aka: tuple[str, ...] = ()
    mutators: tuple[str, ...] = ()


#: Runtime registry of declared classes, keyed by class name.
REGISTRY: dict[str, DomainDeclaration] = {}


def persistence(
    *,
    persistent: tuple[str, ...] = (),
    volatile: tuple[str, ...] = (),
    aka: tuple[str, ...] = (),
    mutators: tuple[str, ...] = (),
):
    """Class decorator declaring which attributes persist across a crash."""
    overlap = set(persistent) & set(volatile)
    if overlap:
        raise ValueError(
            f"attributes cannot be both persistent and volatile: {sorted(overlap)}"
        )

    def wrap(cls):
        decl = DomainDeclaration(
            cls.__name__,
            tuple(persistent),
            tuple(volatile),
            tuple(aka),
            tuple(mutators),
        )
        setattr(cls, DECLARATION_ATTR, decl)
        REGISTRY[cls.__name__] = decl
        return cls

    return wrap


def declaration(cls) -> DomainDeclaration | None:
    """The declaration made *on cls itself* (not inherited), or ``None``."""
    decl = cls.__dict__.get(DECLARATION_ATTR)
    return decl if isinstance(decl, DomainDeclaration) else None


def is_declared(cls) -> bool:
    """True when *cls* (or an ancestor) carries a persistence declaration."""
    return any(declaration(c) is not None for c in cls.__mro__)


def persistent_attrs(cls) -> frozenset[str]:
    """Effective persistent attribute names of *cls*, ancestors included."""
    return frozenset(
        name
        for c in cls.__mro__
        if (decl := declaration(c)) is not None
        for name in decl.persistent
    )


def volatile_attrs(cls) -> frozenset[str]:
    """Effective volatile attribute names of *cls*, ancestors included."""
    return frozenset(
        name
        for c in cls.__mro__
        if (decl := declaration(c)) is not None
        for name in decl.volatile
    )
