"""Persistence-domain declarations for the static analyzer and runtime.

cc-NVM's correctness argument rests on a write-ordering discipline:
persistent state — the TCB root registers, ``Nwb``, the NVM line arrays —
may only change through sanctioned micro-ops (the owning class's methods,
the WPQ's ``write``/``write_atomic``/``commit_atomic``), in an order the
recovery algorithm can undo or roll forward.  This module is the single
place that discipline is *declared* so ``repro.lint`` can *enforce* it.

Classes annotate themselves with the :func:`persistence` decorator::

    @persistence(
        persistent=("root_new", "root_old", "nwb"),
        volatile=(),
        aka=("tcb",),
        mutators=("update_root_new", "commit_root", "set_roots"),
    )
    class TCB: ...

* ``persistent`` — attribute names that survive a power failure.  The
  lint rule P1 forbids assigning them outside the owning class: all
  mutation must go through the class's own methods, which are the
  sanctioned (and fault-instrumented) micro-ops.
* ``volatile`` — attribute names lost at a power failure.  Rule P4
  forbids recovery-path code from reading them: recovery must work from
  the NVM image and the persistent TCB registers alone.
* ``aka`` — receiver names under which instances of the class
  conventionally appear elsewhere (``self.tcb``, ``scheme.wpq`` ...);
  the analyzer uses them to attribute ``x.tcb.nwb = 0`` to :class:`TCB`
  without type inference.
* ``mutators`` — the class's sanctioned write-path methods, quoted in
  lint messages as the suggested fix for a direct store.

Four further fields declare the **ordering-point model** the
interprocedural analyzer (rules P6/P7) reasons over:

* ``stores`` — mutators that accept a *droppable* persistent store:
  under ADR a normal WPQ write is durable once accepted, but the
  controller may still lose it behind later in-flight traffic at a
  power failure (the osiris_plus stop-loss bug class).  Declared on the
  WPQ (``write``, ``write_partial``).
* ``fences`` — mutators that *order* every earlier accepted store
  before themselves: a batch commit (ADR flushes the whole batch and
  the batch owns the WPQ end to end) and an epoch root commit (the
  drain blocks until the WPQ is empty).  Declared on the WPQ
  (``commit_atomic``) and the TCB (``commit_root``, ``set_roots``).
* ``ordered`` — *seam* methods whose persistent stores uphold a
  recovery bound and must therefore be fenced before the method
  returns.  Declared on the scheme base for the write-back seams
  (``_pre_accept``, ``_update_tree``, ``_post_writeback``): any
  droppable store still pending at such a seam's exit can be lost
  behind the very write-backs whose staleness it was meant to bound.
* ``grouped`` — register micro-ops that must execute inside a
  ``begin_combined``/``end_combined`` controller transaction so the
  persist-trace recorder (and ADR) sees them share fate with the data
  write they describe.  Declared on the TCB (``count_writeback``,
  ``log_counter_update``).

The decorator arguments must be **literal** tuples/lists of strings: the
analyzer reads them from the AST without importing the code (importing
the system under analysis could run it).  Non-literal declarations are
themselves reported by the analyzer (rule P0).

Declarations are inherited: a subclass's effective domains are the union
of its own and its ancestors' (``CcNVM`` adds ``_draining`` to the base
scheme's volatile set, for example).  At runtime the same information is
queryable through :func:`persistent_attrs` / :func:`volatile_attrs`,
which the unit tests use to cross-check the model against reality.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Name of the attribute the decorator stores its declaration under.
DECLARATION_ATTR = "__persistence__"


@dataclass(frozen=True)
class DomainDeclaration:
    """The declared persistence domains of one class (not inherited)."""

    cls_name: str
    persistent: tuple[str, ...] = ()
    volatile: tuple[str, ...] = ()
    aka: tuple[str, ...] = ()
    mutators: tuple[str, ...] = ()
    stores: tuple[str, ...] = ()
    fences: tuple[str, ...] = ()
    ordered: tuple[str, ...] = ()
    grouped: tuple[str, ...] = ()


#: Runtime registry of declared classes, keyed by class name.
REGISTRY: dict[str, DomainDeclaration] = {}


def persistence(
    *,
    persistent: tuple[str, ...] = (),
    volatile: tuple[str, ...] = (),
    aka: tuple[str, ...] = (),
    mutators: tuple[str, ...] = (),
    stores: tuple[str, ...] = (),
    fences: tuple[str, ...] = (),
    ordered: tuple[str, ...] = (),
    grouped: tuple[str, ...] = (),
):
    """Class decorator declaring which attributes persist across a crash."""
    overlap = set(persistent) & set(volatile)
    if overlap:
        raise ValueError(
            f"attributes cannot be both persistent and volatile: {sorted(overlap)}"
        )

    def wrap(cls):
        decl = DomainDeclaration(
            cls.__name__,
            tuple(persistent),
            tuple(volatile),
            tuple(aka),
            tuple(mutators),
            tuple(stores),
            tuple(fences),
            tuple(ordered),
            tuple(grouped),
        )
        setattr(cls, DECLARATION_ATTR, decl)
        REGISTRY[cls.__name__] = decl
        return cls

    return wrap


def declaration(cls) -> DomainDeclaration | None:
    """The declaration made *on cls itself* (not inherited), or ``None``."""
    decl = cls.__dict__.get(DECLARATION_ATTR)
    return decl if isinstance(decl, DomainDeclaration) else None


def is_declared(cls) -> bool:
    """True when *cls* (or an ancestor) carries a persistence declaration."""
    return any(declaration(c) is not None for c in cls.__mro__)


def persistent_attrs(cls) -> frozenset[str]:
    """Effective persistent attribute names of *cls*, ancestors included."""
    return frozenset(
        name
        for c in cls.__mro__
        if (decl := declaration(c)) is not None
        for name in decl.persistent
    )


def volatile_attrs(cls) -> frozenset[str]:
    """Effective volatile attribute names of *cls*, ancestors included."""
    return frozenset(
        name
        for c in cls.__mro__
        if (decl := declaration(c)) is not None
        for name in decl.volatile
    )
