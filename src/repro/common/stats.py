"""Hierarchical statistics registry.

Every hardware component in the model (caches, NVM device, drainer,
encryption engine, ...) owns a :class:`StatGroup` and registers named
counters and distributions on it.  Groups nest, so the full-system report
reads like gem5's ``stats.txt``::

    system.llc.misses                4211
    system.nvm.writes.data           10234
    system.nvm.writes.merkle         1201

The registry is intentionally dependency-free and cheap: counters are plain
ints bumped through :meth:`Counter.inc`, and nothing is computed until a
report is requested.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


class Counter:
    """A monotonically growing integer statistic."""

    __slots__ = ("name", "desc", "value")

    def __init__(self, name: str, desc: str = "") -> None:
        self.name = name
        self.desc = desc
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (default 1) to the counter."""
        self.value += amount

    def reset(self) -> None:
        """Zero the counter."""
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


#: Fixed histogram geometry shared by every :class:`Distribution`: bucket 0
#: holds values below 1, bucket ``i`` holds ``[2**(i-1), 2**i)``, and the
#: last bucket absorbs everything from ``2**(HISTOGRAM_BUCKETS-2)`` up.
#: 34 buckets cover cycle counts beyond 2**32 — more than any modeled run.
HISTOGRAM_BUCKETS = 34

#: The percentiles every distribution reports.
PERCENTILES = (50, 95, 99)


def _bucket_index(value: float) -> int:
    if value < 1:
        return 0
    return min(HISTOGRAM_BUCKETS - 1, 1 + int(value).bit_length() - 1)


def _bucket_bounds(index: int) -> tuple[float, float]:
    """``[lo, hi)`` value range of one histogram bucket."""
    if index == 0:
        return 0.0, 1.0
    return float(1 << (index - 1)), float(1 << index)


class Distribution:
    """Streaming aggregate of observed samples.

    Besides min/mean/max/count, a fixed-bucket (power-of-two) histogram
    is maintained so approximate percentiles survive with O(1) memory:
    :meth:`percentile` locates the bucket holding the requested rank and
    interpolates linearly inside it, clamped to the observed [min, max].
    """

    __slots__ = ("name", "desc", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str, desc: str = "") -> None:
        self.name = name
        self.desc = desc
        self.reset()

    def sample(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.buckets[_bucket_index(value)] += 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of all samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate *q*-th percentile (``0 < q <= 100``); 0.0 when empty.

        Exact for the extremes (p0 = min, p100 = max); in between the
        value is interpolated inside the histogram bucket containing the
        requested rank, so the error is bounded by the bucket width.
        """
        if self.count == 0:
            return 0.0
        target = q / 100.0 * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.buckets):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                lo, hi = _bucket_bounds(index)
                fraction = (target - cumulative) / bucket_count
                value = lo + fraction * (hi - lo)
                return min(max(value, self.min), self.max)
            cumulative += bucket_count
        return self.max

    def percentiles(self) -> dict[str, float]:
        """The standard ``{"p50": ..., "p95": ..., "p99": ...}`` summary."""
        return {f"p{q}": self.percentile(q) for q in PERCENTILES}

    def reset(self) -> None:
        """Forget all samples."""
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.buckets = [0] * HISTOGRAM_BUCKETS

    def as_dict(self) -> dict[str, float]:
        """JSON-able summary: ``n`` always, the aggregates when non-empty."""
        if self.count == 0:
            return {"n": 0}
        summary = {
            "n": self.count,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }
        summary.update(self.percentiles())
        return summary

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Distribution({self.name}: n={self.count}, mean={self.mean:.3f})"


@dataclass
class StatGroup:
    """A named collection of statistics and child groups."""

    name: str
    counters: dict[str, Counter] = field(default_factory=dict)
    distributions: dict[str, Distribution] = field(default_factory=dict)
    children: dict[str, "StatGroup"] = field(default_factory=dict)

    def counter(self, name: str, desc: str = "") -> Counter:
        """Return the counter *name*, creating it on first use."""
        stat = self.counters.get(name)
        if stat is None:
            stat = Counter(name, desc)
            self.counters[name] = stat
        return stat

    def distribution(self, name: str, desc: str = "") -> Distribution:
        """Return the distribution *name*, creating it on first use."""
        stat = self.distributions.get(name)
        if stat is None:
            stat = Distribution(name, desc)
            self.distributions[name] = stat
        return stat

    def group(self, name: str) -> "StatGroup":
        """Return the child group *name*, creating it on first use."""
        child = self.children.get(name)
        if child is None:
            child = StatGroup(name)
            self.children[name] = child
        return child

    def reset(self) -> None:
        """Recursively reset every statistic in this subtree."""
        for stat in self.counters.values():
            stat.reset()
        for dist in self.distributions.values():
            dist.reset()
        for child in self.children.values():
            child.reset()

    def walk(self, prefix: str = "") -> Iterator[tuple[str, Counter | Distribution]]:
        """Yield ``(dotted_path, stat)`` for every stat in this subtree."""
        base = f"{prefix}{self.name}" if prefix or self.name else self.name
        for stat in self.counters.values():
            yield f"{base}.{stat.name}", stat
        for dist in self.distributions.values():
            yield f"{base}.{dist.name}", dist
        for child in self.children.values():
            yield from child.walk(f"{base}." if base else "")

    def as_dict(self) -> dict[str, float | dict[str, float]]:
        """Flatten to ``{dotted_path: value}``.

        Counters flatten to their integer value; distributions export the
        full ``{"n", "min", "max", "mean", "p50", "p95", "p99"}`` summary
        (just ``{"n": 0}`` when empty) instead of collapsing to the mean.
        """
        result: dict[str, float | dict[str, float]] = {}
        for path, stat in self.walk():
            if isinstance(stat, Counter):
                result[path] = stat.value
            else:
                result[path] = stat.as_dict()
        return result

    def report(self) -> str:
        """Human-readable, gem5-style stat dump for this subtree."""
        lines = []
        for path, stat in sorted(self.walk()):
            if isinstance(stat, Counter):
                lines.append(f"{path:<60} {stat.value}")
            elif stat.count == 0:
                lines.append(f"{path:<60} n=0")
            else:
                lines.append(
                    f"{path:<60} n={stat.count} mean={stat.mean:.4f}"
                    f" min={stat.min:g} max={stat.max:g}"
                    f" p50={stat.percentile(50):g}"
                    f" p95={stat.percentile(95):g}"
                    f" p99={stat.percentile(99):g}"
                )
        return "\n".join(lines)
