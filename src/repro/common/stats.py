"""Hierarchical statistics registry.

Every hardware component in the model (caches, NVM device, drainer,
encryption engine, ...) owns a :class:`StatGroup` and registers named
counters and distributions on it.  Groups nest, so the full-system report
reads like gem5's ``stats.txt``::

    system.llc.misses                4211
    system.nvm.writes.data           10234
    system.nvm.writes.merkle         1201

The registry is intentionally dependency-free and cheap: counters are plain
ints bumped through :meth:`Counter.inc`, and nothing is computed until a
report is requested.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


class Counter:
    """A monotonically growing integer statistic."""

    __slots__ = ("name", "desc", "value")

    def __init__(self, name: str, desc: str = "") -> None:
        self.name = name
        self.desc = desc
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add *amount* (default 1) to the counter."""
        self.value += amount

    def reset(self) -> None:
        """Zero the counter."""
        self.value = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counter({self.name}={self.value})"


class Distribution:
    """Streaming min/max/mean/count aggregate of observed samples."""

    __slots__ = ("name", "desc", "count", "total", "min", "max")

    def __init__(self, name: str, desc: str = "") -> None:
        self.name = name
        self.desc = desc
        self.reset()

    def sample(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all samples (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def reset(self) -> None:
        """Forget all samples."""
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Distribution({self.name}: n={self.count}, mean={self.mean:.3f})"


@dataclass
class StatGroup:
    """A named collection of statistics and child groups."""

    name: str
    counters: dict[str, Counter] = field(default_factory=dict)
    distributions: dict[str, Distribution] = field(default_factory=dict)
    children: dict[str, "StatGroup"] = field(default_factory=dict)

    def counter(self, name: str, desc: str = "") -> Counter:
        """Return the counter *name*, creating it on first use."""
        stat = self.counters.get(name)
        if stat is None:
            stat = Counter(name, desc)
            self.counters[name] = stat
        return stat

    def distribution(self, name: str, desc: str = "") -> Distribution:
        """Return the distribution *name*, creating it on first use."""
        stat = self.distributions.get(name)
        if stat is None:
            stat = Distribution(name, desc)
            self.distributions[name] = stat
        return stat

    def group(self, name: str) -> "StatGroup":
        """Return the child group *name*, creating it on first use."""
        child = self.children.get(name)
        if child is None:
            child = StatGroup(name)
            self.children[name] = child
        return child

    def reset(self) -> None:
        """Recursively reset every statistic in this subtree."""
        for stat in self.counters.values():
            stat.reset()
        for dist in self.distributions.values():
            dist.reset()
        for child in self.children.values():
            child.reset()

    def walk(self, prefix: str = "") -> Iterator[tuple[str, Counter | Distribution]]:
        """Yield ``(dotted_path, stat)`` for every stat in this subtree."""
        base = f"{prefix}{self.name}" if prefix or self.name else self.name
        for stat in self.counters.values():
            yield f"{base}.{stat.name}", stat
        for dist in self.distributions.values():
            yield f"{base}.{dist.name}", dist
        for child in self.children.values():
            yield from child.walk(f"{base}." if base else "")

    def as_dict(self) -> dict[str, float]:
        """Flatten to ``{dotted_path: value}`` (distributions report mean)."""
        result: dict[str, float] = {}
        for path, stat in self.walk():
            if isinstance(stat, Counter):
                result[path] = stat.value
            else:
                result[path] = stat.mean
        return result

    def report(self) -> str:
        """Human-readable, gem5-style stat dump for this subtree."""
        lines = []
        for path, stat in sorted(self.walk()):
            if isinstance(stat, Counter):
                lines.append(f"{path:<60} {stat.value}")
            else:
                lines.append(
                    f"{path:<60} n={stat.count} mean={stat.mean:.4f}"
                    f" min={stat.min if stat.count else 0}"
                    f" max={stat.max if stat.count else 0}"
                )
        return "\n".join(lines)
