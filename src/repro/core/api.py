"""High-level byte-granular facade over a secure-NVM machine.

:class:`SecureMemory` is the entry point a downstream user starts with: a
persistent, encrypted, authenticated memory with ``store``/``load`` byte
semantics, built from any of the five designs.  It wires a full machine —
cache hierarchy, meta cache, encryption engine, drainer — behind two
methods, and exposes the interesting levers (flush, crash, recover,
attack surface) for experimentation::

    from repro import SecureMemory

    mem = SecureMemory()                  # cc-NVM, paper configuration
    mem.store(0x1000, b"precious data")
    mem.persist(0x1000, 13)               # clwb: write the lines to NVM
    mem.crash()                           # power failure, caches lost
    report = mem.recover()                # counters rolled forward
    assert report.success
    assert mem.load(0x1000, 13) == b"precious data"

As on real hardware, a store that was never persisted (or evicted) is
lost with the caches on a crash — durability points are software's job.

Time is advanced internally (each operation starts when the previous one
finished); :attr:`now` exposes the running cycle count.
"""

from __future__ import annotations

from repro.common.address import lines_covering
from repro.common.config import SystemConfig
from repro.common.constants import CACHE_LINE_SIZE
from repro.core.attacks import Attacker
from repro.core.recovery import RecoveryReport
from repro.core.schemes import create_scheme
from repro.sim.system import MemoryHierarchy


class SecureMemory:
    """Byte-granular secure NVM built on one of the evaluated designs."""

    def __init__(
        self,
        scheme: str = "ccnvm",
        config: SystemConfig | None = None,
        data_capacity: int | None = None,
        seed: int | str = 0,
    ) -> None:
        self.config = config or SystemConfig()
        self.scheme = create_scheme(scheme, self.config, data_capacity, seed)
        self.hierarchy = MemoryHierarchy(self.config, self.scheme)
        #: Running cycle clock; every operation advances it.
        self.now = 0

    @property
    def capacity(self) -> int:
        """Usable (data-region) capacity in bytes."""
        return self.scheme.layout.data_capacity

    # -- data path ----------------------------------------------------------------

    def store(self, addr: int, data: bytes) -> None:
        """Write *data* at byte address *addr* (read-modify-write of lines)."""
        if not data:
            return
        if addr < 0 or addr + len(data) > self.capacity:
            raise ValueError("store outside the data region")
        remaining = memoryview(bytes(data))
        for line_addr in lines_covering(addr, len(data)):
            offset = max(addr, line_addr) - line_addr
            take = min(CACHE_LINE_SIZE - offset, len(remaining))
            old, latency, _ = self.hierarchy.read(self.now, line_addr)
            self.now += latency
            merged = old[:offset] + bytes(remaining[:take]) + old[offset + take:]
            cost, _ = self.hierarchy.write(self.now, line_addr, merged)
            self.now += cost
            remaining = remaining[take:]

    def load(self, addr: int, size: int) -> bytes:
        """Read *size* bytes from byte address *addr*."""
        if size <= 0:
            return b""
        if addr < 0 or addr + size > self.capacity:
            raise ValueError("load outside the data region")
        chunks = []
        taken = 0
        for line_addr in lines_covering(addr, size):
            data, latency, _ = self.hierarchy.read(self.now, line_addr)
            self.now += latency
            offset = max(addr, line_addr) - line_addr
            take = min(CACHE_LINE_SIZE - offset, size - taken)
            chunks.append(data[offset:offset + take])
            taken += take
        return b"".join(chunks)

    def persist(self, addr: int, size: int) -> None:
        """Force the lines covering ``[addr, addr+size)`` to NVM (clwb)."""
        for line_addr in lines_covering(addr, size):
            self.now += self.hierarchy.persist_line(self.now, line_addr)

    # -- lifecycle -----------------------------------------------------------------

    def flush(self) -> None:
        """Graceful shutdown: push everything to NVM consistently."""
        self.hierarchy.flush()

    def crash(self) -> None:
        """Power failure: all volatile state vanishes; NVM and TCB persist."""
        self.hierarchy.crash()

    def recover(self) -> RecoveryReport:
        """Run the design's post-crash recovery."""
        return self.scheme.recover()

    # -- experimentation surface ------------------------------------------------------

    def attacker(self) -> Attacker:
        """The threat-model adversary bound to this machine's NVM."""
        return Attacker(self.scheme.nvm)

    def stats(self) -> dict[str, float]:
        """Flattened statistics of every component."""
        return self.scheme.stats.as_dict()

    def nvm_writes(self) -> dict[str, int]:
        """NVM line writes per region."""
        return self.scheme.nvm.writes_by_region()
