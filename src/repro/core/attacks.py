"""Attack injection against the untrusted NVM image.

Implements the threat model's adversary (Section 2.1): a man-in-the-middle
with full read/write access to everything outside the TCB — the NVM
contents and all off-chip traffic.  Three integrity-attack primitives are
provided, each operating directly on the :class:`NVMDevice` backdoor (no
traffic accounting — the attacker is not part of the machine):

* **spoofing** — overwrite a value in place (data block, data HMAC,
  counter line or tree node);
* **splicing** — move a (data block, data HMAC) pair from one address to
  another;
* **replay** — restore a previously captured version of any line set
  (data+HMAC, a counter line, or a whole tree path).

The confidentiality adversary is a read: :meth:`Attacker.observe` returns
raw ciphertext, and the test suite checks it carries no plaintext.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.address import line_align
from repro.common.constants import HMAC_SIZE
from repro.mem.nvm import NVMDevice
from repro.metadata.layout import MemoryLayout, MerkleNodeId


@dataclass(frozen=True)
class Snapshot:
    """A point-in-time capture of the NVM image (attacker's recording)."""

    image: dict[int, bytes]

    def line(self, nvm: NVMDevice, addr: int) -> bytes:
        """The captured value of one line (genesis if untouched then)."""
        captured = self.image.get(addr)
        return captured if captured is not None else nvm.virgin(addr)


class Attacker:
    """Man-in-the-middle with full access to the NVM image."""

    def __init__(self, nvm: NVMDevice) -> None:
        self.nvm = nvm
        self.layout: MemoryLayout = nvm.layout

    # -- observation (confidentiality attack) --------------------------------------

    def observe(self, addr: int) -> bytes:
        """Steal one line of raw NVM contents (always ciphertext)."""
        return self.nvm.peek(line_align(addr))

    # -- spoofing ---------------------------------------------------------------------

    def spoof_data(self, addr: int, xor_mask: int = 0x01) -> None:
        """Corrupt one byte of a data block in place."""
        line_addr = line_align(addr)
        old = self.nvm.peek(line_addr)
        self.nvm.poke(line_addr, bytes([old[0] ^ xor_mask]) + old[1:])

    def spoof_data_hmac(self, addr: int, xor_mask: int = 0x01) -> None:
        """Corrupt the stored data HMAC of one block."""
        line_addr, offset = self.layout.data_hmac_location(addr)
        old = self.nvm.peek(line_addr)
        flipped = bytes([old[offset] ^ xor_mask])
        self.nvm.poke(line_addr, old[:offset] + flipped + old[offset + 1:])

    def spoof_counter_line(self, data_addr: int, xor_mask: int = 0x01) -> None:
        """Corrupt the counter line covering one data address."""
        addr = self.layout.counter_line_addr(data_addr)
        old = self.nvm.peek(addr)
        self.nvm.poke(addr, bytes([old[0] ^ xor_mask]) + old[1:])

    def spoof_tree_node(self, node: MerkleNodeId, xor_mask: int = 0x01) -> None:
        """Corrupt one internal Merkle-tree node."""
        addr = self.layout.merkle_node_addr(node)
        old = self.nvm.peek(addr)
        self.nvm.poke(addr, bytes([old[0] ^ xor_mask]) + old[1:])

    # -- splicing ---------------------------------------------------------------------

    def splice_data(self, src_addr: int, dst_addr: int) -> None:
        """Substitute *dst*'s (data, data HMAC) with *src*'s pair.

        The classic relocation attack: both values are individually
        authentic, just at the wrong address.
        """
        src, dst = line_align(src_addr), line_align(dst_addr)
        self.nvm.poke(dst, self.nvm.peek(src))
        src_line, src_off = self.layout.data_hmac_location(src)
        dst_line, dst_off = self.layout.data_hmac_location(dst)
        code = self.nvm.peek(src_line)[src_off:src_off + HMAC_SIZE]
        old = self.nvm.peek(dst_line)
        self.nvm.poke(
            dst_line, old[:dst_off] + code + old[dst_off + HMAC_SIZE:]
        )

    # -- replay ------------------------------------------------------------------------

    def record(self) -> Snapshot:
        """Capture the current NVM image for later replay."""
        return Snapshot(self.nvm.snapshot())

    def replay_data(self, snapshot: Snapshot, addr: int) -> None:
        """Restore one block's (data, data HMAC) pair from *snapshot*."""
        line_addr = line_align(addr)
        self.nvm.poke(line_addr, snapshot.line(self.nvm, line_addr))
        hmac_line, offset = self.layout.data_hmac_location(line_addr)
        old_line = snapshot.line(self.nvm, hmac_line)
        cur = self.nvm.peek(hmac_line)
        self.nvm.poke(
            hmac_line,
            cur[:offset] + old_line[offset:offset + HMAC_SIZE]
            + cur[offset + HMAC_SIZE:],
        )

    def replay_counter_line(self, snapshot: Snapshot, data_addr: int) -> None:
        """Restore the counter line covering *data_addr* from *snapshot*."""
        addr = self.layout.counter_line_addr(data_addr)
        self.nvm.poke(addr, snapshot.line(self.nvm, addr))

    def replay_tree_node(self, snapshot: Snapshot, node: MerkleNodeId) -> None:
        """Restore one internal tree node from *snapshot*."""
        addr = self.layout.merkle_node_addr(node)
        self.nvm.poke(addr, snapshot.line(self.nvm, addr))

    def replay_path(self, snapshot: Snapshot, data_addr: int) -> None:
        """Restore a block's data, HMAC, counter line and whole tree path.

        The strongest replay: every stored value a verifier could consult
        is rolled back coherently; only the TCB roots (out of reach) and
        the Nwb register stand between this and success.
        """
        self.replay_data(snapshot, data_addr)
        self.replay_counter_line(snapshot, data_addr)
        leaf = self.layout.counter_leaf_index(data_addr)
        for node in self.layout.ancestors_of_leaf(leaf):
            if node.level < self.layout.root_level:
                self.replay_tree_node(snapshot, node)
