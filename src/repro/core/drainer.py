"""The drainer's dirty address queue and epoch bookkeeping.

The drainer (Figure 2/3) tracks the NVM addresses of every metadata
cache line dirtied — or, with deferred spreading, *reserved* — during the
current epoch.  The queue holds at most M entries (bounded by the WPQ
depth, since the whole epoch must fit one atomic WPQ batch) and
deduplicates addresses: "we skip those dirty cachelines if their addresses
have already been put in the dirty address queue" (Section 4.2).

A drain (epoch commit) is triggered when (Section 4.2):

1. the queue is full, or cannot hold the metadata address set of the next
   evicted data block;
2. a dirty line of the meta cache is about to be evicted;
3. a metadata line has been updated more than N times since turning dirty
   (bounding the data-HMAC retries recovery needs — Section 4.4).

The model adds a fourth, ``overflow``, raised when a minor-counter
overflow re-keys a whole page: committing immediately keeps the recovery
retry sequence within a single major-counter generation.  ``flush`` marks
explicit software/shutdown commits.

The queue structure and trigger statistics live here; the drain *protocol*
(recompute, atomic WPQ batch, root commit) is orchestrated by the cc-NVM
scheme that owns this object.
"""

from __future__ import annotations

from collections import OrderedDict
from enum import Enum

from repro.common.persistence import persistence
from repro.common.stats import StatGroup


class DrainTrigger(Enum):
    """Why an epoch was committed."""

    QUEUE_FULL = "queue_full"
    META_EVICTION = "meta_eviction"
    UPDATE_LIMIT = "update_limit"
    OVERFLOW = "overflow"
    FLUSH = "flush"


@persistence(
    volatile=("_queue", "_writebacks_this_epoch", "obs"),
    aka=("queue",),
)
class DirtyAddressQueue:
    """The drainer's bounded, deduplicating address queue."""

    def __init__(self, entries: int, stats: StatGroup | None = None) -> None:
        if entries <= 0:
            raise ValueError("dirty address queue needs at least one entry")
        self.entries = entries
        self._queue: OrderedDict[int, None] = OrderedDict()
        #: Optional fault-injection callback (see :mod:`repro.faults`):
        #: called with a dotted site name at instrumented micro-steps.
        self.fault_hook = None
        #: Optional observability bus (see :mod:`repro.obs`): epoch
        #: commits are emitted as instants when set.
        self.obs = None
        self._stats = stats if stats is not None else StatGroup("drainer")
        self._writebacks_this_epoch = 0
        self._drains = {
            trigger: self._stats.counter(f"drains_{trigger.value}")
            for trigger in DrainTrigger
        }
        self._epoch_writebacks = self._stats.distribution(
            "epoch_writebacks", "write-back events per committed epoch"
        )
        self._epoch_lines = self._stats.distribution(
            "epoch_lines", "metadata lines flushed per committed epoch"
        )
        self._reservations = self._stats.counter("reservations")

    @property
    def stats(self) -> StatGroup:
        """Trigger and epoch-length statistics."""
        return self._stats

    def _fault(self, site: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(site)

    def __contains__(self, addr: int) -> bool:
        return addr in self._queue

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def free_entries(self) -> int:
        """Entries still available this epoch."""
        return self.entries - len(self._queue)

    def fits(self, addrs: list[int]) -> bool:
        """Can every address in *addrs* be reserved without overflowing?

        This is trigger condition 1's look-ahead: the queue "doesn't have
        enough entries to store the corresponding metadata addresses of
        the next evicted data block".
        """
        new = sum(1 for a in set(addrs) if a not in self._queue)
        return new <= self.free_entries

    def reserve(self, addrs: list[int]) -> None:
        """Append the new addresses among *addrs* (FIFO order kept)."""
        for addr in addrs:
            if addr not in self._queue:
                if len(self._queue) >= self.entries:
                    raise OverflowError("dirty address queue overflow")
                self._queue[addr] = None
                self._reservations.inc()
        self._fault("daq.after_reserve")

    def addresses(self) -> list[int]:
        """Queued addresses in reservation order."""
        return list(self._queue)

    # -- epoch accounting ----------------------------------------------------------

    def count_writeback(self) -> None:
        """Record one write-back event inside the current epoch."""
        self._writebacks_this_epoch += 1

    def commit(self, trigger: DrainTrigger) -> list[int]:
        """Close the epoch: record statistics, empty the queue.

        Returns the addresses that made up the epoch, in order.  The
        caller (the cc-NVM scheme) performs the actual recompute/flush
        around this call.
        """
        self._fault("daq.before_commit")
        addrs = self.addresses()
        self._drains[trigger].inc()
        self._epoch_writebacks.sample(self._writebacks_this_epoch)
        self._epoch_lines.sample(len(addrs))
        if self.obs is not None:
            self.obs.instant(
                "epoch.commit",
                "epoch",
                {
                    "trigger": trigger.value,
                    "writebacks": self._writebacks_this_epoch,
                    "lines": len(addrs),
                },
            )
        self._queue.clear()
        self._writebacks_this_epoch = 0
        return addrs

    def drop(self) -> None:
        """Lose the queue contents without committing (power failure).

        The dirty address queue is SRAM; a crash empties it.  No drain is
        recorded — the epoch it tracked simply never committed.
        """
        self._queue.clear()
        self._writebacks_this_epoch = 0

    @property
    def total_drains(self) -> int:
        """Committed epochs so far."""
        return sum(c.value for c in self._drains.values())

    def drains_by_trigger(self) -> dict[str, int]:
        """Commit counts per trigger condition."""
        return {t.value: c.value for t, c in self._drains.items()}
