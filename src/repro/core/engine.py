"""The encryption engine: the functional data path of the controller.

Every data block crossing the chip boundary passes through here
(Figure 2, step 2): write-backs are counter-mode encrypted and
authenticated with a fresh data HMAC; fills are decrypted and their HMAC
checked.  Data HMACs are "generated directly in the memory controller"
and written back atomically with their data block through the ADR-covered
WPQ (Section 4.4) — the property that makes post-crash counter recovery
possible.

The engine also handles the split-counter corner case: when a block's
7-bit minor counter overflows, the page's major counter advances and
every *other* block of the page is re-encrypted under its new (major, 0)
pair (the triggering block is written fresh by the caller and is skipped
to avoid one-time-pad reuse).
"""

from __future__ import annotations

from repro.common.address import page_align
from repro.common.constants import BLOCKS_PER_PAGE, CACHE_LINE_SIZE, HMAC_SIZE
from repro.common.persistence import persistence
from repro.common.stats import StatGroup
from repro.crypto.cme import CounterModeCipher
from repro.crypto.hmac_engine import HmacEngine
from repro.mem.nvm import NVMDevice
from repro.mem.wpq import WritePendingQueue
from repro.metadata.counters import CounterLine
from repro.metadata.layout import MemoryLayout
from repro.metadata.metacache import IntegrityError


# The engine holds no state that survives a crash (keys live in the TCB,
# lines in the device); the declaration exists so the interprocedural
# analyzer can resolve `self.engine.write_data_block(...)` calls and
# follow the data path down to its WPQ stores.
@persistence(aka=("engine",))
class EncryptionEngine:
    """Encrypts, decrypts and authenticates data blocks at the controller."""

    def __init__(
        self,
        cipher: CounterModeCipher,
        hmac: HmacEngine,
        nvm: NVMDevice,
        wpq: WritePendingQueue,
        stats: StatGroup | None = None,
        reader=None,
    ) -> None:
        self.cipher = cipher
        self.hmac = hmac
        self.nvm = nvm
        self.wpq = wpq
        #: ``addr -> bytes`` used for device reads.  Defaults to the raw
        #: device; schemes pass the memory controller's retrying
        #: ``read_line`` so transient media faults are absorbed before the
        #: ciphertext reaches the decrypt/verify pipeline.
        self._read_line = reader if reader is not None else nvm.read_line
        self.layout: MemoryLayout = nvm.layout
        self._stats = stats if stats is not None else StatGroup("engine")
        self._writebacks = self._stats.counter("data_writebacks")
        self._fills = self._stats.counter("data_fills")
        self._reencryptions = self._stats.counter("page_reencryptions")
        #: Optional observability bus (see :mod:`repro.obs`): data-path
        #: crypto work (encrypt+HMAC writebacks, verified fills, page
        #: re-encryptions) is emitted as instants when set.
        self.obs = None

    @property
    def stats(self) -> StatGroup:
        """Data-path event counts."""
        return self._stats

    # -- write-back path -----------------------------------------------------------

    def write_data_block(
        self, addr: int, plaintext: bytes, counters: CounterLine
    ) -> None:
        """Encrypt and persist one write-back (data + data HMAC).

        *counters* must already hold the block's fresh (incremented)
        counter.  Both lines go through the WPQ as normal writes — durable
        on acceptance, which is what keeps data and data HMAC atomic
        across a crash.
        """
        if len(plaintext) != CACHE_LINE_SIZE:
            raise ValueError("write-backs are whole cache lines")
        major, minor = counters.counter_pair(self.layout.block_slot(addr))
        ciphertext = self.cipher.encrypt(plaintext, addr, major, minor)
        code = self.hmac.data_hmac(ciphertext, addr, major, minor)
        self.wpq.begin_combined()
        self.wpq.write(addr, ciphertext)
        hmac_line, offset = self.layout.data_hmac_location(addr)
        self.wpq.write_partial(hmac_line, offset, code)
        self.wpq.end_combined()
        self._writebacks.inc()
        if self.obs is not None:
            self.obs.instant("engine.writeback", "engine", {"addr": addr})

    # -- fill path ----------------------------------------------------------------------

    def read_data_block(
        self, addr: int, counters: CounterLine, verify: bool = True
    ) -> bytes:
        """Fetch, decrypt and (optionally) authenticate one data block.

        Raises :class:`IntegrityError` when the stored data HMAC does not
        match the (data, address, counter) triple — runtime detection of
        spoofing and splicing.
        """
        major, minor = counters.counter_pair(self.layout.block_slot(addr))
        ciphertext = self._read_line(addr)
        if verify:
            hmac_line, offset = self.layout.data_hmac_location(addr)
            stored = self._read_line(hmac_line)[offset:offset + HMAC_SIZE]
            computed = self.hmac.data_hmac(ciphertext, addr, major, minor)
            if not self.hmac.verify(bytes(stored), computed):
                raise IntegrityError(
                    f"data HMAC mismatch for block {addr:#x} "
                    f"(counter {major}.{minor})"
                )
        self._fills.inc()
        if self.obs is not None:
            self.obs.instant(
                "engine.fill", "engine", {"addr": addr, "verified": verify}
            )
        return self.cipher.decrypt(ciphertext, addr, major, minor)

    # -- split-counter overflow ------------------------------------------------------------

    def reencrypt_page(
        self,
        page_addr: int,
        old_counters: CounterLine,
        new_counters: CounterLine,
        skip_block: int,
    ) -> int:
        """Re-encrypt a page after a minor-counter overflow.

        Every block except *skip_block* (the write-back that triggered the
        overflow — its fresh data is written by the caller under the new
        counter) is read, decrypted under its old (major, minor) pair,
        re-encrypted under the new pair, and written back with a fresh
        data HMAC.  Returns the number of blocks rewritten.
        """
        page_addr = page_align(page_addr)
        rewritten = 0
        for block in range(BLOCKS_PER_PAGE):
            if block == skip_block:
                continue
            addr = page_addr + block * CACHE_LINE_SIZE
            old_major, old_minor = old_counters.counter_pair(block)
            plaintext = self.cipher.decrypt(
                self._read_line(addr), addr, old_major, old_minor
            )
            new_major, new_minor = new_counters.counter_pair(block)
            ciphertext = self.cipher.encrypt(plaintext, addr, new_major, new_minor)
            code = self.hmac.data_hmac(ciphertext, addr, new_major, new_minor)
            self.wpq.begin_combined()
            self.wpq.write(addr, ciphertext)
            hmac_line, offset = self.layout.data_hmac_location(addr)
            self.wpq.write_partial(hmac_line, offset, code)
            self.wpq.end_combined()
            rewritten += 1
        self._reencryptions.inc()
        if self.obs is not None:
            self.obs.instant(
                "engine.reencrypt_page",
                "engine",
                {"page": page_addr, "blocks": rewritten},
            )
        return rewritten
