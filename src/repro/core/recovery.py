"""Crash recovery and attack locating (Section 4.4).

After a power failure the NVM image may hold data blocks and data HMACs
*newer* than the (consistent but old) Merkle tree committed by the last
epoch.  Recovery exploits the hidden ability of the data HMACs: a stalled
counter is rolled forward by recomputing the data HMAC with incremented
counter values until it matches the stored code — bounded by the
update-times limit N that trigger condition 3 enforces.

The full cc-NVM recovery runs four steps:

1. **Locate normal replay attacks** — the stored tree must be internally
   consistent and match at least one TCB root register; any mismatching
   parent/child edge pinpoints tampering of the tree image itself.
2. **Recover stalled counters, locating spoofing/splicing** — per-block
   data-HMAC retry; a block whose code never matches within N retries has
   had its data or HMAC tampered with, and is reported *by address*.
3. **Detect potential replay** — the persistent ``Nwb`` register counts
   write-backs since the last commit; if the total retries ``Nretry``
   disagree, a fresh block was replayed to an in-epoch version
   (detectable but not locatable — the Section 4.3 window).  Designs that
   keep ``root_new`` fresh per write-back (SC, Osiris Plus, cc-NVM w/o
   DS) instead compare the rebuilt root against ``root_new``.
4. **Rebuild** — recovered counters are written back, the tree is
   reconstructed bottom-up and both TCB roots adopt the rebuilt root.

The same manager serves every scheme through a :class:`RecoveryPolicy`:
the conventional designs simply run with the steps they can support
(Osiris Plus cannot use step 1 — its NVM tree is never consistent — and
w/o CC has no retry bound at all, so blocks can be genuinely
unrecoverable, the paper's motivating failure).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.constants import (
    BLOCKS_PER_PAGE,
    CACHE_LINE_SIZE,
    HMAC_SIZE,
    MINOR_COUNTER_MAX,
    PAGE_SIZE,
)
from repro.core.tcb import TCB
from repro.crypto.cme import CounterModeCipher
from repro.crypto.hmac_engine import HmacEngine
from repro.mem.nvm import NVMDevice
from repro.metadata.counters import CounterLine
from repro.metadata.layout import MerkleNodeId
from repro.metadata.merkle import MerkleTree


@dataclass(frozen=True)
class AttackFinding:
    """One located (or detected) integrity violation."""

    #: 'tree_tampering' (replayed/spoofed tree node, step 1),
    #: 'data_tampering' (spoofed/spliced/rolled-back block, step 2), or
    #: 'potential_replay' (step 3; detected but not locatable).
    kind: str
    #: Data-block address for data_tampering; None otherwise.
    address: int | None = None
    #: Tree node for tree_tampering; None otherwise.
    node: MerkleNodeId | None = None
    detail: str = ""


@dataclass
class RecoveryReport:
    """Outcome of one post-crash recovery run."""

    scheme: str
    #: Memory was restored to a consistent, decryptable, authenticated state.
    success: bool = False
    #: No evidence of any attack was found.
    clean: bool = True
    findings: list[AttackFinding] = field(default_factory=list)
    potential_replay_detected: bool = False
    #: Which TCB root the stored tree matched in step 1 ('old'/'new'/None).
    matched_root: str | None = None
    #: Data blocks whose counters could not be recovered within the bound.
    unrecoverable_blocks: list[int] = field(default_factory=list)
    #: Blocks whose counters were rolled forward (retries > 0).
    recovered_blocks: int = 0
    total_retries: int = 0
    nwb: int = 0
    #: Pages normalized across a split-counter major bump.
    majors_rolled: int = 0
    notes: list[str] = field(default_factory=list)

    def add(self, finding: AttackFinding) -> None:
        """Record a finding (clears the clean flag)."""
        self.findings.append(finding)
        self.clean = False


@dataclass(frozen=True)
class RecoveryPolicy:
    """What a given design's recovery is able to do."""

    #: TCB roots the stored tree may legitimately match in step 1
    #: (names among 'old'/'new'); empty skips step 1 entirely.
    check_tree_against: tuple[str, ...] = ()
    #: Maximum data-HMAC retries per block (the design's counter bound).
    retry_limit: int = 0
    #: Step-3 style: 'nwb' (cc-NVM with DS), 'root_new' (designs whose
    #: root_new is fresh per write-back), or None (no step 3 possible).
    freshness_check: str | None = None
    #: Section 4.4's extension: consult the TCB's per-counter-line update
    #: log so in-epoch replays are *located* (page granularity), not just
    #: detected.
    use_counter_log: bool = False


class RecoveryManager:
    """Runs the four-step recovery against an NVM image and a TCB."""

    def __init__(
        self,
        nvm: NVMDevice,
        tcb: TCB,
        merkle: MerkleTree,
        policy: RecoveryPolicy,
        scheme_name: str,
        fault_hook=None,
        obs=None,
    ) -> None:
        self.nvm = nvm
        self.layout = nvm.layout
        self.tcb = tcb
        self.merkle = merkle
        self.policy = policy
        self.scheme_name = scheme_name
        self.hmac: HmacEngine = merkle.engine
        self.cipher = CounterModeCipher(tcb.encryption_key)
        #: Optional fault-injection callback (see :mod:`repro.faults`);
        #: lets campaigns crash recovery itself mid-run, exercising the
        #: restartable (crash-during-recovery) path.
        self.fault_hook = fault_hook
        #: Optional observability bus (see :mod:`repro.obs`).  Recovery is
        #: not cycle-modeled, so its phase spans advance the bus clock by
        #: one pseudo-cycle per phase boundary to stay ordered.
        self.obs = obs

    def _fault(self, site: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(site)

    def _obs_begin(self, phase: str) -> None:
        if self.obs is not None:
            self.obs.advance(1)
            self.obs.begin(f"recovery.{phase}", "recovery")

    def _obs_end(self, phase: str, args: dict | None = None) -> None:
        if self.obs is not None:
            self.obs.advance(1)
            self.obs.end(f"recovery.{phase}", "recovery", args)

    # -- image access helpers (peek/poke: recovery is not runtime traffic) ------

    def _stored_data_hmac(self, addr: int) -> bytes:
        line, offset = self.layout.data_hmac_location(addr)
        return self.nvm.peek(line)[offset:offset + HMAC_SIZE]

    def _poke_data_hmac(self, addr: int, code: bytes) -> None:
        line, offset = self.layout.data_hmac_location(addr)
        old = self.nvm.peek(line)
        self.nvm.poke(line, old[:offset] + code + old[offset + HMAC_SIZE:])

    def _touched_data_pages(self) -> dict[int, list[int]]:
        pages: dict[int, list[int]] = {}
        for addr in self.nvm.touched_lines():
            if self.layout.region_of(addr) == "data":
                pages.setdefault(self.layout.counter_leaf_index(addr), []).append(addr)
        return pages

    # -- step 1 ------------------------------------------------------------------

    def _check_tree(self, report: RecoveryReport) -> None:
        for name in self.policy.check_tree_against:
            root = self.tcb.root_old if name == "old" else self.tcb.root_new
            if self.merkle.verify_consistent(root):
                report.matched_root = name
                return
        # No root matched: the stored tree itself was tampered with.
        reference = (
            self.tcb.root_old
            if "old" in self.policy.check_tree_against
            else self.tcb.root_new
        )
        for edge in self.merkle.find_mismatches(reference):
            report.add(
                AttackFinding(
                    "tree_tampering",
                    node=edge.child,
                    detail="stored HMAC of this node disagrees with its parent",
                )
            )

    # -- step 2 ------------------------------------------------------------------

    def _recover_block(
        self, addr: int, stored: CounterLine
    ) -> tuple[tuple[int, int] | None, int, bool]:
        """Roll one block's counter forward via data-HMAC retry.

        Returns ``(pair, retries, major_rolled)`` — the recovered (major,
        minor), how many forward steps it took within its major, and
        whether the match was found past a major-counter bump.  ``pair``
        is ``None`` when nothing matches within the bound (tampering).
        """
        block = self.layout.block_slot(addr)
        major, minor = stored.counter_pair(block)
        ciphertext = self.nvm.peek(addr)
        code = self._stored_data_hmac(addr)
        limit = self.policy.retry_limit
        for k in range(limit + 1):
            if minor + k > MINOR_COUNTER_MAX:
                break
            if self.hmac.verify(
                bytes(code), self.hmac.data_hmac(ciphertext, addr, major, minor + k)
            ):
                return (major, minor + k), k, False
        # A split-counter major bump re-keys the page to (major+1, small).
        for k in range(limit + 1):
            if self.hmac.verify(
                bytes(code),
                self.hmac.data_hmac(ciphertext, addr, major + 1, k),
            ):
                return (major + 1, k), k, True
        return None, 0, False

    def _recover_counters(
        self, report: RecoveryReport
    ) -> tuple[dict[int, CounterLine], dict[int, int], set[int]]:
        """Recover every touched page's counter line.

        Returns ``(recovered lines, per-leaf retry totals, rolled leaves)``
        — the latter two feed the freshness checks of step 3.
        """
        recovered: dict[int, CounterLine] = {}
        leaf_retries: dict[int, int] = {}
        rolled_leaves: set[int] = set()
        for leaf, addrs in sorted(self._touched_data_pages().items()):
            counter_addr = self.layout.merkle_node_addr(MerkleNodeId(0, leaf))
            stored = CounterLine.decode(self.nvm.peek(counter_addr))
            pairs: dict[int, tuple[int, int]] = {}
            rolled = False
            leaf_retries[leaf] = 0
            for addr in sorted(addrs):
                pair, retries, major_rolled = self._recover_block(addr, stored)
                if pair is None:
                    report.add(
                        AttackFinding(
                            "data_tampering",
                            address=addr,
                            detail=(
                                "no counter within the retry bound authenticates "
                                "this block: data or data-HMAC was tampered with"
                            ),
                        )
                    )
                    report.unrecoverable_blocks.append(addr)
                    continue
                pairs[self.layout.block_slot(addr)] = pair
                report.total_retries += retries
                leaf_retries[leaf] += retries
                if retries or major_rolled:
                    report.recovered_blocks += 1
                rolled = rolled or major_rolled
            line = stored.copy()
            target_major = max([stored.major] + [p[0] for p in pairs.values()])
            if target_major > stored.major:
                rolled = True
                # After normalization every block of the page has a pair
                # under the target major.
                self._normalize_page(leaf, stored, pairs, target_major)
                line = CounterLine(
                    target_major, [pairs[b][1] for b in range(BLOCKS_PER_PAGE)]
                )
            else:
                for block, (_, pair_minor) in pairs.items():
                    line.minors[block] = pair_minor
            if rolled:
                report.majors_rolled += 1
                rolled_leaves.add(leaf)
            recovered[leaf] = line
        return recovered, leaf_retries, rolled_leaves

    def _normalize_page(
        self,
        leaf: int,
        stored: CounterLine,
        pairs: dict[int, tuple[int, int]],
        target_major: int,
    ) -> None:
        """Finish an interrupted page re-encryption at recovery time.

        Blocks still encrypted under the previous major are decrypted with
        their recovered (or stored) pair and re-encrypted under
        ``(target_major, 0)``, completing the roll-forward the crash
        interrupted.
        """
        page_addr = leaf * PAGE_SIZE
        for block in range(BLOCKS_PER_PAGE):
            pair = pairs.get(block, stored.counter_pair(block))
            if pair[0] >= target_major:
                pairs[block] = pair
                continue
            addr = page_addr + block * CACHE_LINE_SIZE
            plaintext = self.cipher.decrypt(self.nvm.peek(addr), addr, *pair)
            ciphertext = self.cipher.encrypt(plaintext, addr, target_major, 0)
            self.nvm.poke(addr, ciphertext)
            self._poke_data_hmac(
                addr, self.hmac.data_hmac(ciphertext, addr, target_major, 0)
            )
            pairs[block] = (target_major, 0)

    # -- steps 3 and 4 -------------------------------------------------------------

    def _apply(self, recovered: dict[int, CounterLine]) -> bytes:
        for leaf, line in recovered.items():
            self.nvm.poke(
                self.layout.merkle_node_addr(MerkleNodeId(0, leaf)), line.encode()
            )
        self._fault("recovery.mid_rebuild")
        root = self.merkle.build()
        return root

    def _check_counter_log(
        self,
        report: RecoveryReport,
        leaf_retries: dict[int, int],
        rolled_leaves: set[int],
    ) -> bool:
        """Section 4.4's extension: locate in-epoch replays per page.

        The TCB's extension registers record how many times each dirty
        counter line was updated since the last commit; a page whose
        recovery needed fewer roll-forwards than the register says had a
        fresh block replayed to an in-epoch version.  Returns True when
        any replay was located (the global Nwb check is then redundant).
        """
        located = False
        for counter_addr, expected in sorted(self.tcb.counter_log.items()):
            leaf = self.layout.leaf_index_of_counter_addr(counter_addr)
            if leaf in rolled_leaves:
                report.notes.append(
                    f"page {leaf}: extension-register check skipped "
                    "(major-counter roll)"
                )
                continue
            actual = leaf_retries.get(leaf, 0)
            if actual != expected:
                located = True
                report.potential_replay_detected = True
                report.add(
                    AttackFinding(
                        "replay_located",
                        address=leaf * PAGE_SIZE,
                        node=MerkleNodeId(0, leaf),
                        detail=(
                            f"extension registers recorded {expected} "
                            f"update(s) of this page since the last commit "
                            f"but recovery rolled its counters forward only "
                            f"{actual} time(s): a fresh block of this page "
                            "was replayed"
                        ),
                    )
                )
        return located

    def run(self) -> RecoveryReport:
        """Execute the recovery steps this design's policy allows.

        Recovery is *restartable*: the persistent ``recovery_pending``
        TCB register is set before the image is mutated and cleared only
        by the final ``set_roots``.  A run that finds it already set is
        resuming after a crash-during-recovery — the stored tree may be
        half-rebuilt (so step 1 cannot distinguish tampering from the
        interrupted rebuild) and the interrupted run already rolled
        counters forward (so retry totals are no longer commensurable
        with ``nwb``); both checks are skipped with a note, and the
        remaining steps are idempotent.
        """
        report = RecoveryReport(scheme=self.scheme_name, nwb=self.tcb.nwb)
        self._obs_begin("run")
        resumed = self.tcb.recovery_pending
        if resumed:
            report.notes.append(
                "resumed: a previous recovery attempt was interrupted "
                "(recovery_pending was set); tree and freshness checks "
                "skipped over the half-rebuilt image"
            )

        if self.policy.check_tree_against and not resumed:
            self._obs_begin("check_tree")
            self._check_tree(report)
            self._obs_end("check_tree", {"matched_root": report.matched_root})

        self.tcb.begin_recovery()
        self._obs_begin("counters")
        recovered, leaf_retries, rolled_leaves = self._recover_counters(report)
        self._obs_end(
            "counters",
            {"retries": report.total_retries, "recovered": report.recovered_blocks},
        )
        self._fault("recovery.after_counters")
        self._obs_begin("rebuild")
        root = self._apply(recovered)
        self._obs_end("rebuild")

        located_by_log = False
        if self.policy.use_counter_log and not resumed:
            if report.matched_root == "new":
                # Same window as the Nwb carve-out below: the crash
                # landed between the epoch's end signal and the root
                # commit, so the stored counters are fully fresh while
                # the extension registers still hold the closed epoch's
                # counts (they are cleared atomically with commit_root).
                # Comparing would false-alarm on every such crash.
                report.notes.append(
                    "extension-register check skipped: the stored tree "
                    "already matches root_new, so the epoch committed and "
                    "the not-yet-cleared registers describe no open window"
                )
            else:
                located_by_log = self._check_counter_log(
                    report, leaf_retries, rolled_leaves
                )

        if resumed:
            pass  # freshness state was consumed by the interrupted run
        elif located_by_log:
            pass  # the per-page check subsumes the global comparisons
        elif self.policy.freshness_check == "nwb":
            if report.matched_root == "new":
                report.notes.append(
                    "Nwb/Nretry comparison skipped: the stored tree "
                    "already matches root_new (the crash landed after "
                    "the epoch's end signal, before root_old caught up), "
                    "so the counters are fully fresh and the replay "
                    "window was closed"
                )
            elif report.majors_rolled:
                report.notes.append(
                    "Nwb/Nretry comparison skipped: a split-counter major "
                    "bump makes retry counts incommensurable with Nwb"
                )
            elif report.total_retries != report.nwb:
                report.potential_replay_detected = True
                report.add(
                    AttackFinding(
                        "potential_replay",
                        detail=(
                            f"Nretry={report.total_retries} != Nwb={report.nwb}: "
                            "a freshly written block was replayed to an "
                            "in-epoch version (not locatable)"
                        ),
                    )
                )
        elif self.policy.freshness_check == "root_new":
            if root != self.tcb.root_new:
                report.potential_replay_detected = True
                report.add(
                    AttackFinding(
                        "potential_replay",
                        detail=(
                            "rebuilt tree root disagrees with the per-write-back "
                            "root register: some block was replayed (not locatable)"
                        ),
                    )
                )

        self._fault("recovery.before_root_set")
        self.tcb.set_roots(root)
        report.success = (
            not report.unrecoverable_blocks
            and not report.potential_replay_detected
            and not any(f.kind == "tree_tampering" for f in report.findings)
        )
        self._obs_end("run", {"success": report.success, "clean": report.clean})
        return report
