"""The five evaluated secure-NVM designs (Section 5).

========================  =========================================================
registry name             design
========================  =========================================================
``no_cc``                 w/o Crash-Consistency — the normalization baseline
``sc``                    Strict Consistency — atomic metadata flush per write-back
``osiris_plus``           Osiris Plus — ECC-style counter restoration
``ccnvm_no_ds``           cc-NVM without deferred spreading
``ccnvm``                 cc-NVM — the paper's full design
``ccnvm_locate``          cc-NVM + Section 4.4's extension registers, which
                          additionally *locate* in-epoch replays
========================  =========================================================
"""

from __future__ import annotations

from repro.common.config import SystemConfig
from repro.common.stats import StatGroup
from repro.core.schemes.base import SecureNVMScheme
from repro.core.schemes.ccnvm import (
    CcNVM,
    CcNVMWithLocateRegisters,
    CcNVMWithoutDeferredSpreading,
)
from repro.core.schemes.no_cc import WithoutCrashConsistency
from repro.core.schemes.osiris import OsirisPlus
from repro.core.schemes.strict import StrictConsistency

#: Registry of design name -> scheme class.
SCHEMES: dict[str, type[SecureNVMScheme]] = {
    "no_cc": WithoutCrashConsistency,
    "sc": StrictConsistency,
    "osiris_plus": OsirisPlus,
    "ccnvm_no_ds": CcNVMWithoutDeferredSpreading,
    "ccnvm": CcNVM,
    "ccnvm_locate": CcNVMWithLocateRegisters,
}

#: Display labels matching the paper's figures.
SCHEME_LABELS: dict[str, str] = {
    "no_cc": "w/o CC",
    "sc": "SC",
    "osiris_plus": "Osiris Plus",
    "ccnvm_no_ds": "cc-NVM w/o DS",
    "ccnvm": "cc-NVM",
    "ccnvm_locate": "cc-NVM + locate registers",
}


def create_scheme(
    name: str,
    config: SystemConfig | None = None,
    data_capacity: int | None = None,
    seed: int | str = 0,
    stats: StatGroup | None = None,
) -> SecureNVMScheme:
    """Instantiate a design by registry name."""
    if name not in SCHEMES:
        raise ValueError(f"unknown scheme {name!r}; choose from {sorted(SCHEMES)}")
    return SCHEMES[name](config or SystemConfig(), data_capacity, seed, stats)


__all__ = [
    "SCHEMES",
    "SCHEME_LABELS",
    "SecureNVMScheme",
    "CcNVM",
    "CcNVMWithLocateRegisters",
    "CcNVMWithoutDeferredSpreading",
    "OsirisPlus",
    "StrictConsistency",
    "WithoutCrashConsistency",
    "create_scheme",
]
