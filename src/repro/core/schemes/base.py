"""Common machinery of every evaluated secure-NVM design.

:class:`SecureNVMScheme` wires the full controller stack — NVM device with
its genesis image, WPQ, timing front-end, meta cache, encryption engine
and TCB — and implements the parts all five designs share:

* the functional write-back path (counter increment, split-counter
  overflow with page re-encryption, encrypt + data-HMAC + durable write);
* the functional read path (verified counter load, decrypt, data-HMAC
  check, OTP-latency overlap);
* crash modeling (volatile state loss + WPQ/ADR resolution).

Subclasses specialize three seams:

* :meth:`_pre_accept` — work required before a write-back may be accepted
  (cc-NVM: dirty-address-queue reservation, draining when full);
* :meth:`_update_tree` — how the Merkle tree absorbs the counter update
  (immediate spread to the root vs deferred spreading vs nothing);
* :meth:`_post_writeback` — per-design persistence actions (SC's atomic
  flush, Osiris's periodic counter write, cc-NVM's trigger-3 drain);

plus the eviction hooks on the metadata store, :meth:`flush` (graceful
shutdown) and :meth:`recover` (post-crash behaviour).

The timing contract: :meth:`writeback` returns the cycles the evicting
agent is blocked before the data block is accepted into the write path;
:meth:`read` returns the demand-fill completion cycle.  Both honour
``busy_until`` so epoch drains stall subsequent traffic, as Section 4.2
prescribes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.common.address import page_align
from repro.common.config import SystemConfig
from repro.common.constants import MINOR_COUNTER_MAX
from repro.common.persistence import persistence
from repro.common.stats import StatGroup
from repro.core.tcb import TCB
from repro.crypto.cme import CounterModeCipher
from repro.crypto.hmac_engine import HmacEngine
from repro.crypto.prf import SecretKey
from repro.core.engine import EncryptionEngine
from repro.mem.cache import Cache, CacheLine
from repro.mem.controller import MemoryController
from repro.mem.nvm import NVMDevice
from repro.metadata.counters import CounterLine
from repro.metadata.genesis import GenesisImage
from repro.metadata.layout import MemoryLayout
from repro.metadata.merkle import MerkleTree, write_slot
from repro.metadata.metacache import MetadataStore


@persistence(
    volatile=(
        "meta",
        "busy_until",
        "writeback_hard_cycles",
        "_propagation_queue",
        "_propagating",
    ),
    aka=("scheme",),
    # Ordering obligation (lint rule P6): persistent stores issued by the
    # write-back seams uphold a recovery bound (SC's path flush, Osiris
    # Plus's stop-loss counter, cc-NVM's epoch commit), so every droppable
    # store must be fenced before the seam returns — an unfenced store can
    # be lost behind the very write-backs whose staleness it bounds.  The
    # lazy paths (_on_dirty_meta_evict, w/o CC's flush) are deliberately
    # NOT listed: their writes are best-effort by design.
    ordered=("_pre_accept", "_update_tree", "_post_writeback"),
)
class SecureNVMScheme(ABC):
    """Base of the five designs: w/o CC, SC, Osiris Plus, cc-NVM (±DS)."""

    #: Short identifier used in reports and figures.
    name = "base"

    def __init__(
        self,
        config: SystemConfig,
        data_capacity: int | None = None,
        seed: int | str = 0,
        stats: StatGroup | None = None,
    ) -> None:
        self.config = config
        self.stats = stats if stats is not None else StatGroup(self.name)
        self.layout = MemoryLayout(data_capacity or config.nvm.capacity_bytes)

        encryption_key = SecretKey.from_seed(("enc", seed))
        hmac_key = SecretKey.from_seed(("mac", seed))
        self.genesis = GenesisImage(self.layout, encryption_key, hmac_key)
        self.nvm = NVMDevice(
            self.layout, self.stats.group("nvm"), initializer=self.genesis.line
        )
        self.controller = MemoryController(
            config, self.nvm, self.stats.group("controller")
        )
        self.wpq = self.controller.wpq
        self.tcb = TCB(encryption_key, hmac_key, self.genesis.root_register())
        self.hmac = HmacEngine(hmac_key, self.stats.group("hmac"))
        self.cipher = CounterModeCipher(encryption_key)
        self.engine = EncryptionEngine(
            self.cipher,
            self.hmac,
            self.nvm,
            self.wpq,
            self.stats.group("engine"),
            reader=self.controller.read_line,
        )
        self.meta = MetadataStore(
            config,
            Cache(config.security.meta_cache, self.stats.group("metacache")),
            self.nvm,
            self.hmac,
            self.tcb,
            self.genesis,
            self.stats.group("metastore"),
            reader=self.controller.read_line,
        )
        self.meta.on_dirty_evict = self._on_dirty_meta_evict
        self.merkle = MerkleTree(self.nvm, self.hmac, self.genesis)

        #: Optional fault-injection callback (see :mod:`repro.faults`):
        #: called with a dotted site name at instrumented micro-steps of
        #: the write-back / drain / recovery paths.
        self.fault_hook = None
        #: Optional observability bus (see :mod:`repro.obs`); like
        #: ``fault_hook``, components check it against ``None`` so the
        #: disabled path stays zero-cost.
        self.obs = None
        #: Cycle before which the scheme cannot accept new traffic
        #: (drains block subsequent evictions until finished).
        self.busy_until = 0
        #: Unhideable portion of the last write-back's blocking cycles.
        self.writeback_hard_cycles = 0
        #: Flat work queue for lazy dirty-eviction propagation.
        self._propagation_queue: list[int] = []
        self._propagating = False
        self._hmac_cycles = config.security.hmac_latency_cycles
        self._wb_blocking = self.stats.distribution(
            "writeback_blocking_cycles", "cycles the evictor waited per write-back"
        )
        self._read_latency = self.stats.distribution(
            "read_latency_cycles", "demand-fill latency"
        )
        self._crashes = self.stats.counter("crashes")

    def _fault(self, site: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(site)

    # ------------------------------------------------------------------
    # subclass seams
    # ------------------------------------------------------------------

    def _pre_accept(self, now: int, addr: int) -> int:
        """Work before a write-back to *addr* is accepted; returns cycles."""
        return 0

    @abstractmethod
    def _update_tree(self, now: int, counter_addr: int) -> int:
        """Absorb the counter update into the Merkle tree; returns cycles."""

    def _count_writeback_extras(self, counter_addr: int) -> None:
        """Extra persistent-register bumps inside the write transaction.

        Runs between :meth:`TCB.count_writeback` and the combined-group
        close, i.e. atomically with the data/HMAC write under ADR.  A
        design whose recovery cross-checks a per-line register against
        the written data (cc-NVM's extension registers) must bump it
        here, not in :meth:`_post_writeback` — otherwise a crash could
        separate the data from its register and false-alarm recovery.
        """
        return None

    def _post_writeback(
        self, now: int, counter_addr: int, line: CacheLine, overflowed: bool
    ) -> int:
        """Per-design persistence actions after the data is durable."""
        return 0

    @abstractmethod
    def _on_dirty_meta_evict(self, victim: CacheLine) -> None:
        """Make a dirty metadata victim durable as it leaves the cache."""

    @abstractmethod
    def flush(self) -> None:
        """Graceful shutdown: leave NVM consistent with the TCB roots."""

    @abstractmethod
    def recover(self):
        """Post-crash recovery; returns a RecoveryReport."""

    # ------------------------------------------------------------------
    # shared write-back path
    # ------------------------------------------------------------------

    def writeback(self, now: int, addr: int, plaintext: bytes) -> int:
        """Handle one LLC dirty eviction; returns evictor blocking cycles.

        ``writeback_hard_cycles`` is additionally set to the portion of
        the blocking that no write-back buffer can hide (cc-NVM's epoch
        drains seize the whole WPQ); the hierarchy charges that part of
        the stall in full.
        """
        start = max(now, self.busy_until)
        self.writeback_hard_cycles = 0
        cycles = start - now

        cycles += self._pre_accept(now + cycles, addr)

        result = self.meta.load_counter(addr)
        cycles += result.cycles
        counters: CounterLine = result.value
        counter_addr = self.layout.counter_line_addr(addr)
        line = self.meta.probe(counter_addr)

        block = self.layout.block_slot(addr)
        will_overflow = counters.minors[block] == MINOR_COUNTER_MAX
        old_counters = counters.copy() if will_overflow else None

        overflowed = counters.increment(block)
        line.dirty = True
        line.update_count += 1

        if overflowed:
            # Give the triggering block a minor distinct from the (major+1, 0)
            # pairs the re-encrypted blocks use, avoiding one-time-pad reuse.
            counters.increment(block)
            rewritten = self.engine.reencrypt_page(
                page_align(addr), old_counters, counters, block
            )
            # Data + HMAC line writes of the re-encrypted blocks.
            cycles += self.controller.post_writes(now + cycles, rewritten * 2)

        # CME encryption and data-HMAC generation must complete before the
        # block enters the WPQ; every design pays this (including the
        # baseline), so it compresses *relative* gaps exactly as a real
        # pipeline would.
        cycles += self.config.aes_cycles + self._hmac_cycles
        self._fault("writeback.before_data")
        # The data/HMAC write and the persistent Nwb bump form one atomic
        # micro-op: the write's WPQ acceptance (durable under ADR) and the
        # TCB register update happen in the same controller transaction,
        # so no crash point separates them — otherwise recovery's
        # retries-vs-Nwb freshness comparison would false-alarm in either
        # direction.
        self.wpq.begin_combined()
        self.engine.write_data_block(addr, plaintext, counters)
        self.tcb.count_writeback()
        self._count_writeback_extras(counter_addr)
        self.wpq.end_combined()
        self._fault("writeback.after_data")
        cycles += self.controller.post_writes(now + cycles, 2)

        cycles += self._update_tree(now + cycles, counter_addr)
        cycles += self._post_writeback(now + cycles, counter_addr, line, overflowed)

        self.busy_until = now + cycles
        self._wb_blocking.sample(cycles)
        return cycles

    # ------------------------------------------------------------------
    # shared read path
    # ------------------------------------------------------------------

    def read(self, now: int, addr: int) -> tuple[bytes, int]:
        """Handle one demand fill; returns (plaintext, completion cycle).

        The one-time pad is generated while the data line is in flight:
        with a counter-cache hit the AES latency overlaps the PCM read
        ("the OTP generation and the read access can be executed in
        parallel", Section 2.2); on a miss the verified counter walk
        serializes in front of it.
        """
        start = max(now, self.busy_until)
        result = self.meta.load_counter(addr)
        counter_ready = start + result.cycles
        data_done = self.controller.read_completion(start)
        completion = max(data_done, counter_ready + self.config.aes_cycles)
        plaintext = self.engine.read_data_block(addr, result.value)
        self._read_latency.sample(completion - now)
        return plaintext, completion

    # ------------------------------------------------------------------
    # shared tree-update helpers for subclasses
    # ------------------------------------------------------------------

    def _spread_to_root(self, counter_addr: int) -> int:
        """Recompute the HMAC chain from a counter line up to ``root_new``.

        The computations are inherently serial ("the calculation of each
        HMAC in the tree nodes must be executed one after another",
        Section 2.3); uncached ancestors are fetched and verified on the
        way.  Every updated node is left dirty in the meta cache.  This is
        the per-write-back work of SC, Osiris Plus and cc-NVM w/o DS.
        """
        layout = self.layout
        cycles = 0
        node = layout.node_of_addr(counter_addr)
        child_line = self.meta.probe(counter_addr)
        while True:
            child_hmac = self.hmac.counter_hmac(self.meta.encoded(child_line))
            cycles += self._hmac_cycles
            slot = layout.slot_in_parent(node)
            parent = layout.parent_of(node)
            if parent.level == layout.root_level:
                self.tcb.update_root_new(slot, child_hmac)
                return cycles
            result = self.meta.load_node(parent)
            cycles += result.cycles
            parent_addr = layout.merkle_node_addr(parent)
            parent_line = self.meta.probe(parent_addr)
            parent_line.data = write_slot(bytes(parent_line.data), slot, child_hmac)
            parent_line.dirty = True
            parent_line.update_count += 1
            node = parent
            child_line = parent_line

    def _lazy_propagate_and_write(self, victim: CacheLine) -> None:
        """Conventional dirty-eviction handling (w/o CC's lazy BMT).

        The victim's HMAC is folded into its parent *in the cache* (the
        parent turns dirty and propagates the same way when it is itself
        evicted) and the victim is written to NVM as a normal durable
        write.  This is the classic DRAM-style lazy Merkle maintenance of
        Gassend et al. — consistent at every instant in the cache+TCB
        view, but never atomically in NVM, which is exactly why these
        designs cannot recover the tree after a crash.

        Propagations are processed through a flat work queue: loading a
        parent can evict further dirty lines, and handling those
        re-entrantly would let verification walks observe half-applied
        parent/child updates.  Until a victim's parent slot is updated,
        its newest value stays published in the trusted overlay, so no
        load ever compares a new child against a stale parent.
        """
        self.meta.overlay[victim.addr] = self.meta.encoded(victim)
        self._propagation_queue.append(victim.addr)
        if self._propagating:
            return
        self._propagating = True
        try:
            while self._propagation_queue:
                addr = self._propagation_queue.pop(0)
                encoded = self.meta.overlay.get(addr)
                if encoded is None:
                    # A load consumed the overlay entry: the line is back
                    # in the cache (dirty) and will propagate when it is
                    # evicted again.
                    continue
                self._propagate_one(addr, encoded)
        finally:
            self._propagating = False

    def _propagate_one(self, addr: int, encoded: bytes) -> None:
        """Persist one evicted line and fold its HMAC into its parent."""
        layout = self.layout
        node = layout.node_of_addr(addr)
        self.wpq.write(addr, encoded)
        child_hmac = self.hmac.counter_hmac(encoded)
        slot = layout.slot_in_parent(node)
        parent = layout.parent_of(node)
        if parent.level == layout.root_level:
            self.tcb.update_root_new(slot, child_hmac)
        else:
            parent_addr = layout.merkle_node_addr(parent)
            while True:
                self.meta.load_node(parent)
                parent_line = self.meta.probe(parent_addr)
                if parent_line is not None:
                    break
                # The install's eviction handling queued the parent out
                # again; its value is safe in the overlay — retry.
            parent_line.data = write_slot(
                bytes(parent_line.data), slot, child_hmac
            )
            parent_line.dirty = True
        # Retire the overlay entry only if no load replaced it meanwhile.
        if self.meta.overlay.get(addr) == encoded:
            self.meta.overlay.pop(addr, None)

    def _flush_all_dirty_lazily(self) -> None:
        """Graceful shutdown for the conventional designs.

        Writes every dirty metadata line bottom-up, propagating HMACs so
        the final NVM image is consistent with the TCB root.
        """
        while True:
            dirty = sorted(
                (line for line in self.meta.cache.dirty_lines()),
                key=lambda l: self.layout.node_of_addr(l.addr).level,
            )
            if not dirty:
                return
            victim = dirty[0]
            self._lazy_propagate_and_write(victim)
            self.meta.cache.clean(victim.addr)

    # ------------------------------------------------------------------
    # crash modeling
    # ------------------------------------------------------------------

    def crash(self) -> None:
        """Power failure: resolve the WPQ per ADR, lose all volatile state.

        Persistent TCB registers (roots, Nwb) survive.  Subclasses extend
        this to drop their own volatile structures (the dirty address
        queue is SRAM and is lost too).
        """
        self._crashes.inc()
        if self.obs is not None:
            self.obs.instant("scheme.crash", "scheme")
        self.wpq.power_failure()
        self.meta.crash()
        self.tcb.crash()
        self.busy_until = 0
        self._propagation_queue.clear()
        self._propagating = False
