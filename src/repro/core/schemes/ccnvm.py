"""cc-NVM — epoch-based consistent BMT with optional deferred spreading.

The paper's contribution (Section 4).  Security metadata is aggressively
cached and mutated in the meta cache; the drainer records every metadata
address the epoch touches, and a drain event atomically commits the whole
epoch to NVM through the WPQ (start signal → blocked metadata lines →
end signal → ``root_old`` catch-up).  The in-NVM Merkle tree therefore
only ever transitions between consistent states, so replay attacks remain
locatable even across a crash.

Two variants share this class:

* **cc-NVM w/o DS** (``deferred_spreading=False``) recomputes the HMAC
  chain up to the TCB ``root_new`` on every write-back — consistent at
  all times, but paying the serial chain like SC and Osiris Plus.
* **cc-NVM** (``deferred_spreading=True``) stops at the meta cache: the
  write-back only reserves the path's addresses in the dirty address
  queue (32-cycle lookup) and is forwarded immediately; every recorded
  node is recomputed exactly once at drain time, and ``root_new`` is
  updated only then.  The replay window this opens between drains is
  covered by the persistent ``Nwb`` register (Section 4.3).

Drain triggers (Section 4.2): queue full / can't fit the next write-back's
path; a dirty metadata line about to be evicted; a line updated more than
N times since turning dirty.  The model adds page re-keys (split-counter
major bumps) as an immediate commit, keeping recovery retries within one
major generation.
"""

from __future__ import annotations

from repro.common.config import SystemConfig
from repro.common.persistence import persistence
from repro.common.stats import StatGroup
from repro.core.drainer import DirtyAddressQueue, DrainTrigger
from repro.core.recovery import RecoveryManager, RecoveryPolicy, RecoveryReport
from repro.core.schemes.base import SecureNVMScheme
from repro.mem.cache import CacheLine
from repro.metadata.merkle import write_slot


@persistence(
    volatile=(
        "queue",
        "_draining",
        "_in_writeback",
        "_insert_cycles",
        "_pending_trigger",
    ),
)
class CcNVM(SecureNVMScheme):
    """The paper's ``cc-NVM`` (and, with ``deferred_spreading=False``,
    its ``cc-NVM w/o DS`` ablation)."""

    name = "ccnvm"

    def __init__(
        self,
        config: SystemConfig,
        data_capacity: int | None = None,
        seed: int | str = 0,
        stats: StatGroup | None = None,
        deferred_spreading: bool = True,
        locate_registers: bool = False,
    ) -> None:
        if locate_registers:
            self.name = "ccnvm_locate"
        elif not deferred_spreading:
            self.name = "ccnvm_no_ds"
        super().__init__(config, data_capacity, seed, stats)
        self.deferred_spreading = deferred_spreading
        #: Section 4.4's extension: persistent registers recording each
        #: dirty counter line's update count, enabling page-granular
        #: *location* of in-epoch replays at the cost of M extra TCB
        #: registers.
        self.locate_registers = locate_registers
        self.queue = DirtyAddressQueue(
            config.epoch.dirty_queue_entries, self.stats.group("drainer")
        )
        self.meta.pre_evict = self._pre_evict_drain
        self._draining = False
        self._in_writeback = False
        self._insert_cycles = 0
        self._pending_trigger: DrainTrigger | None = None
        self._drain_cycles = self.stats.distribution(
            "drain_cycles", "blocking cycles per epoch commit"
        )

    # ------------------------------------------------------------------
    # write-back path hooks
    # ------------------------------------------------------------------

    def _pre_accept(self, now: int, addr: int) -> int:
        """Reserve the write-back's metadata addresses in the dirty queue.

        Reservation covers the counter line *and* every NVM-resident
        ancestor even under deferred spreading ("we still need to reserve
        entries ... despite the fact they have not been dirtied yet",
        Section 4.3).  Trigger 1 fires first when the queue cannot take
        the set.
        """
        self._in_writeback = True
        path = self.layout.metadata_addresses_for_writeback(addr)
        cycles = 0
        if self._pending_trigger is not None:
            # A read-path eviction deferred its commit; this write-back
            # entry is the next quiescent point.
            trigger, self._pending_trigger = self._pending_trigger, None
            cycles += self._drain(now, trigger)
        if not self.queue.fits(path):
            cycles += self._drain(now, DrainTrigger.QUEUE_FULL)
        # One 32-cycle look-up/insert per path address through the CAM's
        # single port.  Steps (2) and (3) execute in parallel
        # (Section 4.2), so _update_tree later charges
        # max(insert time, tree-update time) — without deferred spreading
        # the serial HMAC chain completely hides these inserts.
        self._insert_cycles = self.config.epoch.dirty_queue_lookup_cycles * len(path)
        self.queue.reserve(path)
        self.queue.count_writeback()
        return cycles

    def _update_tree(self, now: int, counter_addr: int) -> int:
        if self.deferred_spreading:
            update = self._spread_until_cached(counter_addr)
        else:
            update = self._spread_to_root(counter_addr)
        # Metadata update and dirty-address-queue insertion proceed in
        # parallel; the write-back waits for whichever finishes last.
        return max(update, self._insert_cycles)

    def _spread_until_cached(self, counter_addr: int) -> int:
        """Deferred spreading's write-back-time walk (Section 4.3).

        Climb from the counter line, folding the child's HMAC into its
        parent, and *stop as soon as the parent is already resident in
        the meta cache* — a verified, trusted node absorbs the update
        implicitly and the spread to the root is deferred to the drain.
        Uncached parents must be fetched (and verified) before they can
        be updated, which is where cc-NVM's residual write-back cost
        comes from on metadata-cache-unfriendly workloads.
        """
        layout = self.layout
        cycles = 0
        node = layout.node_of_addr(counter_addr)
        child_line = self.meta.probe(counter_addr)
        while True:
            slot = layout.slot_in_parent(node)
            parent = layout.parent_of(node)
            if parent.level == layout.root_level:
                # Nothing cached all the way up: the walk reaches the TCB.
                child_hmac = self.hmac.counter_hmac(self.meta.encoded(child_line))
                cycles += self._hmac_cycles
                self.tcb.update_root_new(slot, child_hmac)
                return cycles
            parent_addr = layout.merkle_node_addr(parent)
            parent_line = self.meta.probe(parent_addr)
            if parent_line is not None:
                # Cached (trusted) ancestor: stop — the drain finishes the
                # spread once per epoch.
                return cycles
            result = self.meta.load_node(parent)
            cycles += result.cycles
            child_hmac = self.hmac.counter_hmac(self.meta.encoded(child_line))
            cycles += self._hmac_cycles
            parent_line = self.meta.probe(parent_addr)
            parent_line.data = write_slot(bytes(parent_line.data), slot, child_hmac)
            parent_line.dirty = True
            node = parent
            child_line = parent_line

    def _count_writeback_extras(self, counter_addr: int) -> None:
        # The extension-register bump must land atomically with the data
        # write it describes: recovery replays counter_log against the
        # stored counters, so a crash separating the two would make the
        # register file over- or under-count and false-alarm the check.
        if self.locate_registers:
            self.tcb.log_counter_update(counter_addr)

    def _post_writeback(
        self, now: int, counter_addr: int, line: CacheLine, overflowed: bool
    ) -> int:
        cycles = 0
        if overflowed:
            # Commit immediately so the stored counter never trails a page
            # re-key (keeps recovery retries within one major generation).
            cycles += self._drain(now, DrainTrigger.OVERFLOW)
        elif line.update_count >= self.config.epoch.update_limit:
            # Trigger 3, at (not past) the Nth update: a crash during
            # this very drain then leaves at most N stale updates, which
            # is exactly recovery's per-block retry budget.
            cycles += self._drain(now, DrainTrigger.UPDATE_LIMIT)
        if self._pending_trigger is not None:
            # A dirty line was evicted mid-write-back (trigger 2); the
            # commit was deferred to this boundary so the epoch is never
            # flushed with a half-spread tree path.
            trigger, self._pending_trigger = self._pending_trigger, None
            cycles += self._drain(now + cycles, trigger)
        self._in_writeback = False
        return cycles

    # ------------------------------------------------------------------
    # eviction hooks (trigger 2)
    # ------------------------------------------------------------------

    def _pre_evict_drain(self, victim: CacheLine) -> None:
        """A dirty metadata line is about to be evicted: commit the epoch.

        If a write-back is in flight, the tree path may be mid-update in
        the cache, so committing now could flush an internally
        inconsistent epoch; the drain is deferred to the write-back
        boundary and the victim's value is carried in the orphan buffer
        meanwhile.
        """
        if self._draining:
            return
        if self._in_writeback or self.meta.walk_depth > 0:
            # Mid-write-back: the tree path may be half-updated in the
            # cache.  Mid-walk: a drain would rewrite NVM lines whose
            # snapshots the walk is still verifying.  Either way the
            # victim's value stays safe in the overlay and the commit
            # moves to the next quiescent point.
            self._pending_trigger = DrainTrigger.META_EVICTION
            return
        self._drain(self.busy_until, DrainTrigger.META_EVICTION)

    def _on_dirty_meta_evict(self, victim: CacheLine) -> None:
        if not (self._draining or self._in_writeback or self.meta.walk_depth):
            raise RuntimeError(
                "dirty metadata escaped the cache outside a drain — the "
                "pre-eviction drain should have cleaned it"
            )
        # Park the newest value in the overlay: loads keep seeing it and
        # the (current or deferred) drain's flush loop commits it.
        self.meta.overlay[victim.addr] = self.meta.encoded(victim)

    # ------------------------------------------------------------------
    # the atomic draining protocol (Section 4.2)
    # ------------------------------------------------------------------

    def _drain(self, now: int, trigger: DrainTrigger) -> int:
        """Commit the current epoch; returns blocking cycles.

        Subsequent write-backs are blocked until the drain finishes
        (enforced through ``busy_until``).
        """
        addrs = self.queue.commit(trigger)
        if not addrs:
            self.tcb.commit_root()
            return 0
        self._draining = True
        cycles = 0
        if self.obs is not None:
            self.obs.begin(
                "epoch.drain",
                "epoch",
                {"trigger": trigger.value, "queued": len(addrs)},
                ts=now,
            )

        self._fault("drain.before_recompute")
        if self.deferred_spreading:
            if self.obs is not None:
                self.obs.begin("epoch.spread", "epoch", ts=now)
            cycles += self._spread_recorded(addrs)
            if self.obs is not None:
                self.obs.end(
                    "epoch.spread", "epoch", {"cycles": cycles}, ts=now + cycles
                )
        self._fault("drain.after_recompute")

        # start signal: metadata cachelines are blocked inside the WPQ.
        self.wpq.begin_atomic()
        flushed = 0
        for addr in addrs:
            line = self.meta.probe(addr)
            if line is not None:
                value = self.meta.encoded(line)
            elif addr in self.meta.overlay:
                value = self.meta.overlay.pop(addr)
            else:
                # Reserved but never loaded nor dirtied (w/o DS path only
                # reserves what it touches, so this is DS bookkeeping of a
                # clean line whose NVM copy is already current).
                continue
            self.wpq.write_atomic(addr, value)
            flushed += 1
        # end signal: the batch is released (durable even across a crash).
        self.wpq.commit_atomic()
        # Anything evicted dirty that was somehow not reserved would be
        # lost; persist it non-atomically as a last resort.
        for addr, value in list(self.meta.overlay.items()):
            self.wpq.write(addr, value)
            del self.meta.overlay[addr]
        cycles += flushed  # one cycle per line transfer into the WPQ
        cycles += self.controller.post_writes(now + cycles, flushed)
        # The atomic batch owns the WPQ (it can fill all 64 entries), so
        # normal write-backs cannot enter the persistence domain until the
        # batch has fully reached NVM; the drain blocks until then.
        cycles += max(0, self.controller.drain_time(now + cycles) - (now + cycles))

        for addr in addrs:
            self.meta.cache.clean(addr)
        self._fault("drain.before_root_commit")
        self.tcb.commit_root()  # root_old catches up; Nwb resets
        self._fault("drain.after_root_commit")

        self._draining = False
        self._drain_cycles.sample(cycles)
        if self.obs is not None:
            self.obs.end(
                "epoch.drain",
                "epoch",
                {"cycles": cycles, "lines": flushed},
                ts=now + cycles,
            )
        self.busy_until = max(self.busy_until, now + cycles)
        # The batch owns the WPQ end to end: nothing overlaps a drain.
        self.writeback_hard_cycles += cycles
        return cycles

    def _spread_recorded(self, addrs: list[int]) -> int:
        """Deferred spreading's drain-time recompute.

        Every recorded node is hashed exactly once, bottom-up by level;
        each hash lands in the node's parent (or in ``root_new`` for the
        top internal level).  Nodes that were reserved but never brought
        on-chip are fetched (with verification) on the way.
        """
        layout = self.layout
        cycles = 0
        by_level = sorted(addrs, key=lambda a: layout.node_of_addr(a).level)
        for addr in by_level:
            line = self.meta.probe(addr)
            if line is None:
                result = self.meta.load_verified(addr)
                cycles += result.cycles
                line = self.meta.probe(addr)
            node = layout.node_of_addr(addr)
            child_hmac = self.hmac.counter_hmac(self.meta.encoded(line))
            cycles += self._hmac_cycles
            slot = layout.slot_in_parent(node)
            parent = layout.parent_of(node)
            if parent.level == layout.root_level:
                self.tcb.update_root_new(slot, child_hmac)
                continue
            parent_addr = layout.merkle_node_addr(parent)
            parent_line = self.meta.probe(parent_addr)
            if parent_line is None:
                result = self.meta.load_verified(parent_addr)
                cycles += result.cycles
                parent_line = self.meta.probe(parent_addr)
            parent_line.data = write_slot(bytes(parent_line.data), slot, child_hmac)
            parent_line.dirty = True
        return cycles

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def flush(self) -> None:
        """Graceful shutdown: commit the open epoch."""
        self._pending_trigger = None
        self._drain(self.busy_until, DrainTrigger.FLUSH)

    def crash(self) -> None:
        """Power failure: the SRAM dirty address queue is lost too."""
        super().crash()
        self.queue.drop()
        self._draining = False
        self._in_writeback = False
        self._pending_trigger = None

    def recover(self) -> RecoveryReport:
        """The four-step recovery of Section 4.4.

        Both variants use the ``Nwb`` freshness check: even w/o DS, a
        crash can land between the (durable) data write and the chain
        recompute, so comparing the rebuilt root against ``root_new``
        would false-alarm on the one in-flight write-back.  ``Nwb`` is
        bumped atomically with the data write, so retry totals stay
        commensurable with it at every crash point, while an in-epoch
        replay still shows up as ``Nretry != Nwb``.
        """
        policy = RecoveryPolicy(
            check_tree_against=("old", "new"),
            retry_limit=self.config.epoch.update_limit,
            freshness_check="nwb",
            use_counter_log=self.locate_registers,
        )
        return RecoveryManager(
            self.nvm, self.tcb, self.merkle, policy, self.name,
            fault_hook=self.fault_hook, obs=self.obs,
        ).run()


class CcNVMWithLocateRegisters(CcNVM):
    """Convenience alias for the extension design (``ccnvm_locate``)."""

    def __init__(
        self,
        config: SystemConfig,
        data_capacity: int | None = None,
        seed: int | str = 0,
        stats: StatGroup | None = None,
    ) -> None:
        super().__init__(
            config, data_capacity, seed, stats, locate_registers=True
        )


class CcNVMWithoutDeferredSpreading(CcNVM):
    """Convenience alias for the ``cc-NVM w/o DS`` ablation."""

    def __init__(
        self,
        config: SystemConfig,
        data_capacity: int | None = None,
        seed: int | str = 0,
        stats: StatGroup | None = None,
    ) -> None:
        super().__init__(
            config, data_capacity, seed, stats, deferred_spreading=False
        )
