"""w/o CC — secure NVM without crash consistency (the normalization base).

The conventional DRAM-style secure memory moved to NVM unchanged: counters
and tree nodes are cached and updated in place; the Merkle tree is
maintained *lazily* — a dirty metadata line folds its HMAC into its parent
only when it is evicted ("it only writes to memory dirty evictions from
cache", Section 5).  Runtime confidentiality and integrity are fully
provided, and performance is the best achievable — which is exactly why
every figure normalizes to this design.

The price is paid at a crash: the freshest counters live only in SRAM, so
the NVM image wakes up with stale counters that no bound constrains, and
the tree image is a mixture of epochs no TCB root matches.  Recovery is
best-effort (the same data-HMAC retry as cc-NVM, but with no guarantee the
true counter lies within any bound) and typically reports unrecoverable
blocks — the paper's motivation for crash-consistent designs.
"""

from __future__ import annotations

from repro.core.recovery import RecoveryManager, RecoveryPolicy, RecoveryReport
from repro.core.schemes.base import SecureNVMScheme
from repro.mem.cache import CacheLine


class WithoutCrashConsistency(SecureNVMScheme):
    """The paper's ``w/o CC`` baseline."""

    name = "no_cc"

    def _update_tree(self, now: int, counter_addr: int) -> int:
        # Lazy maintenance: nothing happens at write-back time; the HMAC
        # chain is folded upward only when dirty lines leave the cache.
        return 0

    def _on_dirty_meta_evict(self, victim: CacheLine) -> None:
        self._lazy_propagate_and_write(victim)

    def flush(self) -> None:
        """Graceful shutdown: push all dirty metadata out consistently."""
        self._flush_all_dirty_lazily()

    def recover(self) -> RecoveryReport:
        """Best-effort recovery — expected to fail after a real crash.

        The stored tree matches no root (so step 1 cannot distinguish
        crash damage from attacks and is skipped) and counters may be
        arbitrarily stale; the retry bound borrowed from the epoch config
        is a courtesy, not a guarantee.
        """
        policy = RecoveryPolicy(
            check_tree_against=(),
            retry_limit=self.config.epoch.update_limit,
            freshness_check=None,
        )
        report = RecoveryManager(
            self.nvm, self.tcb, self.merkle, policy, self.name,
            fault_hook=self.fault_hook, obs=self.obs,
        ).run()
        report.notes.append(
            "w/o CC provides no crash consistency: recovery is best-effort "
            "and unrecoverable blocks are expected after a crash"
        )
        return report
