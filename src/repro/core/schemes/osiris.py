"""Osiris Plus — ECC-style counter restoration (Ye et al., MICRO'18).

The state-of-the-art comparison point (Section 5): dirty counter lines
never *have* to be flushed.  Instead, every counter line is written to NVM
once per N updates (the stop-loss/phase write), bounding how far the
stored value can trail the truth; after a crash the current value is
found again by bounded online checking — in this model, the same
data-HMAC retry cc-NVM uses.  The Merkle path is still recomputed up to
the TCB root register on every write-back (data and root must stay
consistent for recovery to be sound), but the *internal* tree nodes are
never deliberately persisted: the whole tree is rebuilt from the
recovered counters at boot and compared against the root register.

Consequences the evaluation leans on (Sections 3 and 5):

* write traffic barely exceeds the baseline (only the periodic counter
  writes and natural dirty evictions);
* per-write-back latency matches SC/cc-NVM-w/o-DS — the serial HMAC chain
  to the root dominates;
* after an attack, the rebuilt root merely *mismatches*: Osiris Plus can
  detect integrity violations across a crash but cannot point at the
  tampered block, so all data must be dropped — cc-NVM's headline
  advantage.
"""

from __future__ import annotations

from repro.core.recovery import RecoveryManager, RecoveryPolicy, RecoveryReport
from repro.core.schemes.base import SecureNVMScheme
from repro.mem.cache import CacheLine


class OsirisPlus(SecureNVMScheme):
    """The paper's ``Osiris Plus`` design."""

    name = "osiris_plus"

    def _update_tree(self, now: int, counter_addr: int) -> int:
        # Data may only be considered recoverable once the root register
        # reflects it, so the chain recompute blocks the write-back.
        return self._spread_to_root(counter_addr)

    def _post_writeback(
        self, now: int, counter_addr: int, line: CacheLine, overflowed: bool
    ) -> int:
        # Stop-loss: the Nth update (or a page re-key, whose counter must
        # not trail the re-encrypted data) persists the counter line.
        # The persist is *ordered* (a one-line atomic batch, i.e. a WPQ
        # fence): Osiris Plus's staleness bound is only a bound if the
        # stop-loss write cannot be lost behind later write-backs still
        # in flight toward the WPQ.
        if overflowed or line.update_count >= self.config.epoch.update_limit:
            self.wpq.begin_atomic()
            self.wpq.write_atomic(counter_addr, self.meta.encoded(line))
            self.wpq.commit_atomic()
            self._fault("writeback.after_stoploss")
            self.meta.cache.clean(counter_addr)
            return self.controller.post_write(now)
        return 0

    def _on_dirty_meta_evict(self, victim: CacheLine) -> None:
        # Cached ancestors are already current (the chain is recomputed
        # every write-back), so a dirty victim just needs to be written.
        # For counters this makes the NVM copy fully current; for internal
        # nodes the NVM image is best-effort — recovery rebuilds it anyway.
        self.wpq.write(victim.addr, self.meta.encoded(victim))

    def flush(self) -> None:
        """Persist all dirty metadata (already current), *ordered*.

        The same argument as the stop-loss write applies: a flushed
        counter line reflects updates whose data may still be in flight
        toward the WPQ, so it must not be able to land while an earlier
        data write-back is lost — the stored counter would run *ahead*
        of the data, which the one-directional retry of counter
        restoration can never recover.  Each line goes through the
        one-line atomic batch (a WPQ fence), exactly like the stop-loss
        persist.
        """
        for line in list(self.meta.cache.dirty_lines()):
            self.wpq.begin_atomic()
            self.wpq.write_atomic(line.addr, self.meta.encoded(line))
            self.wpq.commit_atomic()
            self.meta.cache.clean(line.addr)

    def recover(self) -> RecoveryReport:
        """Counter restoration + tree rebuild + root comparison.

        Step 1 is impossible — the stored internal tree is never
        consistent — so tree tampering and replay collapse into a single
        signal: the rebuilt root disagreeing with the per-write-back root
        register.  Detection without location.
        """
        policy = RecoveryPolicy(
            check_tree_against=(),
            retry_limit=self.config.epoch.update_limit,
            freshness_check="root_new",
        )
        report = RecoveryManager(
            self.nvm, self.tcb, self.merkle, policy, self.name,
            fault_hook=self.fault_hook, obs=self.obs,
        ).run()
        if report.potential_replay_detected:
            report.notes.append(
                "Osiris Plus cannot locate the tampered block: the whole "
                "NVM contents must be dropped"
            )
        return report
