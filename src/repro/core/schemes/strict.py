"""SC — strict consistency (Section 2.3's naive approach).

Every write-back atomically persists the data block *and* its entire
metadata closure: the counter line and all Merkle-tree nodes on its path
are recomputed serially up to the root and flushed to NVM in one atomic
WPQ batch, with the TCB root committed alongside.  For the paper's 16 GB
device that is "12 atomic BMT updates on every write-back (the BMT root
is updated on the TCB, whereas 10 internal path nodes and the leaf-level
counter are updated in the NVM)" (Section 5.2) — plus data and data HMAC,
~13 line writes per eviction.

NVM is consistent at *every instant*, so recovery is trivial; the cost is
the ~5.5x write amplification and the serial HMAC chain on every
write-back that motivate cc-NVM.
"""

from __future__ import annotations

from repro.common.config import SystemConfig
from repro.common.stats import StatGroup
from repro.core.recovery import RecoveryManager, RecoveryPolicy, RecoveryReport
from repro.core.schemes.base import SecureNVMScheme
from repro.mem.cache import CacheLine


class StrictConsistency(SecureNVMScheme):
    """The paper's ``SC`` design."""

    name = "sc"

    def __init__(
        self,
        config: SystemConfig,
        data_capacity: int | None = None,
        seed: int | str = 0,
        stats: StatGroup | None = None,
    ) -> None:
        super().__init__(config, data_capacity, seed, stats)

    def _update_tree(self, now: int, counter_addr: int) -> int:
        cycles = self._spread_to_root(counter_addr)

        # Atomically flush the whole metadata path (counter + internal
        # nodes); the persistent root registers commit with it.
        path = [counter_addr]
        node = self.layout.node_of_addr(counter_addr)
        while True:
            parent = self.layout.parent_of(node)
            if parent.level == self.layout.root_level:
                break
            path.append(self.layout.merkle_node_addr(parent))
            node = parent

        self.wpq.begin_atomic()
        flushed = 0
        for addr in path:
            line = self.meta.probe(addr)
            if line is not None:
                value = self.meta.encoded(line)
            elif addr in self.meta.overlay:
                value = self.meta.overlay.pop(addr)
            else:
                continue
            self.wpq.write_atomic(addr, value)
            flushed += 1
        # Dirty lines pushed out mid-chain (now in the overlay) join the
        # same atomic batch.
        for addr in list(self.meta.overlay):
            self.wpq.write_atomic(addr, self.meta.overlay.pop(addr))
            flushed += 1
        self.wpq.commit_atomic()
        cycles += self.controller.post_writes(now + cycles, flushed)
        for addr in path:
            self.meta.cache.clean(addr)
        self.tcb.commit_root()
        return cycles

    def _on_dirty_meta_evict(self, victim: CacheLine) -> None:
        # Between write-backs every metadata line is clean; a dirty victim
        # can only appear mid-chain while its path is being recomputed.
        # Park it in the overlay: loads keep seeing the newest value and
        # the current write-back's atomic batch commits it.
        self.meta.overlay[victim.addr] = self.meta.encoded(victim)

    def flush(self) -> None:
        """Nothing to do: NVM is consistent after every write-back."""

    def recover(self) -> RecoveryReport:
        """Near-trivial recovery: verify the (always-consistent) image.

        The data block and its HMAC are accepted into the WPQ *before*
        the metadata batch is assembled, so a crash can leave exactly one
        write-back's data durable while its counter update was dropped
        with the un-ended batch.  The stored counter therefore lags by at
        most the one in-flight write-back — retry bound 1 — and the
        stored tree legitimately matches ``root_new`` (quiescent) or
        ``root_old`` (crash mid-batch, both registers still equal the
        last committed root).
        """
        policy = RecoveryPolicy(
            check_tree_against=("new", "old"),
            retry_limit=1,
            freshness_check="root_new",
        )
        return RecoveryManager(
            self.nvm, self.tcb, self.merkle, policy, self.name,
            fault_hook=self.fault_hook, obs=self.obs,
        ).run()
