"""Trusted computing base state.

Holds everything the threat model places inside the processor chip:

* the secret encryption and HMAC keys;
* the Merkle-tree root registers.  cc-NVM keeps **two** persistent root
  registers (Section 4.2): ``root_new`` tracks the up-to-date tree held in
  the meta cache, while ``root_old`` is advanced only when an epoch commits
  and therefore always matches the consistent tree image in NVM;
* ``nwb`` — the 64-bit persistent register counting write-back events since
  the last committed drain (Section 4.3), used at recovery to detect the
  replay window deferred spreading opens.

Persistent registers survive a crash; everything else on chip (cache
contents, in-flight state) is lost.  :meth:`TCB.crash` models exactly
that split.
"""

from __future__ import annotations

from repro.common.constants import CACHE_LINE_SIZE, MERKLE_ARITY
from repro.common.persistence import persistence
from repro.crypto.prf import SecretKey


@persistence(
    persistent=(
        "root_new",
        "root_old",
        "nwb",
        "counter_log",
        "recovery_pending",
    ),
    aka=("tcb",),
    mutators=(
        "update_root_new",
        "set_root_new",
        "commit_root",
        "set_roots",
        "count_writeback",
        "log_counter_update",
        "begin_recovery",
        "restore_registers",
    ),
    # Ordering-point model (lint rules P6/P7): an epoch/root commit only
    # happens after the drain emptied the WPQ, so it orders every earlier
    # store; the per-write-back register bumps must share a controller
    # transaction (combined group) with the data write they describe.
    fences=("commit_root", "set_roots"),
    grouped=("count_writeback", "log_counter_update"),
)
class TCB:
    """On-chip secure state: keys and persistent registers."""

    def __init__(
        self,
        encryption_key: SecretKey,
        hmac_key: SecretKey,
        genesis_root: bytes,
    ) -> None:
        if len(genesis_root) != CACHE_LINE_SIZE:
            raise ValueError("the root register holds one 64 B root node")
        self.encryption_key = encryption_key
        self.hmac_key = hmac_key
        #: Root of the newest (possibly cache-only) tree state.
        self.root_new = bytes(genesis_root)
        #: Root matching the consistent tree image committed to NVM.
        self.root_old = bytes(genesis_root)
        #: Write-back events since the last committed drain.
        self.nwb = 0
        #: Optional extension registers (Section 4.4's closing remark):
        #: per dirty counter line, the update count since the last commit.
        #: Bounded by the dirty-address-queue depth; persistent.  Filled
        #: only by designs built with ``locate_registers=True``.
        self.counter_log: dict[int, int] = {}
        #: Persistent one-bit register set while a recovery run is
        #: mutating the NVM image and cleared by :meth:`set_roots`.  A
        #: crash *during* recovery leaves it set, telling the next
        #: recovery attempt it is resuming over a half-rebuilt image (the
        #: stored tree need not match either root, and retry counts are
        #: no longer commensurable with ``nwb``).
        self.recovery_pending = False
        #: Optional persist-trace callback (see :mod:`repro.crashsim`):
        #: called with ``(mutator, addr)`` after every persistent-register
        #: micro-op so a recorder can interleave register updates with the
        #: WPQ persist stream.
        self.trace_hook = None

    def _trace(self, mutator: str, addr: int | None = None) -> None:
        if self.trace_hook is not None:
            self.trace_hook(mutator, addr)

    # -- root register manipulation ------------------------------------------------

    def update_root_new(self, slot: int, hmac: bytes) -> None:
        """Replace one child HMAC inside ``root_new``."""
        from repro.metadata.merkle import write_slot

        if not 0 <= slot < MERKLE_ARITY:
            raise ValueError(f"root slot {slot} out of range")
        self.root_new = write_slot(self.root_new, slot, hmac)
        self._trace("update_root_new")

    def set_root_new(self, root: bytes) -> None:
        """Overwrite ``root_new`` wholesale (recovery / full recompute)."""
        if len(root) != CACHE_LINE_SIZE:
            raise ValueError("the root register holds one 64 B root node")
        self.root_new = bytes(root)
        self._trace("set_root_new")

    def commit_root(self) -> None:
        """Epoch commit: ``root_old`` catches up with ``root_new``."""
        self.root_old = self.root_new
        self.nwb = 0
        self.counter_log.clear()
        self._trace("commit_root")

    def set_roots(self, root: bytes) -> None:
        """Set both registers to *root* (post-recovery reset)."""
        self.set_root_new(root)
        self.root_old = self.root_new
        self.nwb = 0
        self.counter_log.clear()
        self.recovery_pending = False
        self._trace("set_roots")

    def begin_recovery(self) -> None:
        """Set the persistent ``recovery_pending`` flag.

        Called by the recovery manager immediately before it starts
        mutating the NVM image, so a crash *during* recovery is visible
        to the next attempt.  Only :meth:`set_roots` clears the flag.
        """
        self.recovery_pending = True
        self._trace("begin_recovery")

    # -- write-back accounting -------------------------------------------------------

    def count_writeback(self) -> None:
        """Record one write-back event for the Nwb register."""
        self.nwb += 1
        self._trace("count_writeback")

    def log_counter_update(self, counter_addr: int) -> None:
        """Extension registers: count one update of a dirty counter line."""
        self.counter_log[counter_addr] = self.counter_log.get(counter_addr, 0) + 1
        self._trace("log_counter_update", counter_addr)

    # -- register snapshot / restore -----------------------------------------------

    def registers_snapshot(self) -> dict:
        """Read-only snapshot of every persistent register.

        Used by the crash-state explorer to pin the register file at a
        recorded trace point; keys survive in the TCB itself and are never
        part of the snapshot.
        """
        return {
            "root_new": self.root_new,
            "root_old": self.root_old,
            "nwb": self.nwb,
            "counter_log": dict(self.counter_log),
            "recovery_pending": self.recovery_pending,
        }

    def restore_registers(self, snapshot: dict) -> None:
        """Overwrite the persistent register file from a snapshot.

        This is a *simulation-harness* micro-op: real hardware has no
        such operation, but the crash-state explorer needs to rewind the
        registers to an earlier recorded state before replaying a crash
        image against recovery.
        """
        self.root_new = bytes(snapshot["root_new"])
        self.root_old = bytes(snapshot["root_old"])
        self.nwb = int(snapshot["nwb"])
        self.counter_log.clear()
        self.counter_log.update(
            {int(addr): int(count) for addr, count in snapshot["counter_log"].items()}
        )
        self.recovery_pending = bool(snapshot["recovery_pending"])

    # -- crash semantics ----------------------------------------------------------------

    def crash(self) -> None:
        """Model a power failure.

        Keys, the persistent registers (``root_new``, ``root_old``,
        ``nwb``, ``recovery_pending``) and the optional extension
        register file survive; the
        TCB holds no other state, so this is deliberately a no-op —
        defined explicitly to document the persistence contract in one
        place.
        """
