"""Systematic crash-state exploration for the secure-NVM designs.

The fault campaign (:mod:`repro.faults`) crashes at 16 hand-named
micro-steps; this package turns the recovery oracle into a *falsifier*:

1. :mod:`~repro.crashsim.trace` records the ordered stream of persist
   micro-ops a workload produces (WPQ writes, atomic batches, TCB
   register updates) through plain ``trace_hook`` callbacks;
2. :mod:`~repro.crashsim.enumerate` expands the trace into every
   durable state ADR semantics permit — prefixes, bounded in-flight
   window drops, batches all-or-nothing;
3. :mod:`~repro.crashsim.oracle` runs the design's own recovery on each
   state and checks the documented contract, including nested
   crash-during-recovery schedules;
4. :mod:`~repro.crashsim.minimize` delta-debugs any violation to a
   minimal replayable reproducer;
5. :mod:`~repro.crashsim.explore` fans the whole thing out through the
   run orchestrator (cached, journaled, parallel).
"""

from repro.crashsim.enumerate import (
    CrashEnumerator,
    CrashState,
    applied_ops,
    build_state,
)
from repro.crashsim.explore import ExploreConfig, explore_specs, record_trace, run_explore
from repro.crashsim.minimize import (
    Reproducer,
    from_state,
    minimize,
    rebuild_trace,
    replay,
)
from repro.crashsim.oracle import ALLOWED_OUTCOMES, RecoveryOracle, Verdict
from repro.crashsim.trace import (
    PersistOp,
    PersistTrace,
    PersistTraceRecorder,
    TraceUnit,
)
from repro.crashsim.workload import record_workload

__all__ = [
    "ALLOWED_OUTCOMES",
    "CrashEnumerator",
    "CrashState",
    "ExploreConfig",
    "PersistOp",
    "PersistTrace",
    "PersistTraceRecorder",
    "RecoveryOracle",
    "Reproducer",
    "TraceUnit",
    "Verdict",
    "applied_ops",
    "build_state",
    "explore_specs",
    "from_state",
    "minimize",
    "rebuild_trace",
    "record_trace",
    "record_workload",
    "replay",
    "run_explore",
]
