"""Systematic crash-state exploration for the secure-NVM designs.

The fault campaign (:mod:`repro.faults`) crashes at 16 hand-named
micro-steps; this package turns the recovery oracle into a *falsifier*:

1. :mod:`~repro.crashsim.trace` records the ordered stream of persist
   micro-ops a workload produces (WPQ writes, atomic batches, TCB
   register updates) through plain ``trace_hook`` callbacks;
2. :mod:`~repro.crashsim.enumerate` expands the trace into every
   durable state ADR semantics permit — prefixes, bounded in-flight
   window drops, batches all-or-nothing;
3. :mod:`~repro.crashsim.oracle` runs the design's own recovery on each
   state and checks the documented contract, including nested
   crash-during-recovery schedules;
4. :mod:`~repro.crashsim.reduce` partitions the states into
   recovery-relevant equivalence classes so one oracle run covers a
   whole class (and exhaustive coverage needs no sampling);
5. :mod:`~repro.crashsim.minimize` delta-debugs any violation to a
   minimal replayable reproducer;
6. :mod:`~repro.crashsim.explore` fans the whole thing out through the
   run orchestrator (cached, journaled, parallel) — one-shot
   explorations and the standing scheme x workload crash campaign.
"""

from repro.crashsim.enumerate import (
    CrashEnumerator,
    CrashState,
    applied_ops,
    build_state,
)
from repro.crashsim.explore import (
    CrashCampaignConfig,
    ExploreConfig,
    campaign_specs,
    explore_specs,
    record_trace,
    run_campaign,
    run_explore,
)
from repro.crashsim.minimize import (
    Reproducer,
    from_state,
    minimize,
    rebuild_trace,
    replay,
)
from repro.crashsim.oracle import (
    ALLOWED_OUTCOMES,
    ClassOracle,
    CrashClass,
    RecoveryOracle,
    Verdict,
)
from repro.crashsim.reduce import (
    RECOVERY_VIEWS,
    CrashStateReducer,
    RecoveryView,
    ReducedEnumerator,
    recovery_view,
)
from repro.crashsim.trace import (
    PersistOp,
    PersistTrace,
    PersistTraceRecorder,
    TraceUnit,
)
from repro.crashsim.workload import record_workload

__all__ = [
    "ALLOWED_OUTCOMES",
    "CrashCampaignConfig",
    "ClassOracle",
    "CrashClass",
    "CrashEnumerator",
    "CrashState",
    "CrashStateReducer",
    "ExploreConfig",
    "PersistOp",
    "PersistTrace",
    "PersistTraceRecorder",
    "RECOVERY_VIEWS",
    "RecoveryOracle",
    "RecoveryView",
    "ReducedEnumerator",
    "Reproducer",
    "TraceUnit",
    "Verdict",
    "applied_ops",
    "build_state",
    "campaign_specs",
    "explore_specs",
    "from_state",
    "minimize",
    "rebuild_trace",
    "record_trace",
    "record_workload",
    "recovery_view",
    "replay",
    "run_campaign",
    "run_explore",
]
