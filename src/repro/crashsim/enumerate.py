"""Crash-state enumeration under ADR semantics.

Given a recorded :class:`~repro.crashsim.trace.PersistTrace`, generate
the NVM-image × register-file states a power failure can leave behind:

* **every prefix** — a crash between any two trace units;
* **window drops** — a unit is one controller write transaction, and
  transactions still in flight toward the WPQ may be lost even though
  *later* transactions were already accepted.  The model bounds that
  in-flight window to the last ``window`` units, keeps per-address
  program order (a surviving write implies every earlier write to the
  same line survived — the controller never reorders same-line stores),
  and treats committed atomic batches and epoch commits as fences:
  the batch owns the WPQ end to end, so nothing earlier is still in
  flight once it commits;
* **atomic batches all-or-nothing** — a batch unit is applied in full
  or not at all.  With ``torn_batches=True`` the enumerator *also*
  emits partially-applied batch states, deliberately violating the
  paper's protocol; that mode exists so the oracle can demonstrate it
  catches an ordering bug, never for validating a correct design.

Per crash point the drop-sets are enumerated exhaustively while
``2**window <= budget`` and sampled (seeded, with forward repair to
restore per-address consistency) above it.

TCB register micro-ops replay as *deltas* (``nwb += 1``,
``counter_log[addr] += 1``, commit folds ``root_new`` into
``root_old``), never as recorded absolute snapshots: once an earlier
droppable unit is gone, an absolute snapshot would smuggle the dropped
write's register effect back in.  Only the root-register mutators are
absolute — they live in standalone units no drop-set can touch.
"""

from __future__ import annotations

import hashlib
import itertools
import random
from dataclasses import dataclass

from repro.crashsim.trace import PersistTrace, PersistOp, TraceUnit, registers_to_dict

#: Defaults chosen so the default window is exhaustive: 2**4 <= 16.
DEFAULT_WINDOW = 4
DEFAULT_BUDGET = 16
#: Rejection-sampling retry multiplier: how many draws the sampler may
#: spend per requested drop-set before giving up on filling the budget.
SAMPLE_RETRY_FACTOR = 16


def canonical_value(value):
    """A hashable, order-independent image of a (nested) register value.

    Dicts become sorted item tuples recursively, so two structurally
    equal register files hash identically no matter the insertion order
    of nested mappings such as ``counter_log``.
    """
    if isinstance(value, dict):
        return tuple(sorted((k, canonical_value(v)) for k, v in value.items()))
    if isinstance(value, (list, tuple)):
        return tuple(canonical_value(v) for v in value)
    return value


@dataclass
class CrashState:
    """One reachable post-crash durable state."""

    #: Trace units 0..k-1 were reached (minus ``dropped``).
    k: int
    #: Indices of window units lost in flight (sorted, possibly empty).
    dropped: tuple[int, ...]
    #: For torn-batch mode: how many ops of unit ``k-1`` applied.
    torn: int | None
    #: Complete durable NVM image (initial lines + surviving writes).
    lines: dict[int, bytes]
    #: TCB persistent register file at the crash.
    registers: dict
    #: addr -> plaintext the surviving write stream implies.
    expected: dict[int, bytes]

    def describe(self) -> str:
        out = f"k={self.k}"
        if self.dropped:
            out += ",drop=" + "+".join(str(i) for i in self.dropped)
        if self.torn is not None:
            out += f",torn={self.torn}"
        return out

    def image_hash(self) -> str:
        """Content hash of (NVM image, register file) — state identity."""
        h = hashlib.sha256()
        for addr in sorted(self.lines):
            h.update(addr.to_bytes(8, "little"))
            h.update(self.lines[addr])
        regs = registers_to_dict(self.registers)
        h.update(repr(canonical_value(regs)).encode())
        return h.hexdigest()


def apply_op(
    lines: dict,
    registers: dict,
    expected: dict,
    op: PersistOp,
    annotations: dict,
) -> None:
    """Replay one recorded micro-op onto a durable state."""
    if op.kind in ("write", "write_partial", "write_atomic"):
        lines[op.addr] = op.data
        if op.seq in annotations:
            expected[op.addr] = annotations[op.seq]
        return
    mutator = op.mutator
    if mutator == "count_writeback":
        registers["nwb"] += 1
    elif mutator == "log_counter_update":
        log = registers["counter_log"]
        log[op.addr] = log.get(op.addr, 0) + 1
    elif mutator == "commit_root":
        registers["root_old"] = registers["root_new"]
        registers["nwb"] = 0
        registers["counter_log"] = {}
    elif mutator in ("update_root_new", "set_root_new"):
        registers["root_new"] = op.data
    elif mutator == "set_roots":
        registers["root_new"] = op.data
        registers["root_old"] = op.data
        registers["nwb"] = 0
        registers["counter_log"] = {}
        registers["recovery_pending"] = False
    elif mutator == "begin_recovery":
        registers["recovery_pending"] = True
    else:
        raise ValueError(f"unknown TCB mutator {mutator!r} in trace")


def _copy_registers(registers: dict) -> dict:
    out = dict(registers)
    out["counter_log"] = dict(registers["counter_log"])
    return out


class CrashEnumerator:
    """Generates :class:`CrashState`\\ s from one recorded trace."""

    def __init__(
        self,
        trace: PersistTrace,
        window: int = DEFAULT_WINDOW,
        budget: int = DEFAULT_BUDGET,
        seed: int = 0,
        torn_batches: bool = False,
    ) -> None:
        if window < 0:
            raise ValueError("window must be >= 0")
        if budget < 1:
            raise ValueError("budget must be >= 1")
        self.trace = trace
        self.window = window
        self.budget = budget
        self.seed = seed
        self.torn_batches = torn_batches
        #: Coverage accounting for the sampled fallback: how many crash
        #: points fell back to sampling, how many drop-sets they asked
        #: for and how many distinct ones the sampler actually produced.
        #: ``sampled < requested`` means the budget was partly wasted;
        #: ``points > 0`` at all means coverage was not exhaustive.
        self.sample_stats = {"points": 0, "requested": 0, "sampled": 0}

    # -- drop-set machinery --------------------------------------------------------

    def _droppable(self, k: int) -> list[int]:
        """Window units still in flight at crash point *k* (ascending)."""
        units = self.trace.units
        out: list[int] = []
        for j in range(k - 1, max(-1, k - 1 - self.window), -1):
            if units[j].is_fence:
                break
            if units[j].droppable:
                out.append(j)
        out.reverse()
        return out

    def _consistent(self, drop: frozenset, candidates: list[int]) -> bool:
        """Per-address prefix consistency: a dropped unit forces every
        later window unit touching any of its lines to drop too."""
        units = self.trace.units
        for i in drop:
            for j in candidates:
                if j > i and j not in drop and units[j].addrs & units[i].addrs:
                    return False
        return True

    def _drop_sets(self, k: int, candidates: list[int]) -> list[tuple[int, ...]]:
        units = self.trace.units
        if 2 ** len(candidates) <= self.budget:
            out = []
            for r in range(1, len(candidates) + 1):
                for combo in itertools.combinations(candidates, r):
                    if self._consistent(frozenset(combo), candidates):
                        out.append(combo)
            return out
        # Sampled fallback.  Forward repair collapses distinct draws into
        # duplicates, so a fixed number of draws can return far fewer
        # than ``budget`` distinct sets; rejection-sample until the
        # budget is met or the retry cap is spent, and account for the
        # shortfall either way.
        rng = random.Random(f"{self.seed}:{k}")
        seen: set[tuple[int, ...]] = set()
        attempts = 0
        cap = self.budget * SAMPLE_RETRY_FACTOR
        while len(seen) < self.budget and attempts < cap:
            attempts += 1
            drop = {j for j in candidates if rng.random() < 0.5}
            # Forward repair: dropping a unit drags every later window
            # unit sharing a line down with it (transitively).
            for j in candidates:
                if j in drop:
                    continue
                if any(i in drop and units[i].addrs & units[j].addrs
                       for i in candidates if i < j):
                    drop.add(j)
            if drop:
                seen.add(tuple(sorted(drop)))
        self.sample_stats["points"] += 1
        self.sample_stats["requested"] += self.budget
        self.sample_stats["sampled"] += len(seen)
        return sorted(seen)

    # -- state generation ---------------------------------------------------------

    def states(self, points=None):
        """Yield every reachable crash state, crash point by crash point.

        *points*, when given, is a predicate over the crash point index
        ``k`` (0..len(trace)); only matching points are expanded — the
        orchestrator shards the trace this way, with each worker
        regenerating the identical trace and expanding its own residue
        class.
        """
        trace = self.trace
        units = trace.units
        lines = dict(trace.initial_lines)
        registers = _copy_registers(trace.initial_registers)
        expected: dict[int, bytes] = {}
        #: position -> (lines, registers, expected) after units[0..pos).
        snapshots: dict[int, tuple] = {}

        for k in range(len(units) + 1):
            snapshots[k] = (dict(lines), _copy_registers(registers), dict(expected))
            for stale in list(snapshots):
                if stale < k - self.window:
                    del snapshots[stale]

            if points is None or points(k):
                yield CrashState(
                    k, (), None, dict(lines), _copy_registers(registers), dict(expected)
                )
                candidates = self._droppable(k)
                for drop in self._drop_sets(k, candidates) if candidates else ():
                    base = drop[0]
                    s_lines, s_regs, s_expected = snapshots[base]
                    s_lines = dict(s_lines)
                    s_regs = _copy_registers(s_regs)
                    s_expected = dict(s_expected)
                    dropped = set(drop)
                    for j in range(base, k):
                        if j in dropped:
                            continue
                        for op in units[j].ops:
                            apply_op(s_lines, s_regs, s_expected, op, trace.annotations)
                    yield CrashState(k, drop, None, s_lines, s_regs, s_expected)
                if (
                    self.torn_batches
                    and k >= 1
                    and units[k - 1].kind == "batch"
                    and len(units[k - 1].ops) > 1
                ):
                    for torn in range(1, len(units[k - 1].ops)):
                        s_lines, s_regs, s_expected = snapshots[k - 1]
                        s_lines = dict(s_lines)
                        s_regs = _copy_registers(s_regs)
                        s_expected = dict(s_expected)
                        for op in units[k - 1].ops[:torn]:
                            apply_op(s_lines, s_regs, s_expected, op, trace.annotations)
                        yield CrashState(k, (), torn, s_lines, s_regs, s_expected)

            if k < len(units):
                for op in units[k].ops:
                    apply_op(lines, registers, expected, op, trace.annotations)


def build_state(trace: PersistTrace, ops: list[PersistOp]) -> CrashState:
    """The durable state after applying *ops* to the trace's initial image.

    Used by the minimizer and the reproducer replayer, where the op list
    no longer corresponds to whole trace units.
    """
    lines = dict(trace.initial_lines)
    registers = _copy_registers(trace.initial_registers)
    expected: dict[int, bytes] = {}
    for op in ops:
        apply_op(lines, registers, expected, op, trace.annotations)
    return CrashState(len(trace.units), (), None, lines, registers, expected)


def applied_ops(trace: PersistTrace, state_meta: "CrashState | tuple") -> list[PersistOp]:
    """The flat op sequence a :class:`CrashState` applied, in order."""
    if isinstance(state_meta, CrashState):
        k, dropped, torn = state_meta.k, set(state_meta.dropped), state_meta.torn
    else:
        k, dropped, torn = state_meta[0], set(state_meta[1]), state_meta[2]
    out: list[PersistOp] = []
    for j in range(k):
        unit: TraceUnit = trace.units[j]
        if j in dropped:
            continue
        if torn is not None and j == k - 1:
            out.extend(unit.ops[:torn])
        else:
            out.extend(unit.ops)
    return out
