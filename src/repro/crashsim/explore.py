"""The explorer driver: fan crash-state enumeration through the orchestrator.

A full exploration of one scheme is embarrassingly parallel but far too
big for one cacheable unit, so it is cut into **cells**, each a
:class:`~repro.runs.spec.RunSpec` of the new ``crash`` kind:

* ``enumerate`` cells shard the trace's crash points by residue class
  (``k % shards == shard``).  Every worker regenerates the identical
  deterministic trace — specs stay tiny, exactly like the simulation
  specs that ship workload recipes instead of traces — expands its own
  points, runs the oracle on each state, and returns distinct
  image hashes, an outcome histogram and (minimized) violations;
* ``nested`` cells take the full-trace state and crash *recovery
  itself* at one scheduled recovery site (depth 1) or two in sequence
  (depth 2), exercising the restartable ``recovery_pending`` path.

Because cells run through :func:`repro.runs.orchestrate`, explorations
are content-cached (a warm re-run executes nothing), journaled,
resumable and parallel.  The merged summary is deliberately free of
timings and orchestration counts, so a serial run and a ``--jobs 2``
run of the same exploration produce byte-identical JSON.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.faults.plan import RECOVERY_SITES

#: Smoke-budget defaults: small enough for CI, large enough that every
#: scheme clears over 200 distinct states (measured floor at 96 steps:
#: 255, for the schemes whose epochs dedupe most aggressively).
DEFAULT_STEPS = 96
DEFAULT_SHARDS = 4
#: Violations minimized per cell; the rest ship unminimized (a cell
#: drowning in violations is already actionable from the first few).
MAX_MINIMIZE = 3


@dataclass(frozen=True)
class ExploreConfig:
    """Shape of one exploration."""

    schemes: tuple[str, ...] = ("ccnvm",)
    steps: int = DEFAULT_STEPS
    window: int = 4
    budget: int = 16
    seed: int = 7
    shards: int = DEFAULT_SHARDS
    data_capacity: int = 1 << 16
    #: Emit partially-applied batch states (protocol-violating; used to
    #: demonstrate the oracle catches ordering bugs).
    torn_batches: bool = False
    #: Nested crash-during-recovery schedules per recovery site (1..2).
    nested_depth: int = 2


def record_trace(scheme_name: str, cfg: ExploreConfig):
    """Deterministically rebuild the persist trace for one scheme."""
    from repro.core.schemes import create_scheme
    from repro.crashsim.workload import record_workload

    scheme = create_scheme(
        scheme_name, data_capacity=cfg.data_capacity, seed=cfg.seed
    )
    return scheme, record_workload(scheme, cfg.steps, cfg.seed)


def _cell_config(spec) -> ExploreConfig:
    p = spec.params
    return ExploreConfig(
        schemes=(spec.scheme,),
        steps=p["steps"],
        window=p.get("window", 4),
        budget=p.get("budget", 16),
        seed=spec.seed,
        shards=p.get("shards", 1),
        data_capacity=p["data_capacity"],
        torn_batches=p.get("torn", False),
    )


def _violation_entry(state, verdict, reproducer=None) -> dict:
    entry = {
        "state": state.describe(),
        "k": state.k,
        "dropped": list(state.dropped),
        "torn": state.torn,
        "verdict": verdict.to_dict(),
    }
    if reproducer is not None:
        entry["reproducer"] = reproducer.to_dict()
    return entry


def run_enumerate_cell(spec) -> dict:
    """Execute one ``enumerate`` shard; returns a JSON-able payload."""
    from repro.crashsim.enumerate import CrashEnumerator, applied_ops, build_state
    from repro.crashsim.minimize import from_state, minimize
    from repro.crashsim.oracle import RecoveryOracle

    cfg = _cell_config(spec)
    shard = spec.params["shard"]
    shards = spec.params["shards"]
    _, trace = record_trace(spec.scheme, cfg)
    enumerator = CrashEnumerator(
        trace,
        window=cfg.window,
        budget=cfg.budget,
        seed=cfg.seed,
        torn_batches=cfg.torn_batches,
    )
    oracle = RecoveryOracle(
        spec.scheme, data_capacity=cfg.data_capacity, seed=cfg.seed
    )
    hashes: set[str] = set()
    outcomes: Counter[str] = Counter()
    violations: list[dict] = []
    evaluated = 0
    minimized = 0
    for state in enumerator.states(points=lambda k: k % shards == shard):
        evaluated += 1
        hashes.add(state.image_hash())
        verdict = oracle.evaluate(state)
        outcomes[verdict.outcome] += 1
        if verdict.ok:
            continue
        reproducer = None
        if minimized < MAX_MINIMIZE:
            minimized += 1
            ops = applied_ops(trace, state)
            minimal = minimize(trace, ops, oracle, verdict.signature())
            final = oracle.evaluate(build_state(trace, minimal))
            reproducer = from_state(
                trace,
                minimal,
                final,
                description=(
                    f"{spec.scheme} crash state {state.describe()} minimized "
                    f"from {len(ops)} to {len(minimal)} persist micro-ops"
                ),
                data_capacity=cfg.data_capacity,
            )
        violations.append(_violation_entry(state, verdict, reproducer))
    return {
        "mode": "enumerate",
        "scheme": spec.scheme,
        "shard": shard,
        "shards": shards,
        "trace_units": len(trace.units),
        "trace_ops": trace.op_count,
        "evaluated": evaluated,
        "states": sorted(hashes),
        "outcomes": dict(sorted(outcomes.items())),
        "violations": violations,
    }


def _nested_schedule(site: str, depth: int) -> list[tuple[str, int]]:
    """Depth-1 crashes once at *site*; depth-2 adds a second crash at
    the next recovery site (cyclic), landing inside the *restarted* run."""
    sites = sorted(RECOVERY_SITES)
    schedule = [(site, 1)]
    if depth >= 2:
        schedule.append((sites[(sites.index(site) + 1) % len(sites)], 1))
    return schedule


def run_nested_cell(spec) -> dict:
    """Execute one nested crash-during-recovery schedule."""
    from repro.crashsim.enumerate import applied_ops, build_state
    from repro.crashsim.oracle import RecoveryOracle

    cfg = _cell_config(spec)
    site = spec.params["site"]
    depth = spec.params["depth"]
    _, trace = record_trace(spec.scheme, cfg)
    state = build_state(trace, applied_ops(trace, (len(trace.units), (), None)))
    oracle = RecoveryOracle(
        spec.scheme, data_capacity=cfg.data_capacity, seed=cfg.seed
    )
    schedule = _nested_schedule(site, depth)
    verdict = oracle.evaluate(state, schedule)
    return {
        "mode": "nested",
        "scheme": spec.scheme,
        "site": site,
        "depth": depth,
        "schedule": [[s, h] for s, h in schedule],
        "verdict": verdict.to_dict(),
    }


def execute_cell(spec) -> dict:
    """Worker entry point for ``crash``-kind specs (see ``runs.pool``)."""
    mode = spec.params.get("mode")
    if mode == "enumerate":
        return run_enumerate_cell(spec)
    if mode == "nested":
        return run_nested_cell(spec)
    raise ValueError(f"unknown crash cell mode {mode!r}")


def explore_specs(cfg: ExploreConfig) -> list:
    """The cell decomposition of one exploration, as run specs."""
    from repro.runs import RunSpec

    base = {
        "steps": cfg.steps,
        "window": cfg.window,
        "budget": cfg.budget,
        "data_capacity": cfg.data_capacity,
    }
    specs = []
    for scheme in cfg.schemes:
        for shard in range(cfg.shards):
            params = dict(
                base, mode="enumerate", shard=shard, shards=cfg.shards
            )
            if cfg.torn_batches:
                params["torn"] = True
            specs.append(
                RunSpec(kind="crash", scheme=scheme, seed=cfg.seed, params=params)
            )
        for site in sorted(RECOVERY_SITES):
            for depth in range(1, cfg.nested_depth + 1):
                specs.append(
                    RunSpec(
                        kind="crash",
                        scheme=scheme,
                        seed=cfg.seed,
                        params=dict(base, mode="nested", site=site, depth=depth),
                    )
                )
    return specs


def run_explore(
    cfg: ExploreConfig | None = None,
    jobs: int = 1,
    cache: bool = True,
    cache_root=None,
    timeout: float | None = None,
    progress=None,
):
    """Run one exploration; returns ``(summary, RunReport)``.

    The summary dict is pure content (no timings, no cache counters):
    the same exploration summarizes byte-identically whether it ran
    serially, pooled, or entirely from cache.  Orchestration accounting
    lives in the returned :class:`~repro.runs.orchestrate.RunReport`.
    """
    from repro.runs import orchestrate

    cfg = cfg or ExploreConfig()
    specs = explore_specs(cfg)
    report = orchestrate(
        "crash-explore",
        specs,
        jobs=jobs,
        use_cache=cache,
        cache_root=cache_root,
        timeout=timeout,
        progress=progress,
    )
    report.raise_on_failure()

    schemes: dict[str, dict] = {}
    for spec in specs:
        payload = report.payload(spec)
        entry = schemes.setdefault(
            spec.scheme,
            {
                "distinct_states": set(),
                "evaluated": 0,
                "trace_units": 0,
                "outcomes": Counter(),
                "violations": [],
                "nested": {},
            },
        )
        if payload["mode"] == "enumerate":
            entry["distinct_states"].update(payload["states"])
            entry["evaluated"] += payload["evaluated"]
            entry["trace_units"] = payload["trace_units"]
            entry["outcomes"].update(payload["outcomes"])
            entry["violations"].extend(payload["violations"])
        else:
            entry["nested"].setdefault(payload["site"], []).append(
                {
                    "depth": payload["depth"],
                    "schedule": payload["schedule"],
                    "outcome": payload["verdict"]["outcome"],
                    "fired_sites": payload["verdict"]["fired_sites"],
                    "problems": payload["verdict"]["problems"],
                }
            )

    summary = {"config": _config_dict(cfg), "schemes": {}}
    total_violations = 0
    for scheme in sorted(schemes):
        entry = schemes[scheme]
        violations = sorted(entry["violations"], key=lambda v: (v["k"], v["state"]))
        total_violations += len(violations)
        nested = {
            site: sorted(runs, key=lambda r: r["depth"])
            for site, runs in sorted(entry["nested"].items())
        }
        summary["schemes"][scheme] = {
            "trace_units": entry["trace_units"],
            "states_evaluated": entry["evaluated"],
            "distinct_states": len(entry["distinct_states"]),
            "outcomes": dict(sorted(entry["outcomes"].items())),
            "violations": violations,
            "nested": nested,
            "nested_ok": all(
                not r["problems"] for runs in nested.values() for r in runs
            ),
        }
    summary["total_violations"] = total_violations
    return summary, report


def _config_dict(cfg: ExploreConfig) -> dict:
    return {
        "schemes": sorted(cfg.schemes),
        "steps": cfg.steps,
        "window": cfg.window,
        "budget": cfg.budget,
        "seed": cfg.seed,
        "shards": cfg.shards,
        "data_capacity": cfg.data_capacity,
        "torn_batches": cfg.torn_batches,
        "nested_depth": cfg.nested_depth,
    }
