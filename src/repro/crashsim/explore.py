"""The explorer driver: fan crash-state enumeration through the orchestrator.

A full exploration of one scheme is embarrassingly parallel but far too
big for one cacheable unit, so it is cut into **cells**, each a
:class:`~repro.runs.spec.RunSpec` of the new ``crash`` kind:

* ``enumerate`` cells shard the trace's crash points by residue class
  (``k % shards == shard``).  Every worker regenerates the identical
  deterministic trace — specs stay tiny, exactly like the simulation
  specs that ship workload recipes instead of traces — expands its own
  points, runs the oracle on each state, and returns distinct
  image hashes, an outcome histogram and (minimized) violations;
* ``nested`` cells take the full-trace state and crash *recovery
  itself* at one scheduled recovery site (depth 1) or two in sequence
  (depth 2), exercising the restartable ``recovery_pending`` path.

Because cells run through :func:`repro.runs.orchestrate`, explorations
are content-cached (a warm re-run executes nothing), journaled,
resumable and parallel.  The merged summary is deliberately free of
timings and orchestration counts, so a serial run and a ``--jobs 2``
run of the same exploration produce byte-identical JSON.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.faults.plan import RECOVERY_SITES

#: Smoke-budget defaults: small enough for CI, large enough that every
#: scheme clears over 200 distinct states (measured floor at 96 steps:
#: 255, for the schemes whose epochs dedupe most aggressively).
DEFAULT_STEPS = 96
DEFAULT_SHARDS = 4
#: Violations minimized per cell; the rest ship unminimized (a cell
#: drowning in violations is already actionable from the first few).
MAX_MINIMIZE = 3


@dataclass(frozen=True)
class ExploreConfig:
    """Shape of one exploration."""

    schemes: tuple[str, ...] = ("ccnvm",)
    steps: int = DEFAULT_STEPS
    window: int = 4
    budget: int = 16
    seed: int = 7
    shards: int = DEFAULT_SHARDS
    data_capacity: int = 1 << 16
    #: Emit partially-applied batch states (protocol-violating; used to
    #: demonstrate the oracle catches ordering bugs).
    torn_batches: bool = False
    #: Nested crash-during-recovery schedules per recovery site (1..2).
    nested_depth: int = 2
    #: Recording workload profile ('hotset' or a Figure-5 SPEC surrogate).
    profile: str = "hotset"
    #: Route enumeration through the equivalence-class reducer
    #: (``crashsim.reduce``): exhaustive drop-sets, one oracle run per
    #: class, witness verdict attribution.
    reduce: bool = False
    #: Passing-class witnesses spot-checked against the representative.
    spot: int = 1


def record_trace(scheme_name: str, cfg: ExploreConfig):
    """Deterministically rebuild the persist trace for one scheme."""
    from repro.core.schemes import create_scheme
    from repro.crashsim.workload import record_workload

    scheme = create_scheme(
        scheme_name, data_capacity=cfg.data_capacity, seed=cfg.seed
    )
    return scheme, record_workload(
        scheme, cfg.steps, cfg.seed, profile=cfg.profile
    )


def _cell_config(spec) -> ExploreConfig:
    p = spec.params
    return ExploreConfig(
        schemes=(spec.scheme,),
        steps=p["steps"],
        window=p.get("window", 4),
        budget=p.get("budget", 16),
        seed=spec.seed,
        shards=p.get("shards", 1),
        data_capacity=p["data_capacity"],
        torn_batches=p.get("torn", False),
        profile=p.get("profile", "hotset"),
        reduce=p.get("reduce", False),
        spot=p.get("spot", 1),
    )


def _violation_entry(state, verdict, reproducer=None) -> dict:
    entry = {
        "state": state.describe(),
        "k": state.k,
        "dropped": list(state.dropped),
        "torn": state.torn,
        "verdict": verdict.to_dict(),
    }
    if reproducer is not None:
        entry["reproducer"] = reproducer.to_dict()
    return entry


def _minimize_violation(spec, cfg, trace, oracle, state, verdict):
    from repro.crashsim.enumerate import applied_ops, build_state
    from repro.crashsim.minimize import from_state, minimize

    ops = applied_ops(trace, state)
    minimal = minimize(trace, ops, oracle, verdict.signature())
    final = oracle.evaluate(build_state(trace, minimal))
    return from_state(
        trace,
        minimal,
        final,
        description=(
            f"{spec.scheme} crash state {state.describe()} minimized "
            f"from {len(ops)} to {len(minimal)} persist micro-ops"
        ),
        data_capacity=cfg.data_capacity,
    )


def run_enumerate_cell(spec) -> dict:
    """Execute one ``enumerate`` shard; returns a JSON-able payload.

    In *reduce* mode the shard routes every state through the
    equivalence-class machinery: drop-sets are expanded exhaustively
    (never sampled), one oracle run covers each class, violating classes
    fall back to per-witness evaluation and pinned-drop variants of
    violating states are materialized — violation findings stay
    byte-identical to a brute-force run's, verdict for verdict.
    """
    from repro.crashsim.enumerate import CrashEnumerator
    from repro.crashsim.oracle import ClassOracle, RecoveryOracle
    from repro.crashsim.reduce import (
        CrashStateReducer,
        ReducedEnumerator,
        materialize,
        pin_variants,
    )

    cfg = _cell_config(spec)
    shard = spec.params["shard"]
    shards = spec.params["shards"]
    _, trace = record_trace(spec.scheme, cfg)
    oracle = RecoveryOracle(
        spec.scheme, data_capacity=cfg.data_capacity, seed=cfg.seed
    )
    if cfg.reduce:
        reducer = CrashStateReducer(
            trace, spec.scheme, cfg.data_capacity, cfg.seed
        )
        enumerator = ReducedEnumerator(
            trace,
            reducer,
            window=cfg.window,
            seed=cfg.seed,
            torn_batches=cfg.torn_batches,
        )
        class_oracle = ClassOracle(oracle, reducer, spot=cfg.spot)
    else:
        enumerator = CrashEnumerator(
            trace,
            window=cfg.window,
            budget=cfg.budget,
            seed=cfg.seed,
            torn_batches=cfg.torn_batches,
        )
        class_oracle = None
    hashes: set[str] = set()
    outcomes: Counter[str] = Counter()
    violations: list[dict] = []
    evaluated = 0
    minimized = 0
    for state in enumerator.states(points=lambda k: k % shards == shard):
        evaluated += 1
        hashes.add(state.image_hash())
        if class_oracle is None:
            weight = 1
            verdict = oracle.evaluate(state)
        else:
            weight = 1 if state.torn is not None else enumerator.weight(state.k)
            verdict, _role = class_oracle.submit(state, weight=weight)
        if verdict.ok:
            outcomes[verdict.outcome] += weight
            continue
        outcomes[verdict.outcome] += 1
        reproducer = None
        if minimized < MAX_MINIMIZE:
            minimized += 1
            reproducer = _minimize_violation(
                spec, cfg, trace, oracle, state, verdict
            )
        violations.append(_violation_entry(state, verdict, reproducer))
        if class_oracle is not None and state.torn is None:
            # A violating state forfeits its pin weight: every pinned
            # variant it stood for is materialized and judged for real.
            for vdrop in pin_variants(state, enumerator.pins.get(state.k, ())):
                vstate = materialize(trace, state.k, vdrop)
                hashes.add(vstate.image_hash())
                vverdict = class_oracle.evaluate_raw(vstate)
                outcomes[vverdict.outcome] += 1
                if not vverdict.ok:
                    violations.append(_violation_entry(vstate, vverdict))
    payload = {
        "mode": "enumerate",
        "scheme": spec.scheme,
        "profile": cfg.profile,
        "shard": shard,
        "shards": shards,
        "trace_units": len(trace.units),
        "trace_ops": trace.op_count,
        "evaluated": evaluated,
        "states": sorted(hashes),
        "outcomes": dict(sorted(outcomes.items())),
        "violations": violations,
        "sampling": dict(enumerator.sample_stats),
    }
    if class_oracle is not None:
        payload["reduce"] = True
        payload["covered"] = sum(outcomes.values())
        payload["oracle_calls"] = class_oracle.calls
        payload["classes"] = class_oracle.class_table()
        payload["class_mismatches"] = list(class_oracle.mismatches)
    return payload


def _nested_schedule(site: str, depth: int) -> list[tuple[str, int]]:
    """Depth-1 crashes once at *site*; depth-2 adds a second crash at
    the next recovery site (cyclic), landing inside the *restarted* run."""
    sites = sorted(RECOVERY_SITES)
    schedule = [(site, 1)]
    if depth >= 2:
        schedule.append((sites[(sites.index(site) + 1) % len(sites)], 1))
    return schedule


def run_nested_cell(spec) -> dict:
    """Execute one nested crash-during-recovery schedule."""
    from repro.crashsim.enumerate import applied_ops, build_state
    from repro.crashsim.oracle import RecoveryOracle

    cfg = _cell_config(spec)
    site = spec.params["site"]
    depth = spec.params["depth"]
    _, trace = record_trace(spec.scheme, cfg)
    state = build_state(trace, applied_ops(trace, (len(trace.units), (), None)))
    oracle = RecoveryOracle(
        spec.scheme, data_capacity=cfg.data_capacity, seed=cfg.seed
    )
    schedule = _nested_schedule(site, depth)
    verdict = oracle.evaluate(state, schedule)
    return {
        "mode": "nested",
        "scheme": spec.scheme,
        "site": site,
        "depth": depth,
        "schedule": [[s, h] for s, h in schedule],
        "verdict": verdict.to_dict(),
    }


def execute_cell(spec) -> dict:
    """Worker entry point for ``crash``-kind specs (see ``runs.pool``)."""
    mode = spec.params.get("mode")
    if mode == "enumerate":
        return run_enumerate_cell(spec)
    if mode == "nested":
        return run_nested_cell(spec)
    raise ValueError(f"unknown crash cell mode {mode!r}")


def explore_specs(cfg: ExploreConfig) -> list:
    """The cell decomposition of one exploration, as run specs."""
    from repro.runs import RunSpec

    base = {
        "steps": cfg.steps,
        "window": cfg.window,
        "budget": cfg.budget,
        "data_capacity": cfg.data_capacity,
    }
    if cfg.profile != "hotset":
        base["profile"] = cfg.profile
    specs = []
    for scheme in cfg.schemes:
        for shard in range(cfg.shards):
            params = dict(
                base, mode="enumerate", shard=shard, shards=cfg.shards
            )
            if cfg.torn_batches:
                params["torn"] = True
            if cfg.reduce:
                params["reduce"] = True
                params["spot"] = cfg.spot
            specs.append(
                RunSpec(kind="crash", scheme=scheme, seed=cfg.seed, params=params)
            )
        for site in sorted(RECOVERY_SITES):
            for depth in range(1, cfg.nested_depth + 1):
                specs.append(
                    RunSpec(
                        kind="crash",
                        scheme=scheme,
                        seed=cfg.seed,
                        params=dict(base, mode="nested", site=site, depth=depth),
                    )
                )
    return specs


def run_explore(
    cfg: ExploreConfig | None = None,
    jobs: int = 1,
    cache: bool = True,
    cache_root=None,
    timeout: float | None = None,
    progress=None,
):
    """Run one exploration; returns ``(summary, RunReport)``.

    The summary dict is pure content (no timings, no cache counters):
    the same exploration summarizes byte-identically whether it ran
    serially, pooled, or entirely from cache.  Orchestration accounting
    lives in the returned :class:`~repro.runs.orchestrate.RunReport`.
    """
    from repro.runs import orchestrate

    cfg = cfg or ExploreConfig()
    specs = explore_specs(cfg)
    report = orchestrate(
        "crash-explore",
        specs,
        jobs=jobs,
        use_cache=cache,
        cache_root=cache_root,
        timeout=timeout,
        progress=progress,
    )
    report.raise_on_failure()

    schemes: dict[str, dict] = {}
    for spec in specs:
        payload = report.payload(spec)
        entry = schemes.setdefault(
            spec.scheme,
            {
                "distinct_states": set(),
                "evaluated": 0,
                "trace_units": 0,
                "outcomes": Counter(),
                "violations": [],
                "nested": {},
                "sampling": Counter(),
                "covered": 0,
                "oracle_calls": 0,
                "class_tables": [],
                "class_mismatches": [],
            },
        )
        if payload["mode"] == "enumerate":
            entry["distinct_states"].update(payload["states"])
            entry["evaluated"] += payload["evaluated"]
            entry["trace_units"] = payload["trace_units"]
            entry["outcomes"].update(payload["outcomes"])
            entry["violations"].extend(payload["violations"])
            entry["sampling"].update(payload.get("sampling", {}))
            if payload.get("reduce"):
                entry["covered"] += payload["covered"]
                entry["oracle_calls"] += payload["oracle_calls"]
                entry["class_tables"].append(payload["classes"])
                entry["class_mismatches"].extend(payload["class_mismatches"])
        else:
            entry["nested"].setdefault(payload["site"], []).append(
                {
                    "depth": payload["depth"],
                    "schedule": payload["schedule"],
                    "outcome": payload["verdict"]["outcome"],
                    "fired_sites": payload["verdict"]["fired_sites"],
                    "problems": payload["verdict"]["problems"],
                }
            )

    summary = {"config": _config_dict(cfg), "schemes": {}}
    total_violations = 0
    for scheme in sorted(schemes):
        entry = schemes[scheme]
        violations = sorted(entry["violations"], key=lambda v: (v["k"], v["state"]))
        total_violations += len(violations)
        nested = {
            site: sorted(runs, key=lambda r: r["depth"])
            for site, runs in sorted(entry["nested"].items())
        }
        sampling = {
            key: int(entry["sampling"].get(key, 0))
            for key in ("points", "requested", "sampled")
        }
        summary["schemes"][scheme] = {
            "trace_units": entry["trace_units"],
            "states_evaluated": entry["evaluated"],
            "distinct_states": len(entry["distinct_states"]),
            "outcomes": dict(sorted(entry["outcomes"].items())),
            "violations": violations,
            "nested": nested,
            "nested_ok": all(
                not r["problems"] for runs in nested.values() for r in runs
            ),
            "sampling": sampling,
            # Exhaustive means no crash point ever fell back to sampled
            # drop-sets; when False the run is a spot check, not a proof.
            "coverage_exhaustive": sampling["points"] == 0,
        }
        if cfg.reduce:
            table, merge_mismatches = _merge_class_tables(entry["class_tables"])
            mismatches = entry["class_mismatches"] + merge_mismatches
            summary["schemes"][scheme].update(
                {
                    "states_covered": entry["covered"],
                    "oracle_calls": entry["oracle_calls"],
                    "classes": len(table),
                    "reduction_ratio": (
                        round(entry["covered"] / entry["oracle_calls"], 3)
                        if entry["oracle_calls"]
                        else None
                    ),
                    "class_table": table,
                    "class_mismatches": mismatches,
                }
            )
    summary["total_violations"] = total_violations
    return summary, report


def _config_dict(cfg: ExploreConfig) -> dict:
    return {
        "schemes": sorted(cfg.schemes),
        "steps": cfg.steps,
        "window": cfg.window,
        "budget": cfg.budget,
        "seed": cfg.seed,
        "shards": cfg.shards,
        "data_capacity": cfg.data_capacity,
        "torn_batches": cfg.torn_batches,
        "nested_depth": cfg.nested_depth,
        "profile": cfg.profile,
        "reduce": cfg.reduce,
        "spot": cfg.spot,
    }


# ---------------------------------------------------------------------------
# The standing campaign: scheme x workload exhaustive exploration
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CrashCampaignConfig:
    """One exhaustive crash campaign: every scheme x every workload.

    Each grid cell runs the *reduced* enumerator (exhaustive drop-sets,
    class-representative verification), sharded per crash point through
    the orchestrator — so a campaign is content-cached by spec hash,
    journal-resumable, and one failing shard never poisons the rest of
    the grid.
    """

    schemes: tuple[str, ...] = ()
    #: Workload profiles; empty = the hot set plus every Figure-5
    #: surrogate (see :func:`repro.crashsim.workload.workload_profiles`).
    profiles: tuple[str, ...] = ()
    steps: int = DEFAULT_STEPS
    window: int = 4
    seed: int = 7
    shards: int = DEFAULT_SHARDS
    data_capacity: int = 1 << 16
    spot: int = 1

    def resolved_schemes(self) -> tuple[str, ...]:
        from repro.crashsim.oracle import ALLOWED_OUTCOMES

        return self.schemes or tuple(sorted(ALLOWED_OUTCOMES))

    def resolved_profiles(self) -> tuple[str, ...]:
        from repro.crashsim.workload import workload_profiles

        return self.profiles or tuple(workload_profiles())


def campaign_specs(cfg: CrashCampaignConfig) -> list:
    """The campaign's cell decomposition: reduce-mode enumerate shards."""
    from repro.runs import RunSpec

    specs = []
    for scheme in cfg.resolved_schemes():
        for profile in cfg.resolved_profiles():
            for shard in range(cfg.shards):
                params = {
                    "steps": cfg.steps,
                    "window": cfg.window,
                    "budget": 1,
                    "data_capacity": cfg.data_capacity,
                    "mode": "enumerate",
                    "shard": shard,
                    "shards": cfg.shards,
                    "reduce": True,
                    "spot": cfg.spot,
                }
                if profile != "hotset":
                    params["profile"] = profile
                specs.append(
                    RunSpec(
                        kind="crash", scheme=scheme, seed=cfg.seed, params=params
                    )
                )
    return specs


def _merge_class_tables(tables: list[list[dict]]) -> tuple[list[dict], list[dict]]:
    """Merge per-shard class tables by fingerprint.

    Witness/weight/evaluation counts sum; the representative with the
    smallest ``(k, describe)`` wins, deterministically.  Shards that
    disagree on a fingerprint's outcome expose a reducer bug and are
    returned as mismatches rather than silently merged.
    """
    merged: dict[str, dict] = {}
    mismatches: list[dict] = []
    for table in tables:
        for record in table:
            fp = record["fingerprint"]
            seen = merged.get(fp)
            if seen is None:
                merged[fp] = dict(record)
                continue
            if (record["outcome"], record["ok"]) != (seen["outcome"], seen["ok"]):
                mismatches.append(
                    {
                        "fingerprint": fp,
                        "outcomes": sorted({record["outcome"], seen["outcome"]}),
                    }
                )
            for key in ("witnesses", "weight", "evaluated", "spot_checked"):
                seen[key] += record[key]
            if (record["k"], record["representative"]) < (
                seen["k"],
                seen["representative"],
            ):
                seen["k"] = record["k"]
                seen["representative"] = record["representative"]
    table = [merged[fp] for fp in sorted(merged)]
    return table, mismatches


def run_campaign(
    cfg: CrashCampaignConfig | None = None,
    jobs: int = 1,
    cache: bool = True,
    cache_root=None,
    timeout: float | None = None,
    progress=None,
):
    """Run one campaign; returns ``(summary, RunReport)``.

    Like :func:`run_explore` the summary is pure content — a serial run,
    a pooled run and a warm-cache run of the same campaign summarize
    byte-identically.  Failed shards are isolated: their grid cells are
    reported under ``failures`` while every healthy cell still merges.
    """
    from repro.runs import orchestrate

    cfg = cfg or CrashCampaignConfig()
    specs = campaign_specs(cfg)
    report = orchestrate(
        "crash-campaign",
        specs,
        jobs=jobs,
        use_cache=cache,
        cache_root=cache_root,
        timeout=timeout,
        progress=progress,
    )

    grid: dict[str, dict[str, dict]] = {}
    failures: list[dict] = []
    for spec in specs:
        profile = spec.params.get("profile", "hotset")
        outcome = report.outcomes[spec.spec_hash()]
        if not outcome.ok:
            failures.append(
                {
                    "scheme": spec.scheme,
                    "profile": profile,
                    "shard": spec.params["shard"],
                    "error": outcome.error or outcome.status,
                }
            )
            continue
        payload = outcome.payload
        cell = grid.setdefault(spec.scheme, {}).setdefault(
            profile,
            {
                "trace_units": 0,
                "evaluated": 0,
                "covered": 0,
                "oracle_calls": 0,
                "distinct_states": set(),
                "outcomes": Counter(),
                "violations": [],
                "class_tables": [],
                "mismatches": [],
                "sampling_points": 0,
            },
        )
        cell["trace_units"] = payload["trace_units"]
        cell["evaluated"] += payload["evaluated"]
        cell["covered"] += payload["covered"]
        cell["oracle_calls"] += payload["oracle_calls"]
        cell["distinct_states"].update(payload["states"])
        cell["outcomes"].update(payload["outcomes"])
        cell["violations"].extend(payload["violations"])
        cell["class_tables"].append(payload["classes"])
        cell["mismatches"].extend(payload["class_mismatches"])
        cell["sampling_points"] += payload["sampling"]["points"]

    summary = {
        "config": {
            "schemes": list(cfg.resolved_schemes()),
            "profiles": list(cfg.resolved_profiles()),
            "steps": cfg.steps,
            "window": cfg.window,
            "seed": cfg.seed,
            "shards": cfg.shards,
            "data_capacity": cfg.data_capacity,
            "spot": cfg.spot,
        },
        "grid": {},
        "failures": sorted(
            failures, key=lambda f: (f["scheme"], f["profile"], f["shard"])
        ),
    }
    totals = {
        "cells": 0,
        "evaluated": 0,
        "covered": 0,
        "oracle_calls": 0,
        "classes": 0,
        "violations": 0,
        "class_mismatches": 0,
        "sampling_fallbacks": 0,
    }
    for scheme in sorted(grid):
        for profile in sorted(grid[scheme]):
            cell = grid[scheme][profile]
            table, merge_mismatches = _merge_class_tables(cell["class_tables"])
            mismatches = cell["mismatches"] + merge_mismatches
            violations = sorted(
                cell["violations"], key=lambda v: (v["k"], v["state"])
            )
            totals["cells"] += 1
            totals["evaluated"] += cell["evaluated"]
            totals["covered"] += cell["covered"]
            totals["oracle_calls"] += cell["oracle_calls"]
            totals["classes"] += len(table)
            totals["violations"] += len(violations)
            totals["class_mismatches"] += len(mismatches)
            totals["sampling_fallbacks"] += cell["sampling_points"]
            summary["grid"].setdefault(scheme, {})[profile] = {
                "trace_units": cell["trace_units"],
                "states_materialized": cell["evaluated"],
                "states_covered": cell["covered"],
                "distinct_states": len(cell["distinct_states"]),
                "oracle_calls": cell["oracle_calls"],
                "classes": len(table),
                "reduction_ratio": (
                    round(cell["covered"] / cell["oracle_calls"], 3)
                    if cell["oracle_calls"]
                    else None
                ),
                "outcomes": dict(sorted(cell["outcomes"].items())),
                "violations": violations,
                "class_table": table,
                "class_mismatches": mismatches,
                "sampling_fallbacks": cell["sampling_points"],
            }
    totals["reduction_ratio"] = (
        round(totals["covered"] / totals["oracle_calls"], 3)
        if totals["oracle_calls"]
        else None
    )
    summary["totals"] = totals
    return summary, report
