"""Failing-trace minimization: delta-debug to a minimal reproducer.

A violating crash state is, to a human, a pile of hundreds of persist
micro-ops.  :func:`minimize` runs the classic ddmin algorithm over the
state's *applied op sequence*: repeatedly drop chunks (halving the
granularity on failure to reduce) while the oracle keeps reporting the
same failure **signature** — the set of problem categories of the
original verdict must stay a subset of the candidate's.  The result is
a 1-minimal op list (removing any single remaining op loses the
failure), which for real ordering bugs lands at a handful of ops.

The minimized list ships as a replayable :class:`Reproducer` JSON
artifact: initial image + registers + ops + schedule, self-contained
enough that :func:`replay` reproduces the verdict on a fresh oracle —
the regression-fixture format committed under ``tests/fixtures/``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crashsim.enumerate import build_state
from repro.crashsim.oracle import RecoveryOracle, Verdict
from repro.crashsim.trace import (
    PersistOp,
    PersistTrace,
    registers_from_dict,
    registers_to_dict,
)

FORMAT = "ccnvm-crash-reproducer-v1"


def minimize(
    trace: PersistTrace,
    ops: list[PersistOp],
    oracle: RecoveryOracle,
    signature: frozenset,
    schedule=None,
    max_evals: int = 2000,
) -> list[PersistOp]:
    """ddmin *ops* down to a 1-minimal list preserving *signature*."""

    evals = 0

    def fails(candidate: list[PersistOp]) -> bool:
        nonlocal evals
        if evals >= max_evals:
            return False
        evals += 1
        verdict = oracle.evaluate(build_state(trace, candidate), schedule)
        return signature <= verdict.signature()

    if not fails(ops):
        raise ValueError("the original op list does not reproduce the failure")

    n = 2
    while len(ops) >= 2:
        size = max(1, len(ops) // n)
        chunks = [ops[i:i + size] for i in range(0, len(ops), size)]
        reduced = False
        for i in range(len(chunks)):
            complement = [op for j, c in enumerate(chunks) if j != i for op in c]
            if complement and fails(complement):
                ops = complement
                n = max(n - 1, 2)
                reduced = True
                break
        if not reduced:
            if n >= len(ops):
                break
            n = min(len(ops), n * 2)
    return ops


@dataclass
class Reproducer:
    """A self-contained, replayable minimal failing trace."""

    scheme: str
    seed: int
    data_capacity: int
    description: str
    ops: list[PersistOp]
    initial_lines: dict[int, bytes]
    initial_registers: dict
    #: op seq -> expected plaintext (only seqs present in ``ops``).
    annotations: dict[int, bytes]
    schedule: list = field(default_factory=list)
    #: The original verdict this artifact reproduces.
    outcome: str = "FAILED"
    problems: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "format": FORMAT,
            "scheme": self.scheme,
            "seed": self.seed,
            "data_capacity": self.data_capacity,
            "description": self.description,
            "ops": [op.to_dict() for op in self.ops],
            "initial_lines": {
                f"{addr:#x}": data.hex()
                for addr, data in sorted(self.initial_lines.items())
            },
            "initial_registers": registers_to_dict(self.initial_registers),
            "annotations": {
                str(seq): data.hex() for seq, data in sorted(self.annotations.items())
            },
            "schedule": [[site, hit] for site, hit in self.schedule],
            "outcome": self.outcome,
            "problems": list(self.problems),
        }

    @staticmethod
    def from_dict(d: dict) -> "Reproducer":
        if d.get("format") != FORMAT:
            raise ValueError(f"not a {FORMAT} artifact: {d.get('format')!r}")
        return Reproducer(
            scheme=d["scheme"],
            seed=d["seed"],
            data_capacity=d["data_capacity"],
            description=d["description"],
            ops=[PersistOp.from_dict(o) for o in d["ops"]],
            initial_lines={
                int(addr, 16): bytes.fromhex(data)
                for addr, data in d["initial_lines"].items()
            },
            initial_registers=registers_from_dict(d["initial_registers"]),
            annotations={
                int(seq): bytes.fromhex(data)
                for seq, data in d["annotations"].items()
            },
            schedule=[(site, hit) for site, hit in d["schedule"]],
            outcome=d["outcome"],
            problems=list(d["problems"]),
        )


def from_state(
    trace: PersistTrace,
    ops: list[PersistOp],
    verdict: Verdict,
    description: str,
    data_capacity: int,
    schedule=None,
) -> Reproducer:
    """Package a (possibly minimized) op list as a reproducer."""
    seqs = {op.seq for op in ops}
    return Reproducer(
        scheme=trace.scheme,
        seed=trace.seed,
        data_capacity=data_capacity,
        description=description,
        ops=list(ops),
        initial_lines=dict(trace.initial_lines),
        initial_registers=dict(
            trace.initial_registers,
            counter_log=dict(trace.initial_registers["counter_log"]),
        ),
        annotations={
            seq: data for seq, data in trace.annotations.items() if seq in seqs
        },
        schedule=list(schedule or ()),
        outcome=verdict.outcome,
        problems=list(verdict.problems),
    )


def rebuild_trace(repro: Reproducer) -> PersistTrace:
    """The (unit-less) trace context a reproducer's ops replay against."""
    return PersistTrace(
        scheme=repro.scheme,
        seed=repro.seed,
        initial_lines=dict(repro.initial_lines),
        initial_registers=repro.initial_registers,
        annotations=dict(repro.annotations),
    )


def replay(repro: Reproducer, oracle: RecoveryOracle | None = None) -> Verdict:
    """Re-run a reproducer on a fresh oracle; returns the new verdict."""
    trace = rebuild_trace(repro)
    oracle = oracle or RecoveryOracle(
        repro.scheme, data_capacity=repro.data_capacity, seed=repro.seed
    )
    state = build_state(trace, repro.ops)
    return oracle.evaluate(state, repro.schedule or None)
