"""The invariant oracle: recovery must hold its contract on every state.

For each crash state the oracle rewinds one long-lived scheme instance
(crash → restore NVM image → restore TCB registers), runs the design's
own :class:`~repro.core.recovery.RecoveryManager`, classifies the
outcome with the fault campaign's taxonomy, and checks the scheme-aware
invariants:

* the outcome lies in the design's *allowed* set — cc-NVM variants must
  come back ``RECOVERED`` from every reachable state (the paper's
  claim); SC / Osiris Plus may honestly ``FALSE_ALARM`` (their
  freshness check cannot tell a crash window from a replay); w/o CC may
  ``DEGRADED`` (no staleness bound) — anything else is a violation;
* both TCB roots agree and the rebuilt tree matches them;
* ``recovery_pending`` is cleared — recovery is restartable, never
  stuck;
* retry totals stay within N × blocks;
* **exact data contents**: the enumerator knows precisely which
  annotated write-backs survived, so every hot block must read back the
  plaintext the surviving stream implies — byte for byte, with
  ``IntegrityError`` accepted only for blocks recovery itself reported
  unrecoverable;
* the machine stays usable (a fresh write-back on an untouched page
  round-trips).

With a *schedule* of (site, hit) pairs the oracle also drives nested
crashes: recovery is crashed at each scheduled point via
:meth:`~repro.faults.injector.FaultInjector.arm_schedule` and restarted,
exercising the persistent ``recovery_pending`` resume path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.schemes import create_scheme
from repro.crashsim.enumerate import CrashState
from repro.crashsim.workload import PROBE_ADDR, payload
from repro.faults.injector import FaultInjector
from repro.faults.plan import PowerFailure
from repro.metadata.metacache import IntegrityError

#: What each design's documented contract permits on a pure crash.
ALLOWED_OUTCOMES: dict[str, frozenset[str]] = {
    "ccnvm": frozenset({"RECOVERED"}),
    "ccnvm_no_ds": frozenset({"RECOVERED"}),
    "ccnvm_locate": frozenset({"RECOVERED"}),
    "sc": frozenset({"RECOVERED", "FALSE_ALARM"}),
    "osiris_plus": frozenset({"RECOVERED", "FALSE_ALARM"}),
    "no_cc": frozenset({"RECOVERED", "DEGRADED"}),
}


def classify(report) -> str:
    """The campaign's outcome taxonomy (see ``repro.faults.campaign``)."""
    if any(f.kind == "tree_tampering" for f in report.findings):
        return "FAILED"
    if report.unrecoverable_blocks:
        return "DEGRADED"
    if report.potential_replay_detected:
        return "FALSE_ALARM"
    return "RECOVERED" if report.success else "FAILED"


@dataclass
class Verdict:
    """One oracle evaluation: outcome, problems, recovery accounting."""

    outcome: str
    allowed: tuple[str, ...]
    #: ``category: detail`` strings; empty means the state passed.
    problems: list[str] = field(default_factory=list)
    fired_sites: tuple[str, ...] = ()
    total_retries: int = 0
    unrecoverable: int = 0
    notes: tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        return not self.problems

    def signature(self) -> frozenset[str]:
        """The failure's stable identity: the set of problem categories.

        A minimized reproducer must preserve (at least) this set.
        """
        return frozenset(p.split(":", 1)[0] for p in self.problems)

    def to_dict(self) -> dict:
        return {
            "outcome": self.outcome,
            "allowed": sorted(self.allowed),
            "problems": list(self.problems),
            "fired_sites": list(self.fired_sites),
            "total_retries": self.total_retries,
            "unrecoverable": self.unrecoverable,
            "notes": list(self.notes),
        }


@dataclass
class CrashClass:
    """One equivalence class of crash states (see ``crashsim.reduce``)."""

    fingerprint: str
    #: ``describe()`` of the first member seen — the evaluated one.
    representative: str
    k: int
    verdict: "Verdict"
    #: Materialized states that mapped to this class.
    witnesses: int = 0
    #: Brute-force states covered (witnesses plus their pinned variants).
    weight: int = 0
    #: Oracle invocations attributed to this class.
    evaluated: int = 0
    spot_checked: int = 0

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "representative": self.representative,
            "k": self.k,
            "outcome": self.verdict.outcome,
            "ok": self.verdict.ok,
            "witnesses": self.witnesses,
            "weight": self.weight,
            "evaluated": self.evaluated,
            "spot_checked": self.spot_checked,
        }


class ClassOracle:
    """Class-aware front end to a :class:`RecoveryOracle`.

    The first state of each fingerprint is evaluated for real and
    becomes the class *representative*; later witnesses inherit its
    verdict.  Two guard rails keep the reduction honest:

    * a **violating** class is never trusted — every witness is
      evaluated individually (role ``expanded``), so violation findings
      are byte-identical to a brute-force run;
    * the first ``spot`` witnesses of each *passing* class are evaluated
      anyway (role ``spot``); an (outcome, signature) mismatch against
      the representative is a reducer bug and is recorded loudly in
      :attr:`mismatches`.
    """

    def __init__(self, oracle: "RecoveryOracle", reducer, spot: int = 1) -> None:
        self.oracle = oracle
        self.reducer = reducer
        self.spot = spot
        self.calls = 0
        self.classes: dict[str, CrashClass] = {}
        self.mismatches: list[dict] = []

    def evaluate_raw(self, state: CrashState, schedule=None) -> Verdict:
        """A counted pass-through evaluation (pin-variant expansion)."""
        self.calls += 1
        return self.oracle.evaluate(state, schedule)

    def submit(self, state: CrashState, weight: int = 1) -> tuple[Verdict, str]:
        """Attribute *state* to its class; returns ``(verdict, role)``.

        *weight* is the number of brute-force states this materialized
        state stands for (1 plus its pinned-drop variants).
        """
        fingerprint = self.reducer.fingerprint(state)
        cls = self.classes.get(fingerprint)
        if cls is None:
            verdict = self.evaluate_raw(state)
            cls = CrashClass(
                fingerprint,
                state.describe(),
                state.k,
                verdict,
                witnesses=1,
                weight=weight,
                evaluated=1,
            )
            self.classes[fingerprint] = cls
            return verdict, "representative"
        cls.witnesses += 1
        cls.weight += weight
        if not cls.verdict.ok:
            verdict = self.evaluate_raw(state)
            cls.evaluated += 1
            return verdict, "expanded"
        if cls.spot_checked < self.spot:
            verdict = self.evaluate_raw(state)
            cls.evaluated += 1
            cls.spot_checked += 1
            if (verdict.outcome, verdict.signature()) != (
                cls.verdict.outcome,
                cls.verdict.signature(),
            ):
                self.mismatches.append(
                    {
                        "fingerprint": fingerprint,
                        "representative": cls.representative,
                        "witness": state.describe(),
                        "representative_outcome": cls.verdict.outcome,
                        "witness_outcome": verdict.outcome,
                    }
                )
            return verdict, "spot"
        return cls.verdict, "witness"

    def class_table(self) -> list[dict]:
        """JSON-able class records, sorted by fingerprint."""
        return [
            self.classes[fp].to_dict() for fp in sorted(self.classes)
        ]


class RecoveryOracle:
    """Evaluates crash states against one scheme's recovery contract.

    One scheme instance is built per oracle and rewound per state
    (``crash()`` + image/register restore) — construction dominates the
    cost of a single recovery by an order of magnitude.
    """

    def __init__(self, scheme_name: str, data_capacity: int, seed: int) -> None:
        if scheme_name not in ALLOWED_OUTCOMES:
            raise ValueError(f"no recovery contract known for {scheme_name!r}")
        self.scheme_name = scheme_name
        self.seed = seed
        self.scheme = create_scheme(scheme_name, data_capacity=data_capacity, seed=seed)
        self.injector = FaultInjector()
        self.injector.attach(self.scheme)
        self._now = 10_000_000

    # -- one state -------------------------------------------------------------

    def evaluate(self, state: CrashState, schedule=None) -> Verdict:
        """Rewind to *state*, run recovery (crashing it per *schedule*),
        and judge the result."""
        scheme = self.scheme
        self.injector.disarm()
        scheme.crash()
        scheme.nvm.restore(state.lines)
        scheme.tcb.restore_registers(state.registers)

        fired: list[str] = []
        schedule = list(schedule or ())
        if schedule:
            self.injector.arm_schedule(schedule)
        report = None
        for _ in range(len(schedule) + 2):
            try:
                report = scheme.recover()
                break
            except PowerFailure as failure:
                fired.append(failure.site)
                scheme.crash()
        allowed = ALLOWED_OUTCOMES[self.scheme_name]
        if report is None:
            return Verdict(
                "FAILED",
                tuple(sorted(allowed)),
                [f"nested: recovery never completed under schedule {schedule}"],
                tuple(fired),
            )

        problems: list[str] = []
        if schedule and len(fired) != len(schedule):
            problems.append(
                f"nested: only {len(fired)}/{len(schedule)} scheduled "
                f"crashes fired (sites hit: {fired})"
            )

        outcome = classify(report)
        if outcome not in allowed:
            problems.append(
                f"outcome: {outcome} not allowed for {self.scheme_name} "
                f"(allowed: {sorted(allowed)})"
            )
        self._structural_checks(report, problems)
        self._data_checks(state, report, problems)
        self._probe_check(problems)
        if problems and outcome in allowed:
            outcome = "FAILED"
        return Verdict(
            outcome,
            tuple(sorted(allowed)),
            problems,
            tuple(fired),
            total_retries=report.total_retries,
            unrecoverable=len(report.unrecoverable_blocks),
            notes=tuple(report.notes),
        )

    # -- invariant layers ----------------------------------------------------------

    def _structural_checks(self, report, problems: list[str]) -> None:
        scheme = self.scheme
        if scheme.tcb.root_old != scheme.tcb.root_new:
            problems.append("roots: TCB roots disagree after recovery")
        if not scheme.merkle.verify_consistent(scheme.tcb.root_old):
            problems.append("tree: rebuilt tree does not match the TCB root")
        if scheme.tcb.recovery_pending:
            problems.append("restart: recovery_pending still set after recovery")
        limit = scheme.config.epoch.update_limit
        blocks = max(1, len(scheme.nvm.touched_lines()))
        if report.total_retries > limit * blocks:
            problems.append(
                f"retries: total {report.total_retries} exceeds "
                f"N x lines = {limit * blocks}"
            )

    def _data_checks(self, state: CrashState, report, problems: list[str]) -> None:
        scheme = self.scheme
        unrecoverable = set(report.unrecoverable_blocks)
        now = self._advance()
        for addr in sorted(state.expected):
            want = state.expected[addr]
            try:
                got, _ = scheme.read(now, addr)
            except IntegrityError:
                if addr not in unrecoverable:
                    problems.append(
                        f"data: block {addr:#x} unreadable but not reported "
                        "unrecoverable"
                    )
                continue
            if addr in unrecoverable:
                problems.append(
                    f"data: unrecoverable block {addr:#x} read back cleanly"
                )
            elif got != want:
                problems.append(
                    f"data: block {addr:#x} read back a value the surviving "
                    "write stream never implied"
                )

    def _probe_check(self, problems: list[str]) -> None:
        scheme = self.scheme
        now = self._advance()
        probe = payload(self.seed, 1_000_000)
        try:
            scheme.writeback(now, PROBE_ADDR, probe)
            got, _ = scheme.read(self._advance(), PROBE_ADDR)
        except Exception as exc:  # any crash here is itself the finding
            problems.append(f"probe: post-recovery write-back raised {exc!r}")
            return
        if got != probe:
            problems.append("probe: post-recovery write-back did not round-trip")

    def _advance(self) -> int:
        self._now += 1_000_000
        return self._now
