"""Equivalence-class reduction of ADR crash states.

Brute-force enumeration treats every (prefix, drop-set) pair as its own
state, but recovery cannot tell most of them apart: it observes only the
durable lines its steps actually read, the TCB registers its policy
consults, and *relative* counter positions (how far a stored counter
lags the write it authenticates — never the absolute epoch).  Following
Silhouette's crash-plan pruning idea, this module partitions candidate
crash states by a **recovery-relevant fingerprint** and verifies one
representative per class, attributing the verdict to every witness.

Two fingerprint layers, chosen per state:

* the **mechanism fingerprint** — a canonical tuple of everything the
  scheme's 4-step recovery and the oracle's checks can observe:
  per-touched-leaf *relative* counter features (stored-vs-survivor minor
  distance, major rolls, recoverability under the retry bound), which
  TCB root the stored tree matches (evaluated concretely on a scratch
  scheme, cached), the rebuilt-root freshness bit for ``root_new``
  designs (via an emulation of ``_recover_counters``'s counter
  adjustment), the ``Nwb``/retry balance for ``nwb`` designs, per-page
  extension-register deltas for the locate design, ``recovery_pending``
  and the touched-address shape.  States differing only in payload
  bytes, absolute epochs or unobservable registers collapse.
* the **concrete fingerprint** — a hash of the durable image restricted
  to observable regions plus canonicalized observable registers; the
  sound fallback for torn-batch states and traces without recorded
  counter pairs.

On top of fingerprinting, a **mechanism analysis** marks drop-candidates
whose loss is invisible to every recovery path — units that write only
unobservable regions (the Merkle interior, for designs whose recovery
never reads the stored tree: recovery's rebuild recomputes every
affected node from the counters, so a stale or missing interior line
cannot be seen), carry no register deltas and share no line with any
other candidate.  Such units are *pinned applied* and never expanded:
each pinned candidate doubles the witness weight of every state at its
crash point instead of doubling the number of materialized states.
(The intuitive "data line superseded within the window" rule is vacuous
here: any superseding unit inside the window is itself a drop candidate
— fences bound the window — so supersession is conditional on the drop
set and cannot pin; the mechanism fingerprint collapses those states
instead.)

Soundness policy: a class whose representative *violates* the contract
is never trusted — every witness (including pin-expanded variants) is
evaluated individually, so violation findings are byte-identical to the
brute force's.  Passing classes carry the savings; spot-checked
witnesses guard the equivalence argument in-run, and the metamorphic
tests guard it exhaustively on brute-forceable traces.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.common.constants import BLOCKS_PER_PAGE, MINOR_COUNTER_MAX
from repro.crashsim.enumerate import (
    CrashEnumerator,
    CrashState,
    apply_op,
    canonical_value,
    _copy_registers,
)
from repro.crashsim.trace import PersistTrace, registers_to_dict
from repro.metadata.counters import CounterLine

#: Hard cap on non-pinned drop candidates per crash point: 2**16
#: subsets is the most a shard may expand before failing loudly rather
#: than silently sampling.
MAX_ACTIVE_CANDIDATES = 16


@dataclass(frozen=True)
class RecoveryView:
    """What one design's recovery (and the oracle) can observe.

    Mirrors the scheme's :class:`~repro.core.recovery.RecoveryPolicy`
    plus the oracle's checks; the metamorphic reducer tests guard the
    mirror against drift.
    """

    #: TCB roots step 1 tries, in the policy's order; empty = no step 1.
    check_roots: tuple[str, ...] = ()
    #: Step-3 style: 'nwb', 'root_new', or None.
    freshness: str | None = None
    #: Section 4.4 extension registers consulted (locate design).
    counter_log: bool = False
    #: ``retry_limit`` override; None = the config's update limit.
    retry_limit: int | None = None

    @property
    def merkle_observable(self) -> bool:
        """Stored interior tree nodes are read by some recovery step."""
        return bool(self.check_roots)

    @property
    def observed_registers(self) -> frozenset[str]:
        regs = {"recovery_pending"}
        if "old" in self.check_roots:
            regs.add("root_old")
        if "new" in self.check_roots or self.freshness == "root_new":
            regs.add("root_new")
        if self.freshness == "nwb":
            regs.add("nwb")
        if self.counter_log:
            regs.add("counter_log")
        return frozenset(regs)


#: One view per supported scheme (see the schemes' ``recover()`` docs).
RECOVERY_VIEWS: dict[str, RecoveryView] = {
    "ccnvm": RecoveryView(check_roots=("old", "new"), freshness="nwb"),
    "ccnvm_no_ds": RecoveryView(check_roots=("old", "new"), freshness="nwb"),
    "ccnvm_locate": RecoveryView(
        check_roots=("old", "new"), freshness="nwb", counter_log=True
    ),
    "sc": RecoveryView(
        check_roots=("new", "old"), freshness="root_new", retry_limit=1
    ),
    "osiris_plus": RecoveryView(freshness="root_new"),
    "no_cc": RecoveryView(),
}


def recovery_view(scheme_name: str) -> RecoveryView:
    if scheme_name not in RECOVERY_VIEWS:
        raise ValueError(f"no recovery view known for {scheme_name!r}")
    return RECOVERY_VIEWS[scheme_name]


class TreeOracle:
    """Concrete, cached evaluation of tree-shaped predicates.

    A scratch scheme instance (same seed ⇒ same keys as the recovery
    oracle's) hosts the state's counter/Merkle lines so ``does the
    stored tree match this root`` and ``what root would recovery
    rebuild`` are answered exactly, without running recovery.  Both are
    functions of a small line subset, so memoization makes them nearly
    free across an equivalence class.
    """

    def __init__(self, scheme_name: str, data_capacity: int, seed: int) -> None:
        from repro.core.schemes import create_scheme

        self.scheme = create_scheme(
            scheme_name, data_capacity=data_capacity, seed=seed
        )
        self.layout = self.scheme.nvm.layout
        self._match_cache: dict[tuple, bool] = {}
        self._root_cache: dict[str, bytes] = {}

    @staticmethod
    def _digest(lines: dict[int, bytes]) -> str:
        h = hashlib.sha256()
        for addr in sorted(lines):
            h.update(addr.to_bytes(8, "little"))
            h.update(lines[addr])
        return h.hexdigest()

    def tree_lines(self, lines: dict[int, bytes]) -> dict[int, bytes]:
        """The counter- and Merkle-region subset of a durable image."""
        return {
            addr: data
            for addr, data in lines.items()
            if self.layout.region_of(addr) in ("counter", "merkle")
        }

    def matches(self, tree_lines: dict[int, bytes], root: bytes) -> bool:
        """Would recovery step 1 accept *root* over this stored tree?"""
        key = (self._digest(tree_lines), bytes(root))
        hit = self._match_cache.get(key)
        if hit is None:
            self.scheme.nvm.restore(tree_lines)
            hit = self.scheme.merkle.verify_consistent(root)
            self._match_cache[key] = hit
        return hit

    def rebuilt_root(self, counter_lines: dict[int, bytes]) -> bytes:
        """The root recovery's rebuild would compute over these counters.

        Only counter leaves feed the rebuilt root: interior nodes are
        recomputed bottom-up from the leaves (stale interiors merely
        join the recompute set without contributing stored values).
        """
        key = self._digest(counter_lines)
        root = self._root_cache.get(key)
        if root is None:
            self.scheme.nvm.restore(counter_lines)
            root = self.scheme.merkle.compute_root()
            self._root_cache[key] = root
        return root


class CrashStateReducer:
    """Fingerprints crash states and pins invisible drop-candidates."""

    def __init__(
        self,
        trace: PersistTrace,
        scheme_name: str,
        data_capacity: int,
        seed: int,
    ) -> None:
        self.trace = trace
        self.scheme_name = scheme_name
        self.view = recovery_view(scheme_name)
        self.tree = TreeOracle(scheme_name, data_capacity, seed)
        self.layout = self.tree.layout
        limit = self.view.retry_limit
        if limit is None:
            limit = self.tree.scheme.config.epoch.update_limit
        self.retry_limit = limit
        #: data addr -> [(unit index, op seq)] of every write to it —
        #: including unannotated ones (page re-encryptions), whose
        #: counter pairs are unknown: a state whose survivor is such a
        #: write falls back to the concrete fingerprint.
        self._writes: dict[int, list[tuple[int, int]]] = {}
        for unit in trace.units:
            for op in unit.ops:
                if (
                    op.kind != "tcb"
                    and op.addr is not None
                    and self.layout.region_of(op.addr) == "data"
                ):
                    self._writes.setdefault(op.addr, []).append(
                        (unit.index, op.seq)
                    )
        #: Initial data lines have no recorded write events, so their
        #: survivor pairs are unknowable; such traces (none of ours)
        #: degrade to the concrete fingerprint throughout.
        self._mechanism_ok = bool(trace.counters) and not any(
            self.layout.region_of(addr) == "data"
            for addr in trace.initial_lines
        )

    # -- fingerprints ------------------------------------------------------------

    def fingerprint(self, state: CrashState) -> str:
        """The class identity of one crash state, as ``kind:hexdigest``."""
        if state.torn is not None or not self._mechanism_ok:
            return "concrete:" + self._concrete(state)
        mech = self._mechanism(state)
        if mech is None:
            return "concrete:" + self._concrete(state)
        return "mechanism:" + mech

    def _concrete(self, state: CrashState) -> str:
        """Hash of the observable image + observable canonical registers."""
        view = self.view
        h = hashlib.sha256()
        for addr in sorted(state.lines):
            if (
                not view.merkle_observable
                and self.layout.region_of(addr) == "merkle"
            ):
                continue
            h.update(addr.to_bytes(8, "little"))
            h.update(state.lines[addr])
        regs = registers_to_dict(state.registers)
        observed = {
            name: value
            for name, value in regs.items()
            if name in view.observed_registers
        }
        h.update(repr(canonical_value(observed)).encode())
        for addr in sorted(state.expected):
            h.update(addr.to_bytes(8, "little"))
            h.update(state.expected[addr])
        if state.torn is not None:
            h.update(f"torn:{state.k}:{state.torn}".encode())
        return h.hexdigest()

    def _survivor_pair(self, state: CrashState, addr: int):
        """(major, minor) of the last surviving write to *addr*, or None."""
        dropped = set(state.dropped)
        for unit_index, seq in reversed(self._writes.get(addr, ())):
            if unit_index < state.k and unit_index not in dropped:
                return self.trace.counters.get(seq)
        return None

    def _mechanism(self, state: CrashState) -> str | None:
        """The recovery-relevant canonical tuple, hashed; None = fall back."""
        view = self.view
        layout = self.layout
        registers = state.registers

        touched: dict[int, list[int]] = {}
        for addr in state.lines:
            if layout.region_of(addr) == "data":
                touched.setdefault(layout.counter_leaf_index(addr), []).append(
                    addr
                )

        # Per-leaf features are *anonymized* (no leaf or slot identity):
        # a passing verdict exposes only totals — Nretry, the
        # unrecoverable-block count — plus the per-page coupling between
        # an unrecoverable block and its page's major roll (normalization
        # re-authenticates such a block, flipping its post-recovery read
        # from IntegrityError to success).  Leaf identity re-enters only
        # through the locate design's extension registers, whose skip
        # notes and compare bits name pages (``log_feats`` below).
        leaf_feats = []
        leaf_retries: dict[int, int] = {}
        rolled_leaves: set[int] = set()
        total_retries = 0
        unrecoverable = 0
        adjusted: dict[int, bytes] = {
            addr: data
            for addr, data in state.lines.items()
            if layout.region_of(addr) == "counter"
        }
        for leaf, addrs in sorted(touched.items()):
            counter_addr = layout.counter_line_addr(addrs[0])
            stored_raw = state.lines.get(counter_addr)
            if stored_raw is None:
                stored_raw = self.tree.scheme.nvm.virgin(counter_addr)
            stored = CounterLine.decode(stored_raw)
            blocks = []
            pairs: dict[int, tuple[int, int]] = {}
            retries_here = 0
            rolled = False
            for addr in sorted(addrs):
                survivor = self._survivor_pair(state, addr)
                if survivor is None:
                    return None
                slot = layout.block_slot(addr)
                smaj, smin = stored.counter_pair(slot)
                maj, minor = survivor
                # Mirror RecoveryManager._recover_block: roll the minor
                # forward within the bound, then try one major bump.
                if (
                    maj == smaj
                    and smin <= minor <= min(smin + self.retry_limit,
                                             MINOR_COUNTER_MAX)
                ):
                    delta = minor - smin
                    blocks.append(("ok", delta))
                    pairs[slot] = survivor
                    retries_here += delta
                elif maj == smaj + 1 and minor <= self.retry_limit:
                    blocks.append(("rolled", minor))
                    pairs[slot] = survivor
                    retries_here += minor
                    rolled = True
                else:
                    blocks.append(("unrecoverable",))
                    unrecoverable += 1
            target = max([stored.major] + [p[0] for p in pairs.values()])
            if target > stored.major:
                rolled = True
                full = {}
                for block in range(BLOCKS_PER_PAGE):
                    pair = pairs.get(block, stored.counter_pair(block))
                    full[block] = pair if pair[0] >= target else (target, 0)
                line = CounterLine(
                    target, [full[b][1] for b in range(BLOCKS_PER_PAGE)]
                )
            else:
                line = CounterLine(stored.major, list(stored.minors))
                for block, (_, minor) in pairs.items():
                    line.minors[block] = minor
            adjusted[counter_addr] = line.encode()
            leaf_retries[leaf] = retries_here
            total_retries += retries_here
            if rolled:
                rolled_leaves.add(leaf)
            unrec_here = sum(1 for b in blocks if b[0] == "unrecoverable")
            if unrec_here:
                # Only pages with an unrecoverable block are featurized:
                # a fully-recovered page's identity, roll state and
                # retry split are invisible to every check (rolls reach
                # the verdict solely through ``fresh_feat``/``log_feats``
                # below, and retries only through their global sum).
                leaf_feats.append((unrec_here, rolled))

        matched = None
        if view.check_roots:
            tree_lines = self.tree.tree_lines(state.lines)
            for name in view.check_roots:
                root = registers["root_old" if name == "old" else "root_new"]
                if self.tree.matches(tree_lines, root):
                    matched = name
                    break

        log_feats = None
        located = False
        if view.counter_log:
            if matched == "new":
                log_feats = "skip_new"
            else:
                feats = []
                for counter_addr, expected in sorted(
                    registers["counter_log"].items()
                ):
                    leaf = layout.leaf_index_of_counter_addr(counter_addr)
                    if leaf in rolled_leaves:
                        feats.append((leaf, "skip_roll"))
                    else:
                        hit = expected == leaf_retries.get(leaf, 0)
                        located = located or not hit
                        feats.append((leaf, "cmp", hit))
                log_feats = tuple(feats)

        fresh_feat = None
        if view.freshness == "nwb":
            if located:
                fresh_feat = "located"
            elif matched == "new":
                fresh_feat = "skip_new"
            elif rolled_leaves:
                fresh_feat = "skip_roll"
            else:
                fresh_feat = ("cmp", registers["nwb"] == total_retries)
        elif view.freshness == "root_new":
            fresh_feat = (
                "cmp",
                self.tree.rebuilt_root(adjusted) == registers["root_new"],
            )

        record = (
            self.scheme_name,
            bool(registers["recovery_pending"]),
            tuple(sorted(leaf_feats)),
            matched,
            log_feats,
            fresh_feat,
            total_retries,
            unrecoverable,
        )
        return hashlib.sha256(repr(record).encode()).hexdigest()

    # -- invisibility analysis -----------------------------------------------------

    def pinned_candidates(
        self, candidates: list[int]
    ) -> tuple[int, ...]:
        """Drop-candidates whose loss no recovery path can observe.

        A unit qualifies when it writes only unobservable regions (for
        this view), carries no TCB register op, and is line-disjoint
        from every other candidate (so pinning it applied neither
        forces nor forbids any other drop).  Dropping such a unit
        changes only stored interior tree nodes that recovery's rebuild
        recomputes from the counters before anything reads them.
        """
        if self.view.merkle_observable:
            return ()
        units = self.trace.units
        pinned = []
        for u in candidates:
            unit = units[u]
            addrs = unit.addrs
            if not addrs or any(op.kind == "tcb" for op in unit.ops):
                continue
            if any(self.layout.region_of(a) != "merkle" for a in addrs):
                continue
            if any(
                addrs & units[v].addrs for v in candidates if v != u
            ):
                continue
            pinned.append(u)
        return tuple(pinned)


class ReducedEnumerator(CrashEnumerator):
    """A :class:`CrashEnumerator` that expands drop-sets exhaustively
    over the reducer's non-pinned candidates — no sampling, ever.

    ``pins[k]`` records the pinned candidates of each expanded crash
    point; every state yielded at ``k`` stands for ``2**len(pins[k])``
    brute-force states (itself plus every pinned-drop variant).
    """

    def __init__(
        self,
        trace: PersistTrace,
        reducer: CrashStateReducer,
        window: int = 4,
        seed: int = 0,
        torn_batches: bool = False,
    ) -> None:
        super().__init__(
            trace,
            window=window,
            budget=1,
            seed=seed,
            torn_batches=torn_batches,
        )
        self.reducer = reducer
        self.pins: dict[int, tuple[int, ...]] = {}

    def weight(self, k: int) -> int:
        """Brute-force states one materialized state at point *k* covers."""
        return 2 ** len(self.pins.get(k, ()))

    def _drop_sets(self, k, candidates):
        pins = self.reducer.pinned_candidates(candidates)
        self.pins[k] = pins
        active = [c for c in candidates if c not in pins]
        if len(active) > MAX_ACTIVE_CANDIDATES:
            raise RuntimeError(
                f"crash point {k}: {len(active)} active drop candidates "
                f"exceed the {MAX_ACTIVE_CANDIDATES}-candidate expansion "
                "cap; narrow the window"
            )
        import itertools

        out = []
        for r in range(1, len(active) + 1):
            for combo in itertools.combinations(active, r):
                if self._consistent(frozenset(combo), active):
                    out.append(combo)
        return out


def materialize(trace: PersistTrace, k: int, dropped) -> CrashState:
    """Build the crash state (*k*, *dropped*) by direct replay.

    Used when a violating class forces pin-expanded variants to be
    evaluated individually: the variants were deliberately never
    generated, so they are rebuilt here.
    """
    dropped = tuple(sorted(dropped))
    drop_set = set(dropped)
    lines = dict(trace.initial_lines)
    registers = _copy_registers(trace.initial_registers)
    expected: dict[int, bytes] = {}
    for j in range(k):
        if j in drop_set:
            continue
        for op in trace.units[j].ops:
            apply_op(lines, registers, expected, op, trace.annotations)
    return CrashState(k, dropped, None, lines, registers, expected)


def pin_variants(state: CrashState, pins) -> list[tuple[int, ...]]:
    """Every pinned-drop variant of *state*'s drop-set (excluding it).

    Pinned candidates are line-disjoint from all other candidates, so
    any subset may be added to the drop-set without breaking per-address
    consistency.
    """
    import itertools

    base = set(state.dropped)
    out = []
    for r in range(1, len(pins) + 1):
        for combo in itertools.combinations(pins, r):
            out.append(tuple(sorted(base | set(combo))))
    return out
