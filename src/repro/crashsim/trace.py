"""Persist-trace recording: the ordered stream of durable micro-ops.

The recorder plugs into the plain ``trace_hook`` attributes the WPQ and
the TCB expose (the same pattern the fault injector uses for
``fault_hook`` — the core never imports this package) and rebuilds, op
by op, the exact order in which state became durable under ADR:

* every normal / partial WPQ write, captured as the **post-write full
  line** (peeked from the device right after the store merges), so
  replaying an op is plain assignment;
* atomic-batch boundaries (``begin_atomic`` … ``commit_atomic``), kept
  as one all-or-nothing :class:`TraceUnit`;
* *combined groups* — writes bracketed by
  :meth:`~repro.mem.wpq.WritePendingQueue.begin_combined`, which travel
  to the controller as one transaction (data + HMAC sub-line + the TCB
  ``Nwb`` bump) and therefore share a fate across a power failure;
* persistent TCB register micro-ops, interleaved at their true position
  in the stream and tagged with the mutator name from the class's
  ``@persistence`` declaration.

The resulting :class:`PersistTrace` is the input to the crash-state
enumerator: its units are the atoms ADR semantics permute and truncate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.persistence import REGISTRY

#: TCB mutators whose effect on ``root_new`` is absolute (the op records
#: the post-op register value); every other mutator replays as a delta.
_ROOT_MUTATORS = ("update_root_new", "set_root_new", "set_roots")

#: Mutators that order all earlier WPQ traffic before themselves: a
#: batch commit by construction (ADR flushes the whole batch), an epoch
#: commit because the drain protocol blocks until the WPQ is empty
#: before advancing ``root_old``.
_FENCE_MUTATORS = ("commit_root", "set_roots")


@dataclass(frozen=True)
class PersistOp:
    """One durable micro-op: a WPQ line write or a TCB register update."""

    seq: int
    #: ``write`` / ``write_partial`` / ``write_atomic`` / ``tcb``.
    kind: str
    owner: str
    addr: int | None = None
    #: Post-op full line for WPQ writes; post-op ``root_new`` for the
    #: root-register mutators; ``None`` for delta-replayed TCB ops.
    data: bytes | None = None
    #: Sanctioned ``@persistence`` mutator name (TCB ops only).
    mutator: str | None = None

    def to_dict(self) -> dict:
        return {
            "seq": self.seq,
            "kind": self.kind,
            "owner": self.owner,
            "addr": self.addr,
            "data": self.data.hex() if self.data is not None else None,
            "mutator": self.mutator,
        }

    @staticmethod
    def from_dict(d: dict) -> "PersistOp":
        return PersistOp(
            seq=d["seq"],
            kind=d["kind"],
            owner=d["owner"],
            addr=d["addr"],
            data=bytes.fromhex(d["data"]) if d["data"] is not None else None,
            mutator=d["mutator"],
        )


@dataclass(frozen=True)
class TraceUnit:
    """The atomic grain of crash enumeration.

    * ``group`` — one controller write transaction (a combined group or
      a lone normal write): in flight toward the WPQ, so a crash may
      drop it even after later transactions were accepted — subject to
      the per-address ordering the controller preserves;
    * ``batch`` — one committed atomic batch: all-or-nothing and a
      *fence* (the batch owns the WPQ end to end, so nothing earlier
      can still be in flight once it commits);
    * ``tcb`` — a standalone persistent-register update (on-chip,
      synchronous: never dropped once program order passed it).
    """

    index: int
    kind: str
    ops: tuple[PersistOp, ...]

    @property
    def addrs(self) -> frozenset[int]:
        """NVM lines this unit writes (register-only ops excluded)."""
        return frozenset(
            op.addr for op in self.ops if op.kind != "tcb" and op.addr is not None
        )

    @property
    def is_fence(self) -> bool:
        """True when no earlier write can still be un-durable past here."""
        if self.kind == "batch":
            return True
        return any(op.mutator in _FENCE_MUTATORS for op in self.ops)

    @property
    def droppable(self) -> bool:
        """True when ADR may lose this unit behind later accepted ones."""
        return self.kind == "group"

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "kind": self.kind,
            "ops": [op.to_dict() for op in self.ops],
        }

    @staticmethod
    def from_dict(d: dict) -> "TraceUnit":
        return TraceUnit(
            index=d["index"],
            kind=d["kind"],
            ops=tuple(PersistOp.from_dict(o) for o in d["ops"]),
        )


@dataclass
class PersistTrace:
    """A recorded persist stream plus the pre-workload durable state."""

    scheme: str
    seed: int
    initial_lines: dict[int, bytes] = field(default_factory=dict)
    initial_registers: dict = field(default_factory=dict)
    units: list[TraceUnit] = field(default_factory=list)
    #: op seq -> plaintext the workload intended for that data write.
    annotations: dict[int, bytes] = field(default_factory=dict)
    #: op seq -> (major, minor) encryption counter the write used.  Only
    #: annotated data writes are covered; the equivalence-class reducer
    #: needs the pair to predict recovery's data-HMAC roll-forward
    #: without trying counters against the ciphertext.
    counters: dict[int, tuple[int, int]] = field(default_factory=dict)
    #: owner class -> its ``@persistence`` declaration, as data.
    domains: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.units)

    @property
    def op_count(self) -> int:
        return sum(len(u.ops) for u in self.units)


def registers_to_dict(registers: dict) -> dict:
    """JSON-able image of a TCB register snapshot."""
    return {
        "root_new": registers["root_new"].hex(),
        "root_old": registers["root_old"].hex(),
        "nwb": registers["nwb"],
        "counter_log": {str(a): c for a, c in registers["counter_log"].items()},
        "recovery_pending": registers["recovery_pending"],
    }


def registers_from_dict(d: dict) -> dict:
    """Inverse of :func:`registers_to_dict`."""
    return {
        "root_new": bytes.fromhex(d["root_new"]),
        "root_old": bytes.fromhex(d["root_old"]),
        "nwb": int(d["nwb"]),
        "counter_log": {int(a): int(c) for a, c in d["counter_log"].items()},
        "recovery_pending": bool(d["recovery_pending"]),
    }


class PersistTraceRecorder:
    """Attaches to one scheme and records its persist stream.

    Usage::

        recorder = PersistTraceRecorder(scheme)
        recorder.attach()
        ... run a workload, calling recorder.annotate(addr, plaintext)
            after each intended data write ...
        trace = recorder.detach()
    """

    def __init__(self, scheme, seed: int = 0) -> None:
        self.scheme = scheme
        self.seed = seed
        self._seq = 0
        self._units: list[TraceUnit] = []
        self._combined_depth = 0
        self._open_group: list[PersistOp] | None = None
        self._open_batch: list[PersistOp] | None = None
        self._annotations: dict[int, bytes] = {}
        self._counters: dict[int, tuple[int, int]] = {}
        self._attached = False
        self._trace: PersistTrace | None = None

    # -- wiring ---------------------------------------------------------------

    def attach(self) -> None:
        """Install the trace hooks and snapshot the pre-workload state."""
        if self._attached:
            raise RuntimeError("recorder already attached")
        scheme = self.scheme
        self._trace = PersistTrace(
            scheme=scheme.name,
            seed=self.seed,
            initial_lines=scheme.nvm.snapshot(),
            initial_registers=scheme.tcb.registers_snapshot(),
            domains={
                name: {
                    "persistent": list(decl.persistent),
                    "volatile": list(decl.volatile),
                    "aka": list(decl.aka),
                    "mutators": list(decl.mutators),
                }
                for name, decl in sorted(REGISTRY.items())
                if name in ("WritePendingQueue", "TCB", "NVMDevice")
            },
        )
        scheme.wpq.trace_hook = self._on_wpq
        scheme.tcb.trace_hook = self._on_tcb
        self._attached = True

    def detach(self) -> PersistTrace:
        """Remove the hooks and return the finished trace."""
        if not self._attached:
            raise RuntimeError("recorder not attached")
        if self._combined_depth or self._open_group or self._open_batch:
            raise RuntimeError("detach inside an open group/batch")
        self.scheme.wpq.trace_hook = None
        self.scheme.tcb.trace_hook = None
        self._attached = False
        trace = self._trace
        trace.units = self._units
        trace.annotations = self._annotations
        trace.counters = self._counters
        return trace

    # -- workload annotation ----------------------------------------------------

    def annotate(self, addr: int, plaintext: bytes) -> None:
        """Tag the most recent data write to *addr* with its plaintext.

        Called by the recording workload right after each intended
        write-back; the oracle later derives, for any crash state, which
        plaintext the surviving write stream implies for every block.
        """
        for unit in reversed(self._units):
            for op in reversed(unit.ops):
                if op.kind == "write" and op.addr == addr:
                    self._annotations[op.seq] = bytes(plaintext)
                    self._counters[op.seq] = self._counter_pair(addr)
                    return
        raise ValueError(f"no recorded write to {addr:#x} to annotate")

    def _counter_pair(self, addr: int) -> tuple[int, int]:
        """The (major, minor) the write-back to *addr* just encrypted under.

        Right after a write-back the bumped counter line is either still
        resident in the meta cache or — if an eviction pushed it out in
        the same write-back's tree propagation — already drained to NVM
        and therefore in the recorded stream; both copies carry the
        post-bump pair the encryption engine used.
        """
        from repro.metadata.counters import CounterLine

        scheme = self.scheme
        counter_addr = scheme.layout.counter_line_addr(addr)
        slot = scheme.layout.block_slot(addr)
        meta = getattr(scheme, "meta", None)
        if meta is not None:
            line = meta.probe(counter_addr)
            if line is not None and isinstance(line.data, CounterLine):
                return line.data.counter_pair(slot)
        for unit in reversed(self._units):
            for op in reversed(unit.ops):
                if op.kind != "tcb" and op.addr == counter_addr:
                    return CounterLine.decode(op.data).counter_pair(slot)
        return CounterLine.decode(
            scheme.nvm.virgin(counter_addr)
        ).counter_pair(slot)

    # -- hook plumbing -----------------------------------------------------------

    def _next_seq(self) -> int:
        seq = self._seq
        self._seq += 1
        return seq

    def _emit_unit(self, kind: str, ops: list[PersistOp]) -> None:
        self._units.append(TraceUnit(len(self._units), kind, tuple(ops)))

    def _emit_op(self, op: PersistOp) -> None:
        if self._open_group is not None:
            self._open_group.append(op)
        else:
            self._emit_unit("group" if op.kind != "tcb" else "tcb", [op])

    def _on_wpq(self, kind: str, addr: int | None, data: bytes | None) -> None:
        owner = type(self.scheme.wpq).__name__
        if kind == "begin_combined":
            self._combined_depth += 1
            if self._combined_depth == 1:
                self._open_group = []
            return
        if kind == "end_combined":
            if self._combined_depth <= 0:
                raise RuntimeError("end_combined without begin_combined")
            self._combined_depth -= 1
            if self._combined_depth == 0:
                ops, self._open_group = self._open_group, None
                if ops:
                    self._emit_unit("group", ops)
            return
        if kind in ("write", "write_partial"):
            # The store already merged into the device: peek the full
            # post-write line so replay is assignment, never a re-merge.
            line = self.scheme.nvm.peek(addr)
            self._emit_op(PersistOp(self._next_seq(), kind, owner, addr, line))
            return
        if kind == "begin_atomic":
            if self._open_group is not None:
                raise RuntimeError("atomic batch inside a combined group")
            self._open_batch = []
            return
        if kind == "write_atomic":
            self._open_batch.append(
                PersistOp(self._next_seq(), "write_atomic", owner, addr, data)
            )
            return
        if kind == "commit_atomic":
            ops, self._open_batch = self._open_batch, None
            self._emit_unit("batch", ops)
            return
        if kind == "power_failure":
            # An uncommitted batch dies with the power; recording
            # workloads do not crash, but keep the semantics honest.
            self._open_batch = None
            return
        raise ValueError(f"unknown WPQ trace kind {kind!r}")

    def _on_tcb(self, mutator: str, addr: int | None) -> None:
        tcb = self.scheme.tcb
        data = tcb.root_new if mutator in _ROOT_MUTATORS else None
        op = PersistOp(
            self._next_seq(), "tcb", type(tcb).__name__, addr, data, mutator
        )
        self._emit_op(op)
