"""The recording workload: a deterministic hot-set write stream.

Mirrors the fault campaign's hot-set shape (8 blocks on 2 pages, enough
round-robin pressure to cross the update-times limit N and trigger every
drain path) but runs under an attached
:class:`~repro.crashsim.trace.PersistTraceRecorder`, annotating each
write-back with its intended plaintext so the oracle can later derive
the exact expected contents for *any* crash state.
"""

from __future__ import annotations

import hashlib

from repro.crashsim.trace import PersistTraceRecorder

PAGES = (0x2000, 0x3000)
BLOCKS_PER_PAGE = 4
#: Fresh page the oracle's post-recovery probe write-back targets.
PROBE_ADDR = 0x7000


def payload(seed: int, step: int) -> bytes:
    """The deterministic 64 B plaintext for one workload step."""
    return hashlib.blake2b(
        f"crashsim:{seed}:{step}".encode(), digest_size=64
    ).digest()


def hot_addrs() -> list[int]:
    return [
        page + block * 64 for page in PAGES for block in range(BLOCKS_PER_PAGE)
    ]


def record_workload(scheme, steps: int, seed: int):
    """Run the hot-set stream under a recorder; returns the trace.

    The recorder attaches *before* the warm-up round, so every line the
    workload ever wrote is annotated and the trace's initial image is
    the genesis state — there is no pre-history the oracle cannot see.
    """
    recorder = PersistTraceRecorder(scheme, seed=seed)
    recorder.attach()
    addrs = hot_addrs()
    now = 0
    for i, addr in enumerate(addrs):
        data = payload(seed, -1 - i)
        scheme.writeback(now, addr, data)
        recorder.annotate(addr, data)
        now += 500
    for i in range(steps):
        addr = addrs[i % len(addrs)]
        data = payload(seed, i)
        scheme.writeback(now, addr, data)
        recorder.annotate(addr, data)
        now += 500
    return recorder.detach()
