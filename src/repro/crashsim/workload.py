"""The recording workloads: deterministic annotated write streams.

The default ``hotset`` profile mirrors the fault campaign's hot-set
shape (8 blocks on 2 pages, enough round-robin pressure to cross the
update-times limit N and trigger every drain path).  The Figure-5
profiles replay the write-back stream of one SPEC CPU2006 surrogate
(:mod:`repro.workloads.spec`), folded onto a small page range so the
crash campaign exercises each benchmark's metadata-locality shape —
streaming wraps, strides, hot-set skew — rather than the hot-set's.

Every workload runs under an attached
:class:`~repro.crashsim.trace.PersistTraceRecorder`, annotating each
write-back with its intended plaintext so the oracle can later derive
the exact expected contents for *any* crash state.
"""

from __future__ import annotations

import hashlib

from repro.crashsim.trace import PersistTraceRecorder

PAGES = (0x2000, 0x3000)
BLOCKS_PER_PAGE = 4
#: Fresh page the oracle's post-recovery probe write-back targets.
PROBE_ADDR = 0x7000

#: Where the SPEC-surrogate write streams land: 4 pages starting here
#: (256 cache lines), clear of the probe page.
SPEC_BASE = 0x2000
SPEC_LINES = 256
#: Name of the default hot-set profile.
HOTSET = "hotset"


def payload(seed: int, step: int) -> bytes:
    """The deterministic 64 B plaintext for one workload step."""
    return hashlib.blake2b(
        f"crashsim:{seed}:{step}".encode(), digest_size=64
    ).digest()


def hot_addrs() -> list[int]:
    return [
        page + block * 64 for page in PAGES for block in range(BLOCKS_PER_PAGE)
    ]


def workload_profiles() -> list[str]:
    """Every recordable profile: the hot set plus the Figure-5 suite."""
    from repro.workloads.spec import SPEC_ORDER

    return [HOTSET, *SPEC_ORDER]


def spec_write_addrs(profile: str, steps: int, seed: int) -> list[int]:
    """The first *steps* write-back line addresses of one SPEC surrogate.

    The surrogate's byte addresses are folded onto :data:`SPEC_LINES`
    cache lines starting at :data:`SPEC_BASE`, preserving the profile's
    access pattern (and hence its counter-line / tree-node sharing
    shape) while keeping the crash-state space enumerable.
    """
    from repro.sim.trace import WRITE
    from repro.workloads.spec import spec_trace

    addrs: list[int] = []
    length = max(64, steps * 4)
    while len(addrs) < steps:
        for record in spec_trace(profile, length, seed):
            if record.op != WRITE:
                continue
            line = (record.addr // 64) % SPEC_LINES
            addrs.append(SPEC_BASE + line * 64)
            if len(addrs) == steps:
                break
        length *= 2
    return addrs


def record_workload(scheme, steps: int, seed: int, profile: str = HOTSET):
    """Run one annotated write stream under a recorder; returns the trace.

    The recorder attaches *before* the first write, so every line the
    workload ever wrote is annotated and the trace's initial image is
    the genesis state — there is no pre-history the oracle cannot see.
    The hot-set profile keeps its warm-up round (every hot block written
    once before the measured stream); the SPEC profiles replay their
    folded write-back stream directly.

    ``ace-k<k>-<rgs>-<fences>`` profiles (see
    :mod:`repro.trafficgen.ace`) replay their canonical k-write stream
    with a full epoch drain (``scheme.flush()``) after every fenced
    write; *steps* is ignored — the enumerated workload's own length is
    the whole point.
    """
    from repro.trafficgen.ace import is_ace_profile, parse_profile

    recorder = PersistTraceRecorder(scheme, seed=seed)
    recorder.attach()
    now = 0
    if is_ace_profile(profile):
        workload = parse_profile(profile)
        for i, addr in enumerate(workload.addrs()):
            data = payload(seed, i)
            scheme.writeback(now, addr, data)
            recorder.annotate(addr, data)
            now += 500
            if workload.fences[i] == "1":
                scheme.flush()
        return recorder.detach()
    if profile == HOTSET:
        addrs = hot_addrs()
        for i, addr in enumerate(addrs):
            data = payload(seed, -1 - i)
            scheme.writeback(now, addr, data)
            recorder.annotate(addr, data)
            now += 500
        stream = [addrs[i % len(addrs)] for i in range(steps)]
    else:
        stream = spec_write_addrs(profile, steps, seed)
    for i, addr in enumerate(stream):
        data = payload(seed, i)
        scheme.writeback(now, addr, data)
        recorder.annotate(addr, data)
        now += 500
    return recorder.detach()
