"""Counter-mode encryption (CME) of memory lines.

Every 64 B block evicted from the LLC is XORed with a one-time pad (OTP)
derived from a secret key and a *seed*; the seed is the block's physical
address concatenated with its encryption counter (Section 2.2).  Seed
uniqueness — and therefore pad uniqueness — is guaranteed by (1) mapping
different blocks to different (address, counter) pairs and (2) bumping the
counter on every write-back.

The model uses the split-counter convention: the effective counter of a
block is the pair ``(major, minor)`` where ``major`` is shared by the whole
page and ``minor`` is per-block (see :mod:`repro.metadata.counters`).  Both
are folded into the seed, so a minor-counter overflow that bumps the major
counter re-keys every block of the page.
"""

from __future__ import annotations

from repro.common.constants import CACHE_LINE_SIZE
from repro.crypto.prf import SecretKey, prf


def make_seed(address: int, major: int, minor: int) -> bytes:
    """Serialize the CME seed for one block.

    The encoding is fixed-width so distinct (address, major, minor) triples
    can never alias.  Each component must fit its field: 64 bits for the
    address and the major counter, 16 bits for the minor counter.
    """
    if address < 0 or major < 0 or minor < 0:
        raise ValueError("seed components must be non-negative")
    if address >= 1 << 64:
        raise ValueError(f"address {address:#x} exceeds the 64-bit seed field")
    if major >= 1 << 64:
        raise ValueError(f"major counter {major} exceeds the 64-bit seed field")
    if minor >= 1 << 16:
        raise ValueError(f"minor counter {minor} exceeds the 16-bit seed field")
    return (
        address.to_bytes(8, "little")
        + major.to_bytes(8, "little")
        + minor.to_bytes(2, "little")
    )


def generate_otp(key: SecretKey, address: int, major: int, minor: int) -> bytes:
    """Generate the 64 B one-time pad for a block (models the AES engine)."""
    return prf(key, make_seed(address, major, minor), out_len=CACHE_LINE_SIZE)


def xor_bytes(data: bytes, pad: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(data) != len(pad):
        raise ValueError(f"length mismatch: {len(data)} vs {len(pad)}")
    return bytes(a ^ b for a, b in zip(data, pad))


class CounterModeCipher:
    """Stateless encrypt/decrypt helper bound to one encryption key.

    Counter management is *not* handled here — callers (the encryption
    engine) own the counter store; the cipher only turns (plaintext,
    address, counter) into ciphertext and back.  Encryption and decryption
    are the same XOR operation, which is exactly what makes CME's
    read-latency hiding work: the pad can be computed while the data line
    is still in flight from memory.
    """

    def __init__(self, key: SecretKey) -> None:
        self._key = key

    @property
    def key(self) -> SecretKey:
        """The encryption key (TCB-internal)."""
        return self._key

    def encrypt(self, plaintext: bytes, address: int, major: int, minor: int) -> bytes:
        """Encrypt one 64 B block with its (major, minor) counter pair."""
        if len(plaintext) != CACHE_LINE_SIZE:
            raise ValueError("CME operates on whole cache lines")
        return xor_bytes(plaintext, generate_otp(self._key, address, major, minor))

    def decrypt(self, ciphertext: bytes, address: int, major: int, minor: int) -> bytes:
        """Decrypt one 64 B block; inverse of :meth:`encrypt`."""
        if len(ciphertext) != CACHE_LINE_SIZE:
            raise ValueError("CME operates on whole cache lines")
        return xor_bytes(ciphertext, generate_otp(self._key, address, major, minor))
