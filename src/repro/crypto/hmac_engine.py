"""Data-HMAC and counter-HMAC computation.

Two kinds of authentication codes exist in the Bonsai Merkle Tree
architecture (Section 2.2, Figure 1):

* **Data HMACs** — one 128-bit code per data block, computed over the
  *encrypted* data, the block address and the block's encryption counter:
  ``DH = HMAC(encrypted_data || address || counter)``.  They defeat spoofing
  and splicing, and — because the counter is an input — inherit replay
  protection from the counter tree.  Data HMACs are stored alongside the
  data in NVM and are *not* cached in the meta cache; they are generated in
  the memory controller and written back atomically with the data (the
  property Section 4.4's counter recovery relies on).
* **Counter HMACs** — the internal nodes of the Merkle tree: each parent
  stores the 128-bit HMAC of each of its four children
  (``CH = HMAC(child_node)``), keyed with the TCB HMAC key.

The engine also counts every HMAC computation so the deferred-spreading
ablation can report calculation savings, and exposes the paper's 80-cycle
latency for the timing layer.
"""

from __future__ import annotations

from repro.common.constants import CACHE_LINE_SIZE, HMAC_SIZE
from repro.common.stats import StatGroup
from repro.crypto.prf import SecretKey, constant_time_equal, keyed_hash


class HmacEngine:
    """Computes data HMACs and counter HMACs with one TCB key."""

    def __init__(self, key: SecretKey, stats: StatGroup | None = None) -> None:
        self._key = key
        self._stats = stats if stats is not None else StatGroup("hmac")
        self._data_hmacs = self._stats.counter(
            "data_hmacs", "data HMAC computations"
        )
        self._counter_hmacs = self._stats.counter(
            "counter_hmacs", "counter HMAC (Merkle node) computations"
        )

    @property
    def stats(self) -> StatGroup:
        """Statistics group with computation counts."""
        return self._stats

    @property
    def data_hmac_count(self) -> int:
        """Total data-HMAC computations performed so far."""
        return self._data_hmacs.value

    @property
    def counter_hmac_count(self) -> int:
        """Total counter-HMAC (tree-node) computations performed so far."""
        return self._counter_hmacs.value

    def data_hmac(
        self, encrypted_data: bytes, address: int, major: int, minor: int
    ) -> bytes:
        """128-bit data HMAC of one encrypted block.

        Inputs follow Figure 1: encrypted data, address, and the block's
        (split) encryption counter.
        """
        if len(encrypted_data) != CACHE_LINE_SIZE:
            raise ValueError("data HMAC covers exactly one cache line")
        self._data_hmacs.inc()
        return keyed_hash(
            self._key,
            encrypted_data,
            address.to_bytes(8, "little"),
            major.to_bytes(8, "little"),
            minor.to_bytes(2, "little"),
        )

    def counter_hmac(self, child_node: bytes) -> bytes:
        """128-bit HMAC of one child tree node (counter line or inner node).

        A node's position is authenticated *positionally*: the code is
        stored in the slot of the parent that the tree structure assigns
        to this child, so relocating a node to any other tree position
        lands it under a slot holding some other child's HMAC.  (Data-level
        splicing is separately caught by the address-keyed data HMACs.)
        Content-only keying also gives every tree level a uniform
        "genesis" value for untouched subtrees, which is what lets a full
        16 GB device be modeled lazily.
        """
        if len(child_node) != CACHE_LINE_SIZE:
            raise ValueError("counter HMAC covers exactly one tree node")
        self._counter_hmacs.inc()
        return keyed_hash(self._key, child_node)

    def verify(self, expected: bytes, actual: bytes) -> bool:
        """Constant-time comparison of two HMAC codewords."""
        if len(expected) != HMAC_SIZE or len(actual) != HMAC_SIZE:
            raise ValueError("HMAC codewords are 128-bit")
        return constant_time_equal(expected, actual)
