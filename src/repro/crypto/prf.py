"""Keyed pseudo-random functions used by the encryption and HMAC engines.

The hardware in the paper uses AES for one-time-pad generation and SHA-1
for HMACs.  This model substitutes software constructions with the same
*interface contracts* (deterministic keyed functions, fixed-width outputs,
avalanche on any input change) so that the functional layer — encryption,
authentication, attack detection, crash recovery — behaves exactly like the
hardware would, while the timing layer charges the paper's fixed hardware
latencies instead of Python's crypto cost.
"""

from __future__ import annotations

import hashlib
import hmac as _hmac

from repro.common.constants import CACHE_LINE_SIZE, HMAC_SIZE


class SecretKey:
    """An opaque secret key living in the TCB.

    Keys never leave the trusted computing base in the modeled design; the
    class exists mostly to make key handling explicit in signatures and to
    prevent accidental reuse of raw byte strings.
    """

    __slots__ = ("_material",)

    def __init__(self, material: bytes) -> None:
        if len(material) < 16:
            raise ValueError("key material must be at least 128 bits")
        self._material = bytes(material)

    @classmethod
    def from_seed(cls, seed: int | str) -> "SecretKey":
        """Derive a key deterministically from a test/simulation seed."""
        digest = hashlib.sha256(repr(seed).encode()).digest()
        return cls(digest)

    @property
    def material(self) -> bytes:
        """Raw key bytes (TCB-internal use only)."""
        return self._material

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SecretKey):
            return NotImplemented
        return _hmac.compare_digest(self._material, other._material)

    def __hash__(self) -> int:
        return hash(self._material)

    def __repr__(self) -> str:  # never leak the key
        return "SecretKey(<hidden>)"


def prf(key: SecretKey, *parts: bytes, out_len: int = CACHE_LINE_SIZE) -> bytes:
    """Keyed PRF with arbitrary-length output.

    Implements a simple counter-mode expansion of HMAC-SHA256 over the
    concatenated, length-prefixed *parts*.  Length prefixes make the input
    encoding injective, so ``prf(k, a, b) != prf(k, ab, b'')`` — the model
    equivalent of AES's block structure preventing seed collisions.
    """
    message = b"".join(len(p).to_bytes(4, "little") + p for p in parts)
    blocks = []
    counter = 0
    while sum(len(b) for b in blocks) < out_len:
        mac = _hmac.new(
            key.material, counter.to_bytes(4, "little") + message, hashlib.sha256
        )
        blocks.append(mac.digest())
        counter += 1
    return b"".join(blocks)[:out_len]


def keyed_hash(key: SecretKey, *parts: bytes) -> bytes:
    """A 128-bit keyed MAC over the length-prefixed *parts*.

    Models the paper's HMAC-SHA1 truncated to the 128-bit codeword width.
    """
    message = b"".join(len(p).to_bytes(4, "little") + p for p in parts)
    return _hmac.new(key.material, message, hashlib.sha1).digest()[:HMAC_SIZE]


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Timing-safe comparison (as the hardware comparator would be)."""
    return _hmac.compare_digest(a, b)
