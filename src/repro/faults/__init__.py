"""Fault injection: micro-step crash points, media faults, recovery oracle.

This package drives the system model through the failures the paper's
guarantees are supposed to survive:

* :mod:`repro.faults.plan` — the registry of named crash sites the core
  is instrumented with, plus :class:`PowerFailure`;
* :mod:`repro.faults.injector` — arms a deterministic crash at the k-th
  visit of a site (or records site hit counts in discovery mode);
* :mod:`repro.faults.media` — NVM media-fault model: ECC-detectable
  transient read faults, permanent (stuck) faults, and silent bit flips
  only the HMAC layer can catch;
* :mod:`repro.faults.campaign` — the differential recovery oracle: sweep
  schemes x crash sites x fault models and assert each design's
  documented post-crash contract.

Layering: core modules never import this package — they expose plain
``fault_hook`` attributes the injector attaches to, and the media model
plugs into :class:`~repro.mem.nvm.NVMDevice` through ``set_media_model``.
"""

from repro.faults.campaign import (
    CampaignConfig,
    CampaignResult,
    InjectionResult,
    MediaResult,
    run_campaign,
)
from repro.faults.injector import FaultInjector
from repro.faults.media import MediaFaultModel
from repro.faults.plan import (
    ALL_SITE_NAMES,
    RECOVERY_SITES,
    SITES,
    FaultSite,
    PowerFailure,
    sites_for_scheme,
)

__all__ = [
    "ALL_SITE_NAMES",
    "CampaignConfig",
    "CampaignResult",
    "FaultInjector",
    "FaultSite",
    "InjectionResult",
    "MediaFaultModel",
    "MediaResult",
    "PowerFailure",
    "RECOVERY_SITES",
    "SITES",
    "run_campaign",
    "sites_for_scheme",
]
