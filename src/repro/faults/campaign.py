"""The differential recovery oracle: schemes x crash sites x fault models.

For every (scheme, site) pair the campaign runs a deterministic hot-set
workload, arms a power failure at a chosen visit of the site, crashes the
machine there, recovers, and checks the design's *documented* post-crash
contract — not merely "recovery did not throw":

* the rebuilt tree is internally consistent and both TCB roots agree;
* per-campaign retry totals stay within the design's bound (N);
* every write-back that completed before the crash reads back exactly;
  the one in-flight block reads back as either its pre- or post-crash
  value; nothing else is acceptable;
* the machine is usable afterwards (a fresh write-back round-trips).

Outcomes are classified and compared against an expected matrix derived
from each design's guarantees (differential part):

=================  =========================================================
``RECOVERED``      recovery succeeded and every invariant held
``FALSE_ALARM``    data fully intact, but the design's freshness check
                   cannot distinguish the crash from a replay (honest
                   limitation of SC / Osiris Plus at one micro-step)
``DEGRADED``       unrecoverable blocks were reported *and located*; all
                   other data intact (w/o CC's expected post-crash state)
``NOT_REACHED``    the scheme's execution never visits this site
``FAILED``         anything else — a protocol bug
=================  =========================================================

Crash sites inside ``recovery.*`` are exercised as *double crashes*: run
the workload, crash, start recovery, crash it mid-run at the armed site,
then recover again — asserting recovery is restartable/idempotent.

The media phase schedules NVM read faults per scheme: a transient fault
must be absorbed by the controller's bounded retry, a permanent fault
must degrade gracefully into a located :class:`MediaResult` report, and a
silent bit flip must be caught by the data-HMAC layer.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from repro.common.config import SystemConfig
from repro.core.schemes import create_scheme
from repro.faults.injector import FaultInjector
from repro.faults.media import MediaFaultModel
from repro.faults.plan import RECOVERY_SITES, PowerFailure, sites_for_scheme
from repro.mem.nvm import PermanentMediaError
from repro.metadata.metacache import IntegrityError

#: Default scheme sweep (the four consistent designs plus the baseline).
DEFAULT_SCHEMES = ("no_cc", "sc", "osiris_plus", "ccnvm_no_ds", "ccnvm")


@dataclass(frozen=True)
class CampaignConfig:
    """Shape of one campaign run."""

    schemes: tuple[str, ...] = DEFAULT_SCHEMES
    #: Restrict the sweep to these sites (None = every reachable site).
    sites: tuple[str, ...] | None = None
    #: Write-backs in the main workload loop (after an 8-step warm-up
    #: round).  The default drives every hot block past the update-times
    #: limit N, so w/o CC's unbounded staleness actually shows.
    steps: int = 160
    seed: int = 0
    #: Data-region bytes of the modeled device (small = fast rebuilds).
    data_capacity: int = 1 << 16
    #: Also run the NVM media-fault phase.
    media: bool = True

    @staticmethod
    def smoke() -> "CampaignConfig":
        """A CI-sized campaign: two schemes, shorter workload, no media cut."""
        return CampaignConfig(schemes=("sc", "ccnvm"), steps=64)


@dataclass
class InjectionResult:
    """One (scheme, crash site) experiment."""

    scheme: str
    site: str
    #: Which visit of the site the crash was armed at (0 = not armed).
    hit: int
    fired: bool
    outcome: str
    expected: str
    ok: bool
    total_retries: int = 0
    nwb: int = 0
    unrecoverable: int = 0
    problems: list[str] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "scheme": self.scheme,
            "site": self.site,
            "hit": self.hit,
            "fired": self.fired,
            "outcome": self.outcome,
            "expected": self.expected,
            "ok": self.ok,
            "total_retries": self.total_retries,
            "nwb": self.nwb,
            "unrecoverable": self.unrecoverable,
            "problems": list(self.problems),
            "notes": list(self.notes),
        }

    @staticmethod
    def from_dict(data: dict) -> "InjectionResult":
        """Inverse of :meth:`to_dict` (used by the run cache/journal)."""
        return InjectionResult(**data)


@dataclass
class MediaResult:
    """One media-fault experiment."""

    scheme: str
    kind: str  # 'transient' | 'permanent' | 'silent'
    addr: int
    outcome: str  # 'absorbed' | 'degraded_located' | 'detected_by_hmac' | ...
    expected: str
    ok: bool
    detail: str = ""

    def to_dict(self) -> dict:
        return {
            "scheme": self.scheme,
            "kind": self.kind,
            "addr": self.addr,
            "outcome": self.outcome,
            "expected": self.expected,
            "ok": self.ok,
            "detail": self.detail,
        }

    @staticmethod
    def from_dict(data: dict) -> "MediaResult":
        """Inverse of :meth:`to_dict` (used by the run cache/journal)."""
        return MediaResult(**data)


@dataclass
class CampaignResult:
    """Everything one campaign run produced."""

    injections: list[InjectionResult] = field(default_factory=list)
    media: list[MediaResult] = field(default_factory=list)
    schemes: tuple[str, ...] = ()
    steps: int = 0
    seed: int = 0

    @property
    def passed(self) -> bool:
        """Every experiment matched its expected outcome."""
        return all(r.ok for r in self.injections) and all(r.ok for r in self.media)

    def failures(self) -> list[str]:
        """Human-readable lines for every mismatching experiment."""
        out = []
        for r in self.injections:
            if not r.ok:
                out.append(
                    f"{r.scheme} @ {r.site}: got {r.outcome}, expected "
                    f"{r.expected} ({'; '.join(r.problems) or 'no detail'})"
                )
        for m in self.media:
            if not m.ok:
                out.append(
                    f"{m.scheme} media/{m.kind} @ {m.addr:#x}: got "
                    f"{m.outcome}, expected {m.expected} ({m.detail})"
                )
        return out

    def sites_fired(self) -> set[str]:
        """Distinct crash sites at which an injection actually fired."""
        return {r.site for r in self.injections if r.fired}

    def to_dict(self) -> dict:
        return {
            "schemes": list(self.schemes),
            "steps": self.steps,
            "seed": self.seed,
            "passed": self.passed,
            "injections": [r.to_dict() for r in self.injections],
            "media": [m.to_dict() for m in self.media],
        }

    def summary(self) -> str:
        """A compact per-scheme outcome table."""
        lines = [
            f"fault campaign: {len(self.injections)} injections over "
            f"{len(self.schemes)} scheme(s), {len(self.sites_fired())} "
            f"distinct sites fired, {len(self.media)} media experiments",
        ]
        for r in self.injections:
            mark = "ok " if r.ok else "FAIL"
            lines.append(
                f"  [{mark}] {r.scheme:12s} {r.site:26s} -> {r.outcome}"
                + ("" if r.outcome == r.expected else f" (expected {r.expected})")
            )
        for m in self.media:
            mark = "ok " if m.ok else "FAIL"
            lines.append(
                f"  [{mark}] {m.scheme:12s} media.{m.kind:10s}"
                f"{'':11s}-> {m.outcome}"
            )
        lines.append("PASS" if self.passed else "FAIL: " + "; ".join(self.failures()))
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# workload
# ---------------------------------------------------------------------------


def _payload(seed: int, step: int) -> bytes:
    return hashlib.blake2b(
        f"faults:{seed}:{step}".encode(), digest_size=64
    ).digest()


class _HotSetWorkload:
    """Deterministic round-robin over 8 hot blocks on 2 pages.

    160 steps put ~20 updates on every block — past the update-times
    limit N=16, so designs without a staleness bound (w/o CC) genuinely
    cannot recover, while bounded designs stay within their retry budget.
    """

    PAGES = (0x2000, 0x3000)
    BLOCKS_PER_PAGE = 4

    def __init__(self, steps: int, seed: int) -> None:
        self.steps = steps
        self.seed = seed
        self.addrs = [
            page + block * 64
            for page in self.PAGES
            for block in range(self.BLOCKS_PER_PAGE)
        ]
        #: addr -> plaintext of the last *completed* write-back.
        self.expected: dict[int, bytes] = {}
        #: (addr, old value, attempted value) of the write-back a crash
        #: interrupted, or None.
        self.inflight: tuple[int, bytes | None, bytes] | None = None
        self.now = 0

    def warmup(self, scheme) -> None:
        """One unarmed round so every hot block has a committed value."""
        for i, addr in enumerate(self.addrs):
            data = _payload(self.seed, -1 - i)
            scheme.writeback(self.now, addr, data)
            self.expected[addr] = data
            self.now += 500

    def main(self, scheme) -> None:
        """The armed loop; a PowerFailure leaves ``inflight`` set."""
        for i in range(self.steps):
            addr = self.addrs[i % len(self.addrs)]
            data = _payload(self.seed, i)
            self.inflight = (addr, self.expected.get(addr), data)
            scheme.writeback(self.now, addr, data)
            self.expected[addr] = data
            self.inflight = None
            self.now += 500


# ---------------------------------------------------------------------------
# the oracle
# ---------------------------------------------------------------------------


def _expected_outcome(scheme_name: str, site: str) -> str:
    """The differential matrix: what each design's contract promises.

    cc-NVM (both variants) must come back clean from *every* reachable
    micro-step — that is the paper's claim.  SC and Osiris Plus write
    the data block before their metadata reaches the root, so a crash
    exactly inside that window false-alarms their root-freshness check
    (data intact, replay reported).  w/o CC enforces no staleness bound,
    so once the hot loop has pushed per-block staleness past N a crash
    strands unrecoverable blocks (the campaign crashes it at the *last*
    site visit, where the accumulated staleness is maximal).
    """
    if scheme_name.startswith("ccnvm"):
        return "RECOVERED"
    if scheme_name in ("sc", "osiris_plus"):
        return "FALSE_ALARM" if site == "writeback.after_data" else "RECOVERED"
    if scheme_name == "no_cc":
        return "DEGRADED"
    raise ValueError(f"no expected outcome for scheme {scheme_name!r}")


def _classify(report) -> str:
    if any(f.kind == "tree_tampering" for f in report.findings):
        return "FAILED"
    if report.unrecoverable_blocks:
        return "DEGRADED"
    if report.potential_replay_detected:
        # No attacker exists in this campaign, so a replay report over a
        # pure crash is by definition a false alarm.
        return "FALSE_ALARM"
    return "RECOVERED" if report.success else "FAILED"


def _check_invariants(
    scheme, report, workload: _HotSetWorkload, problems: list[str]
) -> None:
    """The oracle's hard checks, shared by every outcome class."""
    config: SystemConfig = scheme.config

    if scheme.tcb.root_old != scheme.tcb.root_new:
        problems.append("TCB roots disagree after recovery")
    if not scheme.merkle.verify_consistent(scheme.tcb.root_old):
        problems.append("rebuilt tree does not match the TCB root")
    if scheme.tcb.recovery_pending:
        problems.append("recovery_pending still set after recovery returned")

    bound = config.epoch.update_limit * max(1, len(workload.expected))
    if report.total_retries > bound:
        problems.append(
            f"retry total {report.total_retries} exceeds N x blocks = {bound}"
        )

    unrecoverable = set(report.unrecoverable_blocks)
    t = workload.now + 100_000
    for addr in sorted(workload.expected):
        want = workload.expected[addr]
        allowed = {want}
        if workload.inflight is not None and addr == workload.inflight[0]:
            allowed = {v for v in workload.inflight[1:] if v is not None}
        try:
            got, _ = scheme.read(t, addr)
        except IntegrityError:
            if addr not in unrecoverable:
                problems.append(
                    f"block {addr:#x} unreadable but not reported unrecoverable"
                )
            continue
        if addr in unrecoverable:
            # A block written off by recovery must not silently read back.
            problems.append(f"unrecoverable block {addr:#x} read back cleanly")
        elif got not in allowed:
            problems.append(f"block {addr:#x} read back a value never written")

    # Usability: a fresh write-back on an untouched page round-trips.
    probe_addr = 0x7000
    probe = _payload(workload.seed, 1_000_000)
    scheme.writeback(t, probe_addr, probe)
    got, _ = scheme.read(t + 10_000, probe_addr)
    if got != probe:
        problems.append("post-recovery write-back did not round-trip")


def _discover(scheme_name: str, cfg: CampaignConfig) -> dict[str, int]:
    """Record how often the workload (and one recovery) visits each site."""
    scheme = create_scheme(scheme_name, data_capacity=cfg.data_capacity, seed=cfg.seed)
    injector = FaultInjector()
    injector.attach(scheme)
    workload = _HotSetWorkload(cfg.steps, cfg.seed)
    workload.warmup(scheme)
    injector.reset_counts()
    workload.main(scheme)
    scheme.crash()
    scheme.recover()
    return dict(injector.hits)


def _inject(scheme_name: str, site: str, hit: int, cfg: CampaignConfig) -> InjectionResult:
    """Run one crash experiment end to end."""
    scheme = create_scheme(scheme_name, data_capacity=cfg.data_capacity, seed=cfg.seed)
    injector = FaultInjector()
    injector.attach(scheme)
    workload = _HotSetWorkload(cfg.steps, cfg.seed)
    workload.warmup(scheme)

    fired = False
    double_crash = site in RECOVERY_SITES
    if double_crash:
        # Crash *recovery*: full workload, power failure, then a second
        # power failure at the armed site inside the first recovery run.
        workload.main(scheme)
        scheme.crash()
        injector.arm(site, hit)
        try:
            scheme.recover()
        except PowerFailure:
            fired = True
            scheme.crash()
        if not fired:
            return InjectionResult(
                scheme_name, site, hit, False, "NOT_REACHED",
                _expected_outcome(scheme_name, site), False,
                problems=["armed recovery site never fired"],
            )
        report = scheme.recover()
    else:
        injector.arm(site, hit)
        try:
            workload.main(scheme)
        except PowerFailure:
            fired = True
        if not fired:
            return InjectionResult(
                scheme_name, site, hit, False, "NOT_REACHED",
                "NOT_REACHED", True,
                notes=["site not reached by this scheme/workload"],
            )
        scheme.crash()
        report = scheme.recover()

    problems: list[str] = []
    _check_invariants(scheme, report, workload, problems)
    outcome = _classify(report)
    if problems:
        outcome = "FAILED"
    expected = _expected_outcome(scheme_name, site)
    notes = list(report.notes)
    if double_crash:
        notes.append("double crash: recovery was interrupted and restarted")
    return InjectionResult(
        scheme_name,
        site,
        hit,
        fired,
        outcome,
        expected,
        outcome == expected and not problems,
        total_retries=report.total_retries,
        nwb=report.nwb,
        unrecoverable=len(report.unrecoverable_blocks),
        problems=problems,
        notes=notes,
    )


# ---------------------------------------------------------------------------
# media phase
# ---------------------------------------------------------------------------


def _media_phase(scheme_name: str, cfg: CampaignConfig) -> list[MediaResult]:
    scheme = create_scheme(scheme_name, data_capacity=cfg.data_capacity, seed=cfg.seed)
    workload = _HotSetWorkload(cfg.steps, cfg.seed)
    workload.warmup(scheme)
    model = MediaFaultModel()
    scheme.nvm.set_media_model(model)
    limit = scheme.config.controller.read_retry_limit
    t = workload.now + 1000
    results: list[MediaResult] = []

    # Transient fault: absorbed by the controller's bounded retry.
    addr = workload.addrs[0]
    model.inject_transient(addr, count=2)
    try:
        got, _ = scheme.read(t, addr)
        if got != workload.expected[addr]:
            outcome, detail = "wrong_data", "read returned a value never written"
        elif model.delivered["transient"] != 2:
            outcome, detail = "not_delivered", "fault schedule never consulted"
        else:
            outcome, detail = "absorbed", f"{2} faulty reads retried away"
    except (PermanentMediaError, IntegrityError) as exc:
        outcome, detail = "escalated", str(exc)
    results.append(
        MediaResult(scheme_name, "transient", addr, outcome, "absorbed",
                    outcome == "absorbed", detail)
    )

    # Permanent fault: retry budget exhausts into a located report.
    addr = workload.addrs[1]
    model.inject_permanent(addr)
    try:
        scheme.read(t + 1000, addr)
        outcome, detail = "undetected", "stuck line read back without error"
    except PermanentMediaError as exc:
        located = (
            exc.addr == addr
            and exc.region == "data"
            and exc.attempts == limit + 1
        )
        outcome = "degraded_located" if located else "mislocated"
        detail = str(exc)
    model.clear(addr)
    results.append(
        MediaResult(scheme_name, "permanent", addr, outcome, "degraded_located",
                    outcome == "degraded_located", detail)
    )

    # Silent bit flip: only the data-HMAC layer can catch it.
    addr = workload.addrs[2]
    model.inject_silent_bitflip(addr, byte_index=5)
    try:
        scheme.read(t + 2000, addr)
        outcome, detail = "undetected", "corrupted line decrypted without complaint"
    except IntegrityError as exc:
        outcome, detail = "detected_by_hmac", str(exc)
    model.clear(addr)
    results.append(
        MediaResult(scheme_name, "silent", addr, outcome, "detected_by_hmac",
                    outcome == "detected_by_hmac", detail)
    )

    scheme.nvm.set_media_model(None)
    return results


# ---------------------------------------------------------------------------
# driver
# ---------------------------------------------------------------------------


def _campaign_spec(kind: str, scheme: str, cfg: CampaignConfig, **extra):
    """One campaign phase as an orchestratable run spec."""
    from repro.runs import RunSpec

    params = {"steps": cfg.steps, "data_capacity": cfg.data_capacity}
    params.update(extra)
    return RunSpec(kind=kind, scheme=scheme, seed=cfg.seed, params=params)


def run_campaign(
    cfg: CampaignConfig | None = None,
    jobs: int = 1,
    cache: bool = False,
    cache_root=None,
    timeout: float | None = None,
    progress=None,
) -> CampaignResult:
    """Sweep schemes x crash sites (x media faults) and judge every run.

    Two orchestrated waves: a per-scheme *discover* pass records how often
    the workload visits each crash site, then every armed injection and
    media phase runs as its own isolated spec — in parallel under
    ``jobs``, content-cached under ``cache``.
    """
    from repro.runs import orchestrate

    cfg = cfg or CampaignConfig()
    result = CampaignResult(schemes=cfg.schemes, steps=cfg.steps, seed=cfg.seed)

    discover = {s: _campaign_spec("discover", s, cfg) for s in cfg.schemes}
    wave1 = orchestrate(
        "faults-discover", list(discover.values()), jobs=jobs, use_cache=cache,
        cache_root=cache_root, timeout=timeout, progress=progress,
    )
    wave1.raise_on_failure()
    counts = {s: wave1.payload(spec) for s, spec in discover.items()}

    #: (scheme, site) -> spec | synthesized NOT_REACHED result.
    plan: list[tuple[str, object]] = []
    for scheme_name in cfg.schemes:
        for site in sites_for_scheme(scheme_name):
            if cfg.sites is not None and site not in cfg.sites:
                continue
            count = counts[scheme_name].get(site, 0)
            if count == 0:
                plan.append(
                    (
                        scheme_name,
                        InjectionResult(
                            scheme_name, site, 0, False, "NOT_REACHED",
                            "NOT_REACHED", True,
                            notes=["site not reached by this scheme/workload"],
                        ),
                    )
                )
                continue
            # Crash at the middle visit so both earlier and later
            # protocol activity surround the failure.  The design with
            # no staleness bound is instead crashed at the last visit:
            # mid-loop its counters are ≤ N updates stale and roll
            # forward fine — only the accumulated tail shows the miss.
            if site in RECOVERY_SITES:
                hit = 1
            elif scheme_name == "no_cc":
                hit = count
            else:
                hit = max(1, count // 2)
            plan.append(
                (
                    scheme_name,
                    _campaign_spec("injection", scheme_name, cfg, site=site, hit=hit),
                )
            )
    media_specs = (
        {s: _campaign_spec("media", s, cfg) for s in cfg.schemes} if cfg.media else {}
    )

    from repro.runs import RunSpec

    pending = [spec for _, spec in plan if isinstance(spec, RunSpec)]
    pending.extend(media_specs.values())
    wave2 = orchestrate(
        "faults-campaign", pending, jobs=jobs, use_cache=cache,
        cache_root=cache_root, timeout=timeout, progress=progress,
    )
    wave2.raise_on_failure()

    for scheme_name in cfg.schemes:
        for owner, item in plan:
            if owner != scheme_name:
                continue
            if isinstance(item, InjectionResult):
                result.injections.append(item)
            else:
                result.injections.append(
                    InjectionResult.from_dict(wave2.payload(item))
                )
        if cfg.media:
            result.media.extend(
                MediaResult.from_dict(m)
                for m in wave2.payload(media_specs[scheme_name])
            )
    return result
