"""The fault injector: deterministic crashes at named micro-steps.

The injector is a callable that plugs into the plain ``fault_hook``
attributes the core exposes (scheme, WPQ, dirty address queue; the
recovery manager inherits the scheme's hook).  It runs in one of two
modes:

* **discovery** (default) — count how many times each site is visited by
  a given workload, without interfering.  Campaigns use a discovery pass
  to learn which sites a scheme/workload pair can reach and how often,
  then pick a deterministic visit (e.g. the middle one) to crash at;
* **armed** — raise :class:`PowerFailure` at exactly the *n*-th visit of
  one site, then disarm, so the crash is reproducible and a subsequent
  recovery run is not re-crashed unless re-armed.
"""

from __future__ import annotations

from collections import Counter

from repro.faults.plan import ALL_SITE_NAMES, PowerFailure


class FaultInjector:
    """Counts site visits and, when armed, crashes at a chosen one."""

    def __init__(self) -> None:
        #: Visits per site since construction (or :meth:`reset_counts`).
        self.hits: Counter[str] = Counter()
        self._armed_site: str | None = None
        self._armed_hit = 0
        #: Remaining (site, hit) pairs of an armed schedule; the head pair
        #: auto-arms after each fire so a second crash can land *inside*
        #: the recovery run the first one triggered.
        self._schedule: list[tuple[str, int]] = []
        #: Total injected power failures.
        self.fired = 0

    # -- wiring ---------------------------------------------------------------

    def attach(self, scheme) -> None:
        """Install this injector's hook on *scheme* and its components.

        Covers the scheme itself (write-back/drain/recovery sites — the
        scheme forwards its hook to the recovery manager), its WPQ, and
        its dirty address queue when the design has one.
        """
        scheme.fault_hook = self
        scheme.wpq.fault_hook = self
        queue = getattr(scheme, "queue", None)
        if queue is not None:
            queue.fault_hook = self

    # -- arming ---------------------------------------------------------------

    def arm(self, site: str, hit: int = 1) -> None:
        """Crash at the *hit*-th visit of *site* (counted from now on).

        Raises ``ValueError`` for names not in the registry — arming a
        typo would otherwise silently never fire — and ``RuntimeError``
        when a crash is already pending: re-arming mid-run would silently
        clobber the armed site/hit and make the experiment unreproducible.
        Call :meth:`disarm` first to change an armed crash deliberately.
        """
        if self._armed_site is not None:
            raise RuntimeError(
                f"injector already armed at {self._armed_site!r} "
                f"(hit {self._armed_hit}); disarm() before re-arming"
            )
        self._validate(site, hit)
        self._armed_site = site
        self._armed_hit = hit
        self.hits[site] = 0

    def arm_schedule(self, pairs) -> None:
        """Arm a sequence of crashes: fire at each (site, hit) in turn.

        The first pair arms immediately; after every injected failure the
        next pair arms itself, so the caller's recover/crash loop takes a
        power failure at each scheduled point — including points *inside*
        the recovery run started after the previous crash (the nested
        crash-during-recovery case the restartable ``recovery_pending``
        path exists for).
        """
        pairs = [(site, hit) for site, hit in pairs]
        if not pairs:
            raise ValueError("an empty schedule never fires")
        for site, hit in pairs:
            self._validate(site, hit)
        head, *rest = pairs
        self.arm(*head)
        self._schedule = rest

    def _validate(self, site: str, hit: int) -> None:
        if site not in ALL_SITE_NAMES:
            raise ValueError(f"unknown fault site {site!r}")
        if hit < 1:
            raise ValueError("hit numbers are 1-based")

    def disarm(self) -> None:
        """Cancel any armed crash and pending schedule (counting continues)."""
        self._armed_site = None
        self._armed_hit = 0
        self._schedule = []

    @property
    def armed(self) -> str | None:
        """The armed site name, or ``None`` in discovery mode."""
        return self._armed_site

    def reset_counts(self) -> None:
        """Zero the visit counters (e.g. between discovery phases)."""
        self.hits.clear()

    # -- the hook -------------------------------------------------------------

    def __call__(self, site: str) -> None:
        self.hits[site] += 1
        if site == self._armed_site and self.hits[site] == self._armed_hit:
            self._armed_site = None
            self._armed_hit = 0
            if self._schedule:
                next_site, next_hit = self._schedule.pop(0)
                self._armed_site = next_site
                self._armed_hit = next_hit
                self.hits[next_site] = 0
            self.fired += 1
            raise PowerFailure(site)
