"""The fault injector: deterministic crashes at named micro-steps.

The injector is a callable that plugs into the plain ``fault_hook``
attributes the core exposes (scheme, WPQ, dirty address queue; the
recovery manager inherits the scheme's hook).  It runs in one of two
modes:

* **discovery** (default) — count how many times each site is visited by
  a given workload, without interfering.  Campaigns use a discovery pass
  to learn which sites a scheme/workload pair can reach and how often,
  then pick a deterministic visit (e.g. the middle one) to crash at;
* **armed** — raise :class:`PowerFailure` at exactly the *n*-th visit of
  one site, then disarm, so the crash is reproducible and a subsequent
  recovery run is not re-crashed unless re-armed.
"""

from __future__ import annotations

from collections import Counter

from repro.faults.plan import ALL_SITE_NAMES, PowerFailure


class FaultInjector:
    """Counts site visits and, when armed, crashes at a chosen one."""

    def __init__(self) -> None:
        #: Visits per site since construction (or :meth:`reset_counts`).
        self.hits: Counter[str] = Counter()
        self._armed_site: str | None = None
        self._armed_hit = 0
        #: Total injected power failures.
        self.fired = 0

    # -- wiring ---------------------------------------------------------------

    def attach(self, scheme) -> None:
        """Install this injector's hook on *scheme* and its components.

        Covers the scheme itself (write-back/drain/recovery sites — the
        scheme forwards its hook to the recovery manager), its WPQ, and
        its dirty address queue when the design has one.
        """
        scheme.fault_hook = self
        scheme.wpq.fault_hook = self
        queue = getattr(scheme, "queue", None)
        if queue is not None:
            queue.fault_hook = self

    # -- arming ---------------------------------------------------------------

    def arm(self, site: str, hit: int = 1) -> None:
        """Crash at the *hit*-th visit of *site* (counted from now on).

        Raises ``ValueError`` for names not in the registry — arming a
        typo would otherwise silently never fire.
        """
        if site not in ALL_SITE_NAMES:
            raise ValueError(f"unknown fault site {site!r}")
        if hit < 1:
            raise ValueError("hit numbers are 1-based")
        self._armed_site = site
        self._armed_hit = hit
        self.hits[site] = 0

    def disarm(self) -> None:
        """Cancel any armed crash (visit counting continues)."""
        self._armed_site = None
        self._armed_hit = 0

    @property
    def armed(self) -> str | None:
        """The armed site name, or ``None`` in discovery mode."""
        return self._armed_site

    def reset_counts(self) -> None:
        """Zero the visit counters (e.g. between discovery phases)."""
        self.hits.clear()

    # -- the hook -------------------------------------------------------------

    def __call__(self, site: str) -> None:
        self.hits[site] += 1
        if site == self._armed_site and self.hits[site] == self._armed_hit:
            self.disarm()
            self.fired += 1
            raise PowerFailure(site)
