"""NVM media-fault model: transient, permanent and silent read faults.

Plugs into :class:`~repro.mem.nvm.NVMDevice` via ``set_media_model``.
Three fault classes, mirroring how real PCM fails:

* **transient** — resistance-drift style faults the device's ECC detects
  but cannot correct.  The read raises
  :class:`~repro.mem.nvm.TransientReadFault`; the memory controller
  absorbs it with bounded retry-with-backoff (drift faults usually clear
  on a re-read).  Modeled as "the next *k* reads of this line fault";
* **permanent** — a stuck line: every read faults, so the controller's
  retry budget runs out and it raises
  :class:`~repro.mem.nvm.PermanentMediaError` carrying the located
  address/region — graceful degradation with a report, never a silent
  wrong answer;
* **silent** — a corruption ECC misses.  The device delivers a
  bit-flipped line; only the integrity layer (data HMAC / Merkle check)
  can notice, which is exactly the paper's argument for authenticating
  everything that crosses the chip boundary.
"""

from __future__ import annotations


class MediaFaultModel:
    """Per-address fault schedule consulted by the NVM device on reads."""

    def __init__(self) -> None:
        #: addr -> remaining ECC-detectable faulty reads.
        self._transient: dict[int, int] = {}
        #: Addresses that fault on every read.
        self._permanent: set[int] = set()
        #: addr -> byte index whose lowest bit is flipped on delivery.
        self._silent: dict[int, int] = {}
        #: Faults delivered, per class.
        self.delivered = {"transient": 0, "permanent": 0, "silent": 0}

    # -- scheduling -----------------------------------------------------------

    def inject_transient(self, addr: int, count: int = 1) -> None:
        """Make the next *count* reads of *addr* fault detectably."""
        if count < 1:
            raise ValueError("transient faults need a positive read count")
        self._transient[addr] = count

    def inject_permanent(self, addr: int) -> None:
        """Make every read of *addr* fault detectably (a stuck line)."""
        self._permanent.add(addr)

    def inject_silent_bitflip(self, addr: int, byte_index: int = 0) -> None:
        """Deliver *addr* with one flipped bit and no ECC indication."""
        if not 0 <= byte_index < 64:
            raise ValueError("byte index must address one of the 64 line bytes")
        self._silent[addr] = byte_index

    def clear(self, addr: int | None = None) -> None:
        """Heal *addr* (or, with ``None``, every scheduled fault)."""
        if addr is None:
            self._transient.clear()
            self._permanent.clear()
            self._silent.clear()
            return
        self._transient.pop(addr, None)
        self._permanent.discard(addr)
        self._silent.pop(addr, None)

    # -- the device-side protocol ---------------------------------------------

    def on_read(self, addr: int) -> str | None:
        """Classify this read: ``None`` | ``'detectable'`` | ``'silent'``."""
        if addr in self._permanent:
            self.delivered["permanent"] += 1
            return "detectable"
        remaining = self._transient.get(addr, 0)
        if remaining > 0:
            if remaining == 1:
                del self._transient[addr]
            else:
                self._transient[addr] = remaining - 1
            self.delivered["transient"] += 1
            return "detectable"
        if addr in self._silent:
            self.delivered["silent"] += 1
            return "silent"
        return None

    def corrupt(self, addr: int, line: bytes) -> bytes:
        """The silently corrupted image of *line* (one flipped bit)."""
        i = self._silent[addr]
        return line[:i] + bytes([line[i] ^ 0x01]) + line[i + 1:]
