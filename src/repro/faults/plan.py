"""The crash-site registry and the power-failure signal.

Every instrumented micro-step in the core carries a dotted site name
(``component.step``).  The registry below is the single source of truth
for what exists, where it sits in the protocol, and which designs can
reach it — the campaign uses it to build its sweep and the CLI to print
the catalogue.

Site semantics (what is durable when the lights go out there):

=============================  ====================================================
site                           moment
=============================  ====================================================
``writeback.before_data``      counter incremented on-chip; data block not yet
                               accepted into the WPQ
``writeback.after_data``       data + data HMAC durable (ADR) and ``Nwb`` bumped —
                               one atomic micro-op; tree update still pending
``daq.after_reserve``          the write-back's metadata path reserved in the
                               (volatile) dirty address queue
``daq.before_commit``          a drain trigger fired; the queue is about to close
                               the epoch
``drain.before_recompute``     epoch addresses captured; deferred spreading not
                               yet recomputed
``drain.after_recompute``      cache-resident tree fully recomputed; nothing
                               flushed yet
``wpq.after_start``            the drainer's ``start`` signal issued — lines
                               blocked in the WPQ from here on
``wpq.mid_batch``              a metadata line appended to the (un-ended) batch
``wpq.before_end``             full batch buffered; ``end`` signal not yet given —
                               a crash drops the whole batch
``wpq.after_end``              ``end`` signal given; ADR guarantees the batch
                               reaches NVM, but ``root_old`` has not caught up
``drain.before_root_commit``   batch durable; the TCB root commit is next
``drain.after_root_commit``    epoch fully committed (``root_old`` = ``root_new``)
``recovery.after_counters``    recovery rolled counters forward (and possibly
                               re-encrypted pages) but applied nothing to leaves
``recovery.mid_rebuild``       recovered counter leaves poked into NVM; the tree
                               rebuild is in flight
``recovery.before_root_set``   tree rebuilt; the final root-register update (which
                               also clears ``recovery_pending``) is next
=============================  ====================================================
"""

from __future__ import annotations

from dataclasses import dataclass


class PowerFailure(Exception):
    """The injector's crash signal: power was lost at *site*.

    Raised out of the instrumented micro-step; the driver must call the
    scheme's ``crash()`` (which resolves the WPQ per ADR and drops all
    volatile state) before touching the machine again.
    """

    def __init__(self, site: str) -> None:
        super().__init__(f"injected power failure at {site}")
        self.site = site


#: Scheme groups used in the registry.
_ALL = ("no_cc", "sc", "osiris_plus", "ccnvm_no_ds", "ccnvm", "ccnvm_locate")
_ATOMIC = ("sc", "ccnvm_no_ds", "ccnvm", "ccnvm_locate")
_EPOCH = ("ccnvm_no_ds", "ccnvm", "ccnvm_locate")


@dataclass(frozen=True)
class FaultSite:
    """One instrumented micro-step."""

    name: str
    component: str
    description: str
    #: Scheme names whose execution can reach this site.
    schemes: tuple[str, ...]


SITES: tuple[FaultSite, ...] = (
    FaultSite(
        "writeback.before_data",
        "scheme",
        "counter incremented on-chip, data block not yet in the WPQ",
        _ALL,
    ),
    FaultSite(
        "writeback.after_data",
        "scheme",
        "data + data HMAC durable and Nwb bumped; tree update pending",
        _ALL,
    ),
    FaultSite(
        "writeback.after_stoploss",
        "scheme",
        "Osiris Plus's Nth-update counter persist committed (ordered)",
        ("osiris_plus",),
    ),
    FaultSite(
        "daq.after_reserve",
        "drainer",
        "metadata path reserved in the volatile dirty address queue",
        _EPOCH,
    ),
    FaultSite(
        "daq.before_commit",
        "drainer",
        "a drain trigger fired; the epoch is about to close",
        _EPOCH,
    ),
    FaultSite(
        "drain.before_recompute",
        "scheme",
        "epoch addresses captured; deferred spreading not yet recomputed",
        _EPOCH,
    ),
    FaultSite(
        "drain.after_recompute",
        "scheme",
        "cached tree fully recomputed; nothing flushed yet",
        _EPOCH,
    ),
    FaultSite(
        "wpq.after_start",
        "wpq",
        "start signal issued: metadata lines blocked in the WPQ",
        _ATOMIC,
    ),
    FaultSite(
        "wpq.mid_batch",
        "wpq",
        "a metadata line appended to the un-ended atomic batch",
        _ATOMIC,
    ),
    FaultSite(
        "wpq.before_end",
        "wpq",
        "full batch buffered; a crash here drops it wholesale",
        _ATOMIC,
    ),
    FaultSite(
        "wpq.after_end",
        "wpq",
        "end signal given: ADR completes the batch, root commit pending",
        _ATOMIC,
    ),
    FaultSite(
        "drain.before_root_commit",
        "scheme",
        "batch durable in NVM; the TCB root commit is next",
        _EPOCH,
    ),
    FaultSite(
        "drain.after_root_commit",
        "scheme",
        "epoch fully committed (root_old caught up, Nwb reset)",
        _EPOCH,
    ),
    FaultSite(
        "recovery.after_counters",
        "recovery",
        "counters rolled forward; nothing applied to the NVM leaves yet",
        _ALL,
    ),
    FaultSite(
        "recovery.mid_rebuild",
        "recovery",
        "recovered leaves poked into NVM; tree rebuild in flight",
        _ALL,
    ),
    FaultSite(
        "recovery.before_root_set",
        "recovery",
        "tree rebuilt; final root-register update pending",
        _ALL,
    ),
)

ALL_SITE_NAMES: tuple[str, ...] = tuple(s.name for s in SITES)

#: Sites reached only while a recovery run is itself executing — arming
#: one of these exercises the crash-during-recovery (restartable) path.
RECOVERY_SITES: frozenset[str] = frozenset(
    s.name for s in SITES if s.component == "recovery"
)

_BY_NAME = {s.name: s for s in SITES}


def site(name: str) -> FaultSite:
    """Look one site up by name (raises ``KeyError`` on unknown names)."""
    return _BY_NAME[name]


def sites_for_scheme(scheme_name: str) -> tuple[str, ...]:
    """The site names *scheme_name*'s execution can reach, in sweep order."""
    return tuple(s.name for s in SITES if scheme_name in s.schemes)
