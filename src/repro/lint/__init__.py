"""Persistence-domain static analyzer (``repro lint``).

Checks the cc-NVM simulator's write-ordering discipline without running
it: persistent-domain stores (P1), crash-site registry coherence and
persist-point coverage (P2), atomic-batch bracketing (P3), volatile
reads on recovery paths (P4) and the scheme contract (P5).  See
DESIGN.md's persistence-domain section for the rule rationale and the
baseline workflow.
"""

from repro.lint.findings import RULES, Baseline, Finding, sort_findings
from repro.lint.model import CodeModel, build_model
from repro.lint.runner import LintConfig, LintReport, run_lint, write_baseline

__all__ = [
    "RULES",
    "Baseline",
    "CodeModel",
    "Finding",
    "LintConfig",
    "LintReport",
    "build_model",
    "run_lint",
    "sort_findings",
    "write_baseline",
]
