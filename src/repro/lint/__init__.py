"""Persistence-domain static analyzer (``repro lint``).

Checks the cc-NVM simulator's write-ordering discipline without running
it: persistent-domain stores (P1), crash-site registry coherence and
persist-point coverage (P2), atomic-batch bracketing (P3), volatile
reads on recovery paths (P4), the scheme contract (P5), interprocedural
persist-order dataflow (P6), trace-seam coherence (P7), determinism of
spec-hashed paths (D0-D2) and baseline justification anchors (B0).
``--cross-check`` additionally replays a smoke persist trace and diffs
the dynamically observed persist sites against the statically derived
set in both directions.  See DESIGN.md's persistence-domain section for
the rule rationale and the baseline workflow.
"""

from repro.lint.callgraph import CallGraph, CallSite, build_callgraph
from repro.lint.crosscheck import (
    CrossCheckReport,
    cross_check,
    dynamic_persist_sites,
    static_persist_sites,
)
from repro.lint.findings import RULES, Baseline, Finding, sort_findings
from repro.lint.model import CodeModel, build_model
from repro.lint.ordering import FlowAnalysis, OrderingOps, Summary
from repro.lint.runner import (
    SCHEMA_VERSION,
    LintConfig,
    LintReport,
    run_lint,
    write_baseline,
)

__all__ = [
    "RULES",
    "SCHEMA_VERSION",
    "Baseline",
    "CallGraph",
    "CallSite",
    "CodeModel",
    "CrossCheckReport",
    "Finding",
    "FlowAnalysis",
    "LintConfig",
    "LintReport",
    "OrderingOps",
    "Summary",
    "build_callgraph",
    "build_model",
    "cross_check",
    "dynamic_persist_sites",
    "run_lint",
    "sort_findings",
    "static_persist_sites",
    "write_baseline",
]
