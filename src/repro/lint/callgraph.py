"""Interprocedural call graph over the static code model.

The persist-order dataflow rules (P6/P7) and the determinism rules
(D0-D2) need to reason *across* functions: a seam method's ordering
obligation is discharged by a fence inside a callee, a register bump is
bracketed by its caller's combined group, and a spec-hashed entry point
reaches nondeterminism three calls deep.  This module derives the call
graph the same way the rest of the analyzer works — from the AST alone,
never importing the analyzed tree.

Resolution is deliberately the same receiver-name scheme the structural
rules use (no type inference):

* ``self.m(...)`` resolves against the enclosing class's lineage, plus
  every subclass override — **virtual dispatch**: a call through a seam
  the base class defines must consider every design's implementation;
* ``x.m(...)`` where ``x`` is a declared ``aka`` alias resolves against
  the aliased class (and its overrides);
* a bare ``f(...)`` resolves to a module-level function of the same
  module.

Unresolved calls (stdlib, unknown receivers) keep their dotted name so
the D-rules can still match ``time.time(...)`` by name.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.lint.model import CodeModel, Scope, call_name, receiver_name


def scope_key(scope: Scope) -> str:
    """Stable node identity: ``path::symbol``."""
    return f"{scope.path}::{scope.symbol}"


def dotted_name(func: ast.AST) -> str:
    """Best-effort dotted rendering of a call target (``time.time``)."""
    parts: list[str] = []
    node = func
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


@dataclass(frozen=True)
class CallSite:
    """One call expression inside one function scope."""

    caller: str            # scope key of the enclosing function
    line: int
    col: int
    name: str              # called method/function name
    receiver: str | None   # last identifier of the receiver, if any
    dotted: str            # full dotted rendering for name-based matching
    targets: tuple[str, ...]   # resolved callee scope keys (virtual set)


@dataclass
class CallGraph:
    """Call sites, edges and reachability over function scopes."""

    model: CodeModel
    #: Function scopes by key.
    functions: dict[str, Scope] = field(default_factory=dict)
    #: Call sites grouped by caller key, in source order.
    sites: dict[str, list[CallSite]] = field(default_factory=dict)
    #: Reverse edges: callee key -> list of call sites targeting it.
    callers: dict[str, list[CallSite]] = field(default_factory=dict)

    def callees(self, key: str) -> list[CallSite]:
        return self.sites.get(key, [])

    def reachable(self, entries: list[str]) -> set[str]:
        """Function keys transitively callable from *entries*."""
        seen = set()
        frontier = [key for key in entries if key in self.functions]
        while frontier:
            key = frontier.pop()
            if key in seen:
                continue
            seen.add(key)
            for site in self.sites.get(key, ()):
                frontier.extend(t for t in site.targets if t not in seen)
        return seen


def build_callgraph(model: CodeModel) -> CallGraph:
    graph = CallGraph(model)
    method_index: dict[tuple[str, str], str] = {}
    module_index: dict[tuple[str, str], str] = {}
    for scope in model.scopes:
        if not isinstance(scope.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        key = scope_key(scope)
        graph.functions[key] = scope
        parts = scope.symbol.split(".")
        if scope.class_name is not None and len(parts) >= 2:
            # `Class.method` (possibly nested deeper; attribute the method
            # name to the innermost enclosing class).
            method_index[(scope.class_name, parts[-1])] = key
        elif len(parts) == 1:
            module_index[(scope.path, scope.symbol)] = key

    resolver = _Resolver(model, method_index, module_index)
    for key, scope in graph.functions.items():
        sites = []
        for node in _calls_in_order(scope):
            name = call_name(node.func)
            if name is None:
                continue
            recv = (
                receiver_name(node.func.value)
                if isinstance(node.func, ast.Attribute)
                else None
            )
            targets = resolver.resolve(scope, name, recv)
            site = CallSite(
                caller=key,
                line=node.lineno,
                col=node.col_offset,
                name=name,
                receiver=recv,
                dotted=dotted_name(node.func),
                targets=targets,
            )
            sites.append(site)
            for target in targets:
                graph.callers.setdefault(target, []).append(site)
        graph.sites[key] = sites
    return graph


def _calls_in_order(scope: Scope):
    """Call nodes of one scope in source order, nested defs excluded."""
    calls = [n for n in scope.walk_own() if isinstance(n, ast.Call)]
    calls.sort(key=lambda n: (n.lineno, n.col_offset))
    return calls


class _Resolver:
    def __init__(self, model, method_index, module_index) -> None:
        self.model = model
        self.method_index = method_index
        self.module_index = module_index
        self._cache: dict[tuple, tuple[str, ...]] = {}

    def resolve(self, scope: Scope, name: str, recv: str | None) -> tuple[str, ...]:
        cache_key = (scope.path, scope.class_name, name, recv)
        if cache_key in self._cache:
            return self._cache[cache_key]
        targets = self._resolve_uncached(scope, name, recv)
        self._cache[cache_key] = targets
        return targets

    def _resolve_uncached(self, scope, name, recv) -> tuple[str, ...]:
        model = self.model
        classes: list[str] = []
        if recv == "self" and scope.class_name is not None:
            classes.append(scope.class_name)
        elif recv is not None:
            classes.extend(info.name for info in model.aka_map.get(recv, ()))
        elif recv is None:
            key = self.module_index.get((scope.path, name))
            return (key,) if key is not None else ()

        targets: list[str] = []
        for cls_name in classes:
            resolved = model.resolve_method(cls_name, name)
            if resolved is not None:
                key = self.method_index.get((resolved.name, name))
                if key is not None:
                    targets.append(key)
            # Virtual dispatch: the receiver may be any subclass, so a
            # call through a base-class seam considers every override.
            for sub in model.subclasses_of(cls_name):
                if name in sub.methods:
                    key = self.method_index.get((sub.name, name))
                    if key is not None:
                        targets.append(key)
        return tuple(dict.fromkeys(targets))
