"""Static ↔ dynamic persist-site cross-check (``repro lint --cross-check``).

The P6/P7 dataflow and crashsim's crash-state exploration describe the
same persist micro-op surface from two independent directions:

* **statically**, the call graph reaches every WPQ store / atomic-batch
  write / TCB register op from the scheme seams (``writeback``,
  ``flush`` and the eviction hook wired into the meta cache);
* **dynamically**, the persist-trace recorder observes exactly the
  micro-ops a real workload drives through the trace hooks.

Each side is reduced to a set of **persist sites** ``(owner class,
micro-op)`` and diffed in both directions:

* a *static-only* site means the analyzer models a persist micro-op the
  trace seams never emit — either dead ordering code or (worse) a store
  path missing its ``_trace`` hook, which would make every crashsim
  verdict about that path vacuous;
* a *dynamic-only* site means the recorder observed a micro-op the
  static model cannot derive — an undeclared store/mutator that every
  static rule (P1, P6, P7) is silently blind to.

The static side never imports the analyzed tree; the dynamic side runs
the *installed* ``repro`` package, so the cross-check is only meaningful
when both point at the same source (the default for CI and the CLI).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lint.model import CodeModel, Scope
from repro.lint.ordering import analysis_for

#: Scheme seam methods used as static reachability entries.  The
#: eviction hook is included explicitly because it is wired into the
#: meta cache as a callback — a dynamic edge no static call site shows.
DEFAULT_CROSS_CHECK_ENTRIES = ("writeback", "flush", "_on_dirty_meta_evict")

#: Workload shape of the dynamic smoke trace (kept deliberately small:
#: the cross-check compares *site sets*, not op counts, and every site
#: class appears within a few hundred steps).
SMOKE_STEPS = 400
SMOKE_SEED = 7
SMOKE_DATA_CAPACITY = 1 << 16


@dataclass
class CrossCheckReport:
    """Both-direction diff of static vs dynamic persist sites."""

    schemes: tuple[str, ...]
    steps: int
    seed: int
    static_sites: list[tuple[str, str]] = field(default_factory=list)
    dynamic_sites: list[tuple[str, str]] = field(default_factory=list)
    static_only: list[tuple[str, str]] = field(default_factory=list)
    dynamic_only: list[tuple[str, str]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.static_only and not self.dynamic_only

    def to_dict(self) -> dict:
        return {
            "schemes": list(self.schemes),
            "steps": self.steps,
            "seed": self.seed,
            "static_sites": [list(s) for s in self.static_sites],
            "dynamic_sites": [list(s) for s in self.dynamic_sites],
            "static_only": [list(s) for s in self.static_only],
            "dynamic_only": [list(s) for s in self.dynamic_only],
            "ok": self.ok,
        }

    def render_text(self) -> str:
        lines = [
            f"persist-site cross-check: {len(self.static_sites)} static, "
            f"{len(self.dynamic_sites)} dynamic site(s) across "
            f"{len(self.schemes)} scheme(s)",
        ]
        for owner, op in self.static_only:
            lines.append(
                f"  static-only: {owner}.{op} — derived from the seams but "
                "never observed in the trace (dead path or missing trace "
                "hook)"
            )
        for owner, op in self.dynamic_only:
            lines.append(
                f"  dynamic-only: {owner}.{op} — recorded in the trace but "
                "invisible to the static model (undeclared micro-op)"
            )
        if self.ok:
            lines.append("  static and dynamic persist sites agree")
        return "\n".join(lines)


# ---------------------------------------------------------------------------
# static side
# ---------------------------------------------------------------------------


def static_persist_sites(model: CodeModel, config) -> set[tuple[str, str]]:
    """Persist sites reachable from the scheme seams, from the AST alone."""
    analysis = analysis_for(model)
    graph, ops = analysis.graph, analysis.ops
    seams = getattr(config, "cross_check_entries", DEFAULT_CROSS_CHECK_ENTRIES)
    scheme_root = getattr(config, "scheme_root", "SecureNVMScheme")

    entries: list[str] = []
    root_info = model.classes.get(scheme_root)
    concrete = ([root_info] if root_info is not None else []) + list(
        model.subclasses_of(scheme_root)
    )
    for info in concrete:
        for seam in seams:
            resolved = model.resolve_method(info.name, seam)
            if resolved is None:
                continue
            entries.append(f"{resolved.path}::{resolved.name}.{seam}")

    sites: set[tuple[str, str]] = set()
    for key in graph.reachable(entries):
        scope = graph.functions[key]
        for site in graph.callees(key):
            resolved = _micro_op(model, ops, scope, site.name, site.receiver)
            if resolved is not None:
                sites.add(resolved)
    return sites


def _micro_op(model, ops, scope: Scope, name: str, recv) -> tuple[str, str] | None:
    """``(owner, op)`` for a call that the trace recorder would emit."""
    for cls in ops._candidates(scope, recv):
        store_like = bool(model.effective(cls, "stores"))
        if store_like and (
            name in model.effective(cls, "stores") or name == "write_atomic"
        ):
            owner = model.resolve_method(cls, name)
            owner_name = owner.name if owner is not None else cls
            if ops._internal(scope, owner_name):
                return None
            return (owner_name, name)
        register_like = bool(
            model.effective(cls, "fences") or model.effective(cls, "grouped")
        )
        if (
            not store_like
            and register_like
            and name in model.effective(cls, "mutators")
        ):
            owner = model.resolve_method(cls, name)
            owner_name = owner.name if owner is not None else cls
            if ops._internal(scope, owner_name):
                return None
            return (owner_name, name)
    return None


# ---------------------------------------------------------------------------
# dynamic side
# ---------------------------------------------------------------------------


def dynamic_persist_sites(
    schemes: tuple[str, ...],
    steps: int = SMOKE_STEPS,
    seed: int = SMOKE_SEED,
    data_capacity: int = SMOKE_DATA_CAPACITY,
) -> set[tuple[str, str]]:
    """Persist sites observed by recording one smoke workload per scheme."""
    from repro.core.schemes import create_scheme
    from repro.crashsim.workload import record_workload

    sites: set[tuple[str, str]] = set()
    for name in schemes:
        scheme = create_scheme(name, data_capacity=data_capacity, seed=seed)
        trace = record_workload(scheme, steps, seed)
        tcb_owner = type(scheme.tcb).__name__
        for unit in trace.units:
            for op in unit.ops:
                if op.kind == "tcb":
                    sites.add((tcb_owner, op.mutator))
                else:
                    sites.add((op.owner, op.kind))
    return sites


# ---------------------------------------------------------------------------
# the diff
# ---------------------------------------------------------------------------


def cross_check(
    model: CodeModel,
    config,
    schemes: tuple[str, ...] | None = None,
    steps: int = SMOKE_STEPS,
    seed: int = SMOKE_SEED,
) -> CrossCheckReport:
    """Diff static against dynamic persist sites in both directions."""
    if schemes is None:
        from repro.core.schemes import SCHEMES

        schemes = tuple(sorted(SCHEMES))
    static = static_persist_sites(model, config)
    dynamic = dynamic_persist_sites(schemes, steps=steps, seed=seed)
    return CrossCheckReport(
        schemes=tuple(schemes),
        steps=steps,
        seed=seed,
        static_sites=sorted(static),
        dynamic_sites=sorted(dynamic),
        static_only=sorted(static - dynamic),
        dynamic_only=sorted(dynamic - static),
    )
