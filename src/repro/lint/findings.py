"""Structured findings emitted by the persistence-domain analyzer.

A finding names the violated rule, where it is (`file:line`), the
enclosing symbol, a message, and a suggested fix.  Its :attr:`Finding.key`
deliberately excludes the line number so checked-in baselines survive
unrelated edits above the finding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Rule identifiers and their one-line charters, in severity-free
#: reporting order.  ``P0`` covers defects of the declaration layer
#: itself (the analyzer cannot trust its model if declarations are
#: malformed); ``P1``-``P5`` are the persist-order rules proper.
RULES: dict[str, str] = {
    "P0": "persistence declarations must be statically readable literals",
    "P1": "persistent attributes are assigned only inside the owning class "
          "(all other mutation goes through its sanctioned methods or the WPQ)",
    "P2": "fault sites in code and the faults/plan.py registry must agree, "
          "and every persist point needs crash-site coverage",
    "P3": "atomic batches open, fill and commit within one function "
          "(never split, never unbalanced)",
    "P4": "recovery-path code reads no volatile-domain state "
          "(only the NVM image and persistent TCB registers survive)",
    "P5": "every scheme subclass implements the full SecureNVMScheme contract",
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    #: Path of the offending file, relative to the analyzed root's parent.
    path: str
    line: int
    col: int
    #: Dotted name of the enclosing class/function (or ``<module>``).
    symbol: str
    message: str
    suggestion: str = ""
    #: Short stable slug (attribute, site or method name) distinguishing
    #: findings within one symbol; part of the baseline key.
    token: str = ""

    @property
    def key(self) -> str:
        """Line-number-independent identity used by baseline files."""
        return f"{self.rule}|{self.path}|{self.symbol}|{self.token}"

    def render(self) -> str:
        """One-finding text rendering (``file:line:col rule symbol: msg``)."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.symbol}] {self.message}"
        if self.suggestion:
            text += f"\n    fix: {self.suggestion}"
        return text

    def to_dict(self) -> dict:
        """JSON-ready representation (stable field names)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
            "suggestion": self.suggestion,
            "key": self.key,
        }


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Stable report order: rule, then file, then position."""
    return sorted(findings, key=lambda f: (f.rule, f.path, f.line, f.col, f.token))


@dataclass
class Baseline:
    """A checked-in set of intentionally accepted finding keys.

    The file format is one key per line; blank lines and ``#`` comments
    are ignored.  Every accepted key must be justified in DESIGN.md's
    persistence-domain section — the baseline records *that* an exception
    exists, the document records *why*.
    """

    path: str | None = None
    keys: frozenset[str] = frozenset()
    matched: set[str] = field(default_factory=set)

    @classmethod
    def load(cls, path) -> "Baseline":
        keys = []
        with open(path, "r", encoding="utf-8") as handle:
            for raw in handle:
                line = raw.strip()
                if line and not line.startswith("#"):
                    keys.append(line)
        return cls(path=str(path), keys=frozenset(keys))

    def accepts(self, finding: Finding) -> bool:
        """True (and recorded) when *finding* is baselined."""
        if finding.key in self.keys:
            self.matched.add(finding.key)
            return True
        return False

    @property
    def stale(self) -> list[str]:
        """Baseline entries that matched no finding — fixed or mistyped.

        Stale entries are reported (and fail ``--strict``) so the
        baseline shrinks as violations are fixed instead of rotting.
        """
        return sorted(self.keys - self.matched)
