"""Structured findings emitted by the persistence-domain analyzer.

A finding names the violated rule, where it is (`file:line`), the
enclosing symbol, a message, and a suggested fix.  Its :attr:`Finding.key`
deliberately excludes the line number so checked-in baselines survive
unrelated edits above the finding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Rule identifiers and their one-line charters, in severity-free
#: reporting order.  ``P0`` covers defects of the declaration layer
#: itself (the analyzer cannot trust its model if declarations are
#: malformed); ``P1``-``P5`` are the persist-order rules proper.
RULES: dict[str, str] = {
    "P0": "persistence declarations must be statically readable literals",
    "P1": "persistent attributes are assigned only inside the owning class "
          "(all other mutation goes through its sanctioned methods or the WPQ)",
    "P2": "fault sites in code and the faults/plan.py registry must agree, "
          "and every persist point needs crash-site coverage",
    "P3": "atomic batches open, fill and commit within one function "
          "(never split, never unbalanced)",
    "P4": "recovery-path code reads no volatile-domain state "
          "(only the NVM image and persistent TCB registers survive)",
    "P5": "every scheme subclass implements the full SecureNVMScheme contract",
    "P6": "ordered seams leave no droppable store pending at exit "
          "(every persistent store is fenced or batched before a "
          "dependent persist can follow)",
    "P7": "every persist micro-op is visible to the trace seams "
          "(mutators call the trace hook; grouped register ops run "
          "inside balanced combined brackets)",
    "D0": "spec-hashed paths call no wall-clock/entropy sources",
    "D1": "spec-hashed paths do not iterate unordered sets "
          "whose order can escape",
    "D2": "spec-hashed paths serialize dicts with sort_keys=True",
    "B0": "every baseline entry cites a DESIGN.md justification anchor",
}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    #: Path of the offending file, relative to the analyzed root's parent.
    path: str
    line: int
    col: int
    #: Dotted name of the enclosing class/function (or ``<module>``).
    symbol: str
    message: str
    suggestion: str = ""
    #: Short stable slug (attribute, site or method name) distinguishing
    #: findings within one symbol; part of the baseline key.
    token: str = ""

    @property
    def key(self) -> str:
        """Line-number-independent identity used by baseline files."""
        return f"{self.rule}|{self.path}|{self.symbol}|{self.token}"

    def render(self) -> str:
        """One-finding text rendering (``file:line:col rule symbol: msg``)."""
        text = f"{self.path}:{self.line}:{self.col}: {self.rule} [{self.symbol}] {self.message}"
        if self.suggestion:
            text += f"\n    fix: {self.suggestion}"
        return text

    def to_dict(self) -> dict:
        """JSON-ready representation (stable field names)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
            "suggestion": self.suggestion,
            "token": self.token,
            "key": self.key,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "Finding":
        """Inverse of :meth:`to_dict` (the derived ``key`` is checked)."""
        known = {
            "rule", "path", "line", "col", "symbol",
            "message", "suggestion", "token", "key",
        }
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown finding fields: {sorted(unknown)}")
        finding = cls(
            rule=d["rule"],
            path=d["path"],
            line=d["line"],
            col=d["col"],
            symbol=d["symbol"],
            message=d["message"],
            suggestion=d.get("suggestion", ""),
            token=d.get("token", ""),
        )
        if "key" in d and d["key"] != finding.key:
            raise ValueError(
                f"finding key mismatch: {d['key']!r} != {finding.key!r}"
            )
        return finding


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Stable report order: rule, then file, then position."""
    return sorted(findings, key=lambda f: (f.rule, f.path, f.line, f.col, f.token))


@dataclass
class Baseline:
    """A checked-in set of intentionally accepted finding keys.

    The file format is one key per line, optionally followed by a
    justification anchor — ``rule|path|symbol|token #anchor-name`` —
    naming the DESIGN.md heading (written ``{#anchor-name}``) that
    argues why the exception is sound.  Blank lines and ``#`` comment
    lines are ignored.  The baseline records *that* an exception
    exists, the anchored document records *why*; the B0 rule holds the
    two together.
    """

    path: str | None = None
    keys: frozenset[str] = frozenset()
    matched: set[str] = field(default_factory=set)
    #: ``key -> anchor name`` for entries carrying a justification.
    anchors: dict[str, str] = field(default_factory=dict)
    #: ``key -> 1-based line number`` in the baseline file.
    lines: dict[str, int] = field(default_factory=dict)

    @classmethod
    def load(cls, path) -> "Baseline":
        keys: list[str] = []
        anchors: dict[str, str] = {}
        lines: dict[str, int] = {}
        with open(path, "r", encoding="utf-8") as handle:
            for number, raw in enumerate(handle, start=1):
                line = raw.strip()
                if not line or line.startswith("#"):
                    continue
                key, _, anchor = line.partition(" #")
                key = key.strip()
                keys.append(key)
                lines.setdefault(key, number)
                if anchor.strip():
                    anchors[key] = anchor.strip()
        return cls(
            path=str(path), keys=frozenset(keys), anchors=anchors, lines=lines
        )

    def accepts(self, finding: Finding) -> bool:
        """True (and recorded) when *finding* is baselined."""
        if finding.key in self.keys:
            self.matched.add(finding.key)
            return True
        return False

    @property
    def stale(self) -> list[str]:
        """Baseline entries that matched no finding — fixed or mistyped.

        Stale entries are reported (and fail ``--strict``) so the
        baseline shrinks as violations are fixed instead of rotting.
        """
        return sorted(self.keys - self.matched)
