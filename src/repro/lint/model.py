"""The static code model the persist-order rules run against.

Everything here is derived from the AST alone — the analyzed code is
never imported (importing the system under analysis could execute it,
and CI must be able to lint a broken tree).  The model collects:

* every module under the analyzed root, parsed;
* every class, with its base-class names, methods, and the
  :func:`repro.common.persistence.persistence` declaration read
  *statically* from the decorator's literal arguments;
* every ``_fault(...)``/``fault_hook(...)`` call with its literal site
  string (the forwarding ``def _fault`` trampolines are recognized and
  excluded);
* every ``FaultSite("...")`` registration (the crash-site registry in
  ``faults/plan.py``).

Scopes (module bodies and function bodies) are first-class so rules can
reason about "calls within this function" without double-counting nested
definitions.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from pathlib import Path

from repro.lint.findings import Finding

#: Call names treated as fault-site instrumentation.
FAULT_CALL_NAMES = ("_fault", "fault_hook")

#: Call names treated as persist-trace instrumentation (the seams the
#: crashsim recorder attaches to; rule P7 requires every sanctioned
#: micro-op of a trace-domain class to pass through one).
TRACE_CALL_NAMES = ("_trace", "trace_hook")

#: Keyword arguments the persistence decorator accepts.
_DECL_KWARGS = (
    "persistent", "volatile", "aka", "mutators",
    "stores", "fences", "ordered", "grouped",
)


@dataclass(frozen=True)
class StaticDeclaration:
    """A persistence declaration as read from a decorator's literals."""

    cls_name: str
    persistent: tuple[str, ...] = ()
    volatile: tuple[str, ...] = ()
    aka: tuple[str, ...] = ()
    mutators: tuple[str, ...] = ()
    #: Droppable persistent-store micro-ops (may be lost behind later
    #: in-flight writes at a power failure).
    stores: tuple[str, ...] = ()
    #: Ordering points: micro-ops that order all earlier stores.
    fences: tuple[str, ...] = ()
    #: Seam methods whose stores must be fenced before they return (P6).
    ordered: tuple[str, ...] = ()
    #: Register micro-ops that must run inside a combined group (P7).
    grouped: tuple[str, ...] = ()


@dataclass
class ClassInfo:
    """One class definition in the analyzed tree."""

    name: str
    path: str
    line: int
    bases: tuple[str, ...]
    decl: StaticDeclaration | None
    methods: dict[str, ast.FunctionDef]
    #: Method names whose bodies contain a fault-site call — calling one
    #: of these *is* crash-site coverage (the callee instruments itself).
    instrumented_methods: frozenset[str] = frozenset()
    #: Method names carrying an ``@abstractmethod`` decorator.
    abstract_methods: frozenset[str] = frozenset()
    #: Method names whose bodies contain a persist-trace call — these
    #: micro-ops are visible to the crashsim recorder (rule P7).
    traced_methods: frozenset[str] = frozenset()


@dataclass(frozen=True)
class FaultCall:
    """One ``_fault(...)``/``fault_hook(...)`` call site."""

    path: str
    symbol: str
    line: int
    col: int
    #: The literal site string, or ``None`` for a non-literal argument.
    site: str | None


@dataclass(frozen=True)
class SiteDef:
    """One ``FaultSite("...")`` registration in the crash-site registry."""

    name: str
    path: str
    line: int


@dataclass
class Scope:
    """A module or function body (nested definitions excluded)."""

    path: str
    #: Dotted name: ``<module>``, ``Class.method`` or ``function``.
    symbol: str
    #: Name of the innermost enclosing class, or ``None``.
    class_name: str | None
    node: ast.AST

    def walk_own(self):
        """Yield this scope's nodes, stopping at nested function/class defs."""
        stack = list(_body_of(self.node))
        while stack:
            node = stack.pop()
            yield node
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                stack.extend(ast.iter_child_nodes(node))


def _body_of(node: ast.AST) -> list[ast.stmt]:
    return getattr(node, "body", [])


def receiver_name(expr: ast.AST) -> str | None:
    """The last identifier of a receiver expression (``a.b.tcb`` → ``tcb``)."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    return None


def call_name(func: ast.AST) -> str | None:
    """The called name of a ``Call.func`` (``x.y.f(...)`` → ``f``)."""
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _literal_names(node: ast.AST) -> tuple[str, ...] | None:
    """Decode a literal tuple/list of strings, or ``None`` if non-literal."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    names = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
            return None
        names.append(element.value)
    return tuple(names)


class CodeModel:
    """Parsed view of every module under one root directory."""

    def __init__(self, root: Path, base_dir: Path | None = None) -> None:
        self.root = Path(root)
        #: Paths in findings are rendered relative to this directory.
        self.base_dir = Path(base_dir) if base_dir is not None else self.root.parent
        self.modules: dict[str, ast.Module] = {}
        self.classes: dict[str, ClassInfo] = {}
        self.scopes: list[Scope] = []
        self.fault_calls: list[FaultCall] = []
        self.site_defs: dict[str, SiteDef] = {}
        #: P0 findings raised while reading declarations.
        self.problems: list[Finding] = []
        self._build()

    # -- construction ----------------------------------------------------------

    def _build(self) -> None:
        for file_path in sorted(self.root.rglob("*.py")):
            rel = str(file_path.relative_to(self.base_dir))
            tree = ast.parse(file_path.read_text(encoding="utf-8"), filename=rel)
            self.modules[rel] = tree
            self._collect(rel, tree)
        self._link_hierarchy()

    def _collect(self, rel: str, tree: ast.Module) -> None:
        module_scope = Scope(rel, "<module>", None, tree)
        self.scopes.append(module_scope)
        self._scan_scope(module_scope)
        self._walk_body(rel, tree, prefix="", class_name=None)

    def _walk_body(
        self, rel: str, node: ast.AST, prefix: str, class_name: str | None
    ) -> None:
        for child in _body_of(node):
            if isinstance(child, ast.ClassDef):
                qual = f"{prefix}{child.name}"
                self._register_class(rel, child, qual)
                self._walk_body(rel, child, prefix=f"{qual}.", class_name=child.name)
            elif isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qual = f"{prefix}{child.name}"
                scope = Scope(rel, qual, class_name, child)
                self.scopes.append(scope)
                self._scan_scope(scope)
                self._walk_body(rel, child, prefix=f"{qual}.", class_name=class_name)

    def _register_class(self, rel: str, node: ast.ClassDef, qual: str) -> None:
        decl = None
        for deco in node.decorator_list:
            if isinstance(deco, ast.Call) and call_name(deco.func) == "persistence":
                decl = self._read_declaration(rel, node, deco, qual)
        methods = {
            stmt.name: stmt
            for stmt in node.body
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        instrumented = frozenset(
            name
            for name, fn in methods.items()
            if any(
                isinstance(n, ast.Call) and call_name(n.func) in FAULT_CALL_NAMES
                for n in ast.walk(fn)
            )
        )
        abstract = frozenset(
            name
            for name, fn in methods.items()
            if any(
                (isinstance(d, ast.Name) and d.id == "abstractmethod")
                or (isinstance(d, ast.Attribute) and d.attr == "abstractmethod")
                for d in fn.decorator_list
            )
        )
        traced = frozenset(
            name
            for name, fn in methods.items()
            if any(
                isinstance(n, ast.Call) and call_name(n.func) in TRACE_CALL_NAMES
                for n in ast.walk(fn)
            )
        )
        info = ClassInfo(
            name=node.name,
            path=rel,
            line=node.lineno,
            bases=tuple(
                name for base in node.bases if (name := receiver_name(base)) is not None
            ),
            decl=decl,
            methods=methods,
            instrumented_methods=instrumented,
            abstract_methods=abstract,
            traced_methods=traced,
        )
        if node.name in self.classes:
            self.problems.append(
                Finding(
                    "P0", rel, node.lineno, node.col_offset, qual,
                    f"class name {node.name!r} is defined more than once in the "
                    "analyzed tree; domain attribution is ambiguous",
                    token=f"duplicate:{node.name}",
                )
            )
        self.classes[node.name] = info

    def _read_declaration(
        self, rel: str, cls: ast.ClassDef, deco: ast.Call, qual: str
    ) -> StaticDeclaration | None:
        fields: dict[str, tuple[str, ...]] = {}
        bad = False
        if deco.args:
            self._p0(rel, deco, qual, "positional",
                     "the persistence decorator takes keyword arguments only")
            bad = True
        for kw in deco.keywords:
            if kw.arg not in _DECL_KWARGS:
                self._p0(rel, deco, qual, f"kwarg:{kw.arg}",
                         f"unknown persistence declaration field {kw.arg!r}")
                bad = True
                continue
            names = _literal_names(kw.value)
            if names is None:
                self._p0(
                    rel, deco, qual, f"literal:{kw.arg}",
                    f"declaration field {kw.arg!r} must be a literal "
                    "tuple/list of strings so the analyzer can read it "
                    "without importing the code",
                )
                bad = True
                continue
            fields[kw.arg] = names
        if bad:
            return None
        overlap = set(fields.get("persistent", ())) & set(fields.get("volatile", ()))
        if overlap:
            self._p0(
                rel, deco, qual, "overlap",
                f"attributes declared both persistent and volatile: "
                f"{sorted(overlap)}",
            )
            return None
        return StaticDeclaration(cls.name, **fields)

    def _p0(self, rel: str, node: ast.AST, symbol: str, token: str, msg: str) -> None:
        self.problems.append(
            Finding("P0", rel, node.lineno, node.col_offset, symbol, msg, token=token)
        )

    def _scan_scope(self, scope: Scope) -> None:
        """Record fault calls and site registrations inside one scope."""
        is_trampoline = (
            isinstance(scope.node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and scope.node.name in FAULT_CALL_NAMES
        )
        for node in scope.walk_own():
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node.func)
            if name in FAULT_CALL_NAMES:
                if is_trampoline:
                    continue  # the forwarding `def _fault` re-raising its arg
                site = None
                if node.args and isinstance(node.args[0], ast.Constant) and isinstance(
                    node.args[0].value, str
                ):
                    site = node.args[0].value
                self.fault_calls.append(
                    FaultCall(scope.path, scope.symbol, node.lineno,
                              node.col_offset, site)
                )
            elif name == "FaultSite":
                if node.args and isinstance(node.args[0], ast.Constant) and isinstance(
                    node.args[0].value, str
                ):
                    site_name = node.args[0].value
                    self.site_defs.setdefault(
                        site_name, SiteDef(site_name, scope.path, node.lineno)
                    )

    # -- hierarchy and domain lookups --------------------------------------------

    def _link_hierarchy(self) -> None:
        self._ancestors: dict[str, tuple[str, ...]] = {}
        for name in self.classes:
            chain: list[str] = []
            seen = {name}
            frontier = list(self.classes[name].bases)
            while frontier:
                base = frontier.pop(0)
                if base in seen or base not in self.classes:
                    continue
                seen.add(base)
                chain.append(base)
                frontier.extend(self.classes[base].bases)
            self._ancestors[name] = tuple(chain)

        self.persistent_owners: dict[str, list[ClassInfo]] = {}
        self.volatile_owners: dict[str, list[ClassInfo]] = {}
        self.aka_map: dict[str, list[ClassInfo]] = {}
        for info in self.classes.values():
            if info.decl is None:
                continue
            for attr in info.decl.persistent:
                self.persistent_owners.setdefault(attr, []).append(info)
            for attr in info.decl.volatile:
                self.volatile_owners.setdefault(attr, []).append(info)
            for alias in info.decl.aka:
                self.aka_map.setdefault(alias, []).append(info)

    def ancestors(self, cls_name: str) -> tuple[str, ...]:
        """Transitive base-class names resolvable inside the model."""
        return self._ancestors.get(cls_name, ())

    def lineage(self, cls_name: str) -> tuple[str, ...]:
        """*cls_name* plus its resolvable ancestors."""
        return (cls_name, *self.ancestors(cls_name))

    def is_declared(self, cls_name: str) -> bool:
        """True when the class or an ancestor carries a declaration."""
        return any(
            self.classes[c].decl is not None
            for c in self.lineage(cls_name)
            if c in self.classes
        )

    def effective(self, cls_name: str, domain: str) -> frozenset[str]:
        """Effective persistent/volatile attr names, ancestors included."""
        names: set[str] = set()
        for c in self.lineage(cls_name):
            info = self.classes.get(c)
            if info is not None and info.decl is not None:
                names.update(getattr(info.decl, domain))
        return frozenset(names)

    def subclasses_of(self, root_name: str) -> list[ClassInfo]:
        """Every class transitively inheriting from *root_name* (excl. it)."""
        return [
            info
            for name, info in self.classes.items()
            if name != root_name and root_name in self.ancestors(name)
        ]

    def resolve_method(self, cls_name: str, method: str) -> ClassInfo | None:
        """The class in *cls_name*'s lineage actually defining *method*."""
        for c in self.lineage(cls_name):
            info = self.classes.get(c)
            if info is not None and method in info.methods:
                return info
        return None

    def owner_is_self_instrumented(self, cls_name: str, method: str) -> bool:
        """Does the resolved *method* body carry its own fault-site call?"""
        info = self.resolve_method(cls_name, method)
        return info is not None and method in info.instrumented_methods

    def owner_is_self_traced(self, cls_name: str, method: str) -> bool:
        """Does the resolved *method* body carry its own trace call?"""
        info = self.resolve_method(cls_name, method)
        return info is not None and method in info.traced_methods

    def declaring_classes(self, domain: str) -> list[ClassInfo]:
        """Classes whose *own* declaration fills the given field."""
        return [
            info
            for info in self.classes.values()
            if info.decl is not None and getattr(info.decl, domain)
        ]


def build_model(root, base_dir=None) -> CodeModel:
    """Parse everything under *root* into a :class:`CodeModel`."""
    return CodeModel(Path(root), base_dir)
