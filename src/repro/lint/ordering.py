"""Interprocedural persist-order dataflow and determinism rules.

This module grows the structural checker into a dataflow analyzer.  It
consumes the call graph (:mod:`repro.lint.callgraph`) and the ordering
micro-op declarations (``stores`` / ``fences`` / ``ordered`` /
``grouped`` on ``@persistence``) and derives, per function, a
**happens-before summary** of its persist micro-ops:

``Summary(always_fences, exit_pending)``
    *always_fences* — every path through the function crosses an
    ordering point (an atomic-batch commit or a root commit) after its
    last droppable store; *exit_pending* — the set of droppable store
    sites that may still be un-ordered when the function returns (or
    raises), on at least one path.

The abstract state during interpretation is ``(pending, fenced)``:
*pending* is the set of store sites accepted but not yet ordered,
*fenced* records whether the path crossed an ordering point at all.  The
transfer function for a call resolved to summaries ``S₁..Sₙ`` (virtual
dispatch joins over every override) is::

    pending' = ⋃ᵢ ((∅ if Sᵢ.always_fences else pending) | Sᵢ.exit_pending)

Branches join by union of pending and conjunction of fenced — the ADR
model makes a *possibly* dropped store a real defect, so the analysis is
a may-analysis over pending stores.  Loops run two iterations and join
(store/fence membership is a finite lattice; two rounds reach the
fixpoint of any loop-carried pending set).

Three rule families are built on top:

* **P6** — every seam a class lists in ``ordered=`` must have an empty
  ``exit_pending`` in every concrete subclass: a droppable store that
  can trail the seam's return is exactly the Osiris Plus stop-loss bug
  (a later in-flight write can oust it from the WPQ, silently voiding
  the staleness bound recovery relies on).
* **P7** — every sanctioned persist micro-op is visible to the trace
  seams crashsim replays: declared mutators of a trace-domain class
  must call ``_trace``/``trace_hook``, combined groups must balance,
  and ``grouped=`` register ops must execute inside a
  ``begin_combined``/``end_combined`` bracket on every call path.
* **D0–D2** — functions reachable from spec-hashed/cached entry points
  must be deterministic: no wall-clock/entropy calls (D0), no iteration
  over unordered sets whose order can escape (D1), no dict
  serialization without ``sort_keys=True`` (D2).

Like the rest of the analyzer, everything here works on the AST alone —
the analyzed tree is never imported.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.lint.callgraph import CallGraph, CallSite, build_callgraph, scope_key
from repro.lint.findings import Finding
from repro.lint.model import CodeModel, Scope

#: Combined-group bracket markers (controller transaction: members share
#: fate on a crash).  They mark shared fate, not ordering — a whole
#: group is still droppable — so they are deliberately *not* fences.
COMBINED_BEGIN = "begin_combined"
COMBINED_END = "end_combined"

#: Default spec-hashed/cached entry points for the determinism rules:
#: ``path-suffix::symbol-prefix`` (empty prefix matches every symbol in
#: the file).  Spec hashing, worker execution and crash-image hashing
#: must all be replayable from a seed.
DEFAULT_DETERMINISTIC_ENTRIES = (
    "runs/spec.py::",
    "runs/pool.py::execute_spec",
    "runs/pool.py::_execute_",
    "crashsim/enumerate.py::CrashState.image_hash",
    "crashsim/enumerate.py::canonical_value",
    # The serve wire path: every body crossing the client/server boundary
    # must serialize byte-stably (coalesced clients cmp their payloads).
    "serve/protocol.py::",
    # The workload frontier: descriptors are folded into spec hashes and
    # traces are content-addressed, so every generator path must be
    # seeded-Random-only and serialize with sorted keys.
    "trafficgen/descriptor.py::",
    "trafficgen/ace.py::",
    "trafficgen/ingest.py::",
    "trafficgen/interleave.py::",
)

#: Consumers that are insensitive to iteration order: a generator over
#: an unordered set feeding one of these cannot leak the order.
_ORDER_FREE_CONSUMERS = frozenset(
    {"sum", "min", "max", "any", "all", "len", "set", "frozenset", "sorted"}
)

#: ``receiver -> names`` (empty set = every call on that receiver) of
#: nondeterministic stdlib calls for D0.
_NONDET_CALLS: dict[str, frozenset[str]] = {
    "time": frozenset(),
    "secrets": frozenset(),
    "random": frozenset(),          # except the seeded Random() constructor
    "os": frozenset({"urandom", "getrandom"}),
    "uuid": frozenset({"uuid1", "uuid4"}),
    "datetime": frozenset({"now", "utcnow", "today"}),
    "date": frozenset({"today"}),
}
_NONDET_EXEMPT = frozenset({"Random"})


# ---------------------------------------------------------------------------
# micro-op classification
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PendingStore:
    """One droppable store site that may be pending at a program point."""

    path: str
    symbol: str
    line: int
    col: int
    #: Human-oriented rendering of the call (``wpq.write``).
    label: str


class OrderingOps:
    """Classifies calls as persist micro-ops using the declarations."""

    def __init__(self, model: CodeModel) -> None:
        self.model = model
        #: Class names declaring any ordering micro-op — calls *inside*
        #: these classes (or their subclasses) are the micro-ops'
        #: implementations, not uses, and are never classified.
        self.declaring: set[str] = set()
        for domain in ("stores", "fences", "grouped"):
            for info in model.declaring_classes(domain):
                self.declaring.add(info.name)

    def _candidates(self, scope: Scope, recv: str | None) -> list[str]:
        if recv == "self":
            return [scope.class_name] if scope.class_name else []
        if recv is not None:
            return [info.name for info in self.model.aka_map.get(recv, ())]
        return []

    def _internal(self, scope: Scope, owner: str) -> bool:
        """Is *scope* inside the micro-op's own implementation lineage?"""
        return (
            scope.class_name is not None
            and owner in self.model.lineage(scope.class_name)
        )

    def classify(
        self, scope: Scope, name: str, recv: str | None
    ) -> tuple[str, str] | None:
        """``(kind, owner_class)`` for a micro-op call, else ``None``.

        *kind* is one of ``store`` / ``fence`` / ``grouped`` /
        ``begin`` / ``end`` (combined-group brackets).
        """
        for cls in self._candidates(scope, recv):
            for kind, domain in (
                ("store", "stores"),
                ("fence", "fences"),
                ("grouped", "grouped"),
            ):
                if name in self.model.effective(cls, domain):
                    owner = self._declaring_owner(cls, domain, name)
                    if self._internal(scope, owner):
                        return None
                    return (kind, owner)
            if name in (COMBINED_BEGIN, COMBINED_END):
                if self.model.effective(cls, "stores"):
                    owner = self._declaring_owner(cls, "stores", name)
                    if self._internal(scope, owner):
                        return None
                    kind = "begin" if name == COMBINED_BEGIN else "end"
                    return (kind, owner)
        return None

    def _declaring_owner(self, cls: str, domain: str, name: str) -> str:
        """The lineage class whose own declaration sanctions the op."""
        for ancestor in self.model.lineage(cls):
            info = self.model.classes.get(ancestor)
            decl = info.decl if info is not None else None
            if decl is not None and (
                name in getattr(decl, domain) or getattr(decl, domain)
            ):
                return ancestor
        return cls


# ---------------------------------------------------------------------------
# happens-before summaries (the P6 dataflow)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Summary:
    """Happens-before summary of one function."""

    #: Every path from entry to exit crosses an ordering point after its
    #: last droppable store.
    always_fences: bool
    #: Droppable store sites possibly still pending at exit.
    exit_pending: frozenset[PendingStore]


#: Most-optimistic summary (fixpoint seed): iteration only ever weakens
#: it, so convergence is monotone.
_TOP = Summary(always_fences=True, exit_pending=frozenset())

_State = tuple[frozenset, bool]


class FlowAnalysis:
    """Kleene-iterates happens-before summaries over a call subgraph."""

    def __init__(self, model: CodeModel, graph: CallGraph, ops: OrderingOps) -> None:
        self.model = model
        self.graph = graph
        self.ops = ops
        self.summaries: dict[str, Summary] = {}
        #: Per-caller index of resolved call sites by AST position.
        self._site_index: dict[str, dict[tuple[int, int, str], CallSite]] = {}

    def compute(self, roots: list[str]) -> None:
        """Compute summaries for *roots* and everything they reach."""
        keys = sorted(self.graph.reachable(roots))
        for key in keys:
            self.summaries.setdefault(key, _TOP)
        for _ in range(len(keys) + 2):
            changed = False
            for key in keys:
                new = self._summarize(key)
                if new != self.summaries[key]:
                    self.summaries[key] = new
                    changed = True
            if not changed:
                break

    def summary(self, key: str) -> Summary:
        return self.summaries.get(key, _TOP)

    # -- per-function interpretation ----------------------------------------

    def _summarize(self, key: str) -> Summary:
        scope = self.graph.functions[key]
        exits: list[_State] = []
        final = self._exec_block(scope, scope.node.body, (frozenset(), False), exits)
        if final is not None:
            exits.append(final)
        if not exits:
            # Only unreachable exits (e.g. an infinite loop): vacuously
            # fenced and nothing escapes.
            return _TOP
        pending = frozenset().union(*(p for p, _ in exits))
        return Summary(
            always_fences=all(fenced for _, fenced in exits),
            exit_pending=pending,
        )

    def _exec_block(self, scope, stmts, state, exits):
        for stmt in stmts:
            if state is None:
                break
            state = self._exec_stmt(scope, stmt, state, exits)
        return state

    def _exec_stmt(self, scope, stmt, state, exits):
        if isinstance(
            stmt,
            (
                ast.FunctionDef,
                ast.AsyncFunctionDef,
                ast.ClassDef,
                ast.Import,
                ast.ImportFrom,
                ast.Pass,
                ast.Global,
                ast.Nonlocal,
                ast.Break,
                ast.Continue,
            ),
        ):
            return state
        if isinstance(stmt, ast.If):
            state = self._apply_exprs(scope, [stmt.test], state)
            then = self._exec_block(scope, stmt.body, state, exits)
            other = self._exec_block(scope, stmt.orelse, state, exits)
            return _join(then, other)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            state = self._apply_exprs(scope, [stmt.iter], state)
            state = self._exec_loop(scope, stmt.body, state, exits)
            return self._exec_block(scope, stmt.orelse, state, exits)
        if isinstance(stmt, ast.While):
            state = self._apply_exprs(scope, [stmt.test], state)
            state = self._exec_loop(scope, stmt.body, state, exits)
            return self._exec_block(scope, stmt.orelse, state, exits)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            state = self._apply_exprs(
                scope, [item.context_expr for item in stmt.items], state
            )
            return self._exec_block(scope, stmt.body, state, exits)
        if isinstance(stmt, ast.Try) or (
            hasattr(ast, "TryStar") and isinstance(stmt, ast.TryStar)
        ):
            body_out = self._exec_block(scope, stmt.body, state, exits)
            # A handler can trigger anywhere inside the body, so it joins
            # the entry state with the body's out-state.
            handler_in = _join(state, body_out)
            outs = [
                self._exec_block(scope, handler.body, handler_in, exits)
                for handler in stmt.handlers
            ]
            outs.append(self._exec_block(scope, stmt.orelse, body_out, exits))
            merged = None
            for out in outs:
                merged = _join(merged, out)
            return self._exec_block(scope, stmt.finalbody, merged, exits)
        if isinstance(stmt, ast.Match):
            state = self._apply_exprs(scope, [stmt.subject], state)
            merged = state  # no case may match
            for case in stmt.cases:
                merged = _join(merged, self._exec_block(scope, case.body, state, exits))
            return merged
        if isinstance(stmt, ast.Return):
            parts = [stmt.value] if stmt.value is not None else []
            state = self._apply_exprs(scope, parts, state)
            exits.append(state)
            return None
        if isinstance(stmt, ast.Raise):
            parts = [p for p in (stmt.exc, stmt.cause) if p is not None]
            state = self._apply_exprs(scope, parts, state)
            exits.append(state)
            return None
        # Plain statements (Expr, Assign, AugAssign, AnnAssign, Assert,
        # Delete, ...): interpret every call in their expressions.
        return self._apply_exprs(scope, list(ast.iter_child_nodes(stmt)), state)

    def _exec_loop(self, scope, body, state, exits):
        # Two rounds + join reach the fixpoint of loop-carried
        # pending/fence state (both lattices are small and monotone).
        joined = state
        for _ in range(2):
            once = self._exec_block(scope, body, joined, exits)
            joined = _join(joined, once)
        return joined

    # -- transfer functions -------------------------------------------------

    def _apply_exprs(self, scope, exprs, state):
        if state is None:
            return None
        for call in _calls_in_exprs(exprs):
            state = self._apply_call(scope, call, state)
        return state

    def _apply_call(self, scope, call: ast.Call, state: _State) -> _State:
        pending, fenced = state
        site = self._site_for(scope, call)
        if site is None:
            return state
        event = self.ops.classify(scope, site.name, site.receiver)
        if event is not None:
            kind, _owner = event
            if kind == "store":
                store = PendingStore(
                    path=scope.path,
                    symbol=scope.symbol,
                    line=call.lineno,
                    col=call.col_offset,
                    label=site.dotted or site.name,
                )
                return (pending | {store}, fenced)
            if kind == "fence":
                return (frozenset(), True)
            return state  # grouped / begin / end: no ordering effect
        callees = [t for t in site.targets if t in self.summaries]
        if not callees:
            return state
        out_pending: frozenset = frozenset()
        for target in callees:
            summary = self.summaries[target]
            base = frozenset() if summary.always_fences else pending
            out_pending |= base | summary.exit_pending
        if all(self.summaries[t].always_fences for t in callees):
            fenced = True
        return (out_pending, fenced)

    def _site_for(self, scope, call: ast.Call) -> CallSite | None:
        key = scope_key(scope)
        index = self._site_index.get(key)
        if index is None:
            index = {
                (s.line, s.col, s.name): s for s in self.graph.callees(key)
            }
            self._site_index[key] = index
        from repro.lint.model import call_name

        name = call_name(call.func)
        if name is None:
            return None
        return index.get((call.lineno, call.col_offset, name))


def _join(a: _State | None, b: _State | None) -> _State | None:
    if a is None:
        return b
    if b is None:
        return a
    return (a[0] | b[0], a[1] and b[1])


def _calls_in_exprs(exprs) -> list[ast.Call]:
    """Call nodes of the given expressions, source order, lambdas skipped."""
    out: list[ast.Call] = []
    stack = [e for e in exprs if isinstance(e, ast.expr)]
    while stack:
        node = stack.pop()
        if isinstance(node, ast.Lambda):
            continue
        if isinstance(node, ast.Call):
            out.append(node)
        stack.extend(ast.iter_child_nodes(node))
    out.sort(key=lambda n: (n.lineno, n.col_offset))
    return out


# ---------------------------------------------------------------------------
# shared per-model analysis cache
# ---------------------------------------------------------------------------


class OrderingAnalysis:
    """Call graph + micro-op tables, built once per lint run."""

    def __init__(self, model: CodeModel) -> None:
        self.model = model
        self.graph = build_callgraph(model)
        self.ops = OrderingOps(model)

    def seam_keys(self) -> dict[str, tuple[str, str]]:
        """``function key -> (class, seam)`` for every ordered seam of
        every concrete class, resolved through the lineage."""
        model = self.model
        seams: dict[str, tuple[str, str]] = {}
        for declaring in model.declaring_classes("ordered"):
            concrete = [declaring] + list(model.subclasses_of(declaring.name))
            for info in concrete:
                for seam in model.effective(info.name, "ordered"):
                    resolved = model.resolve_method(info.name, seam)
                    if resolved is None:
                        continue
                    key = f"{resolved.path}::{resolved.name}.{seam}"
                    if key in self.graph.functions:
                        seams.setdefault(key, (info.name, seam))
        return seams


_ANALYSIS_ATTR = "_ordering_analysis"


def analysis_for(model: CodeModel) -> OrderingAnalysis:
    """The model's cached :class:`OrderingAnalysis` (one build per run)."""
    cached = getattr(model, _ANALYSIS_ATTR, None)
    if cached is None:
        cached = OrderingAnalysis(model)
        setattr(model, _ANALYSIS_ATTR, cached)
    return cached


# ---------------------------------------------------------------------------
# P6 — unordered persistent write on an ordered seam
# ---------------------------------------------------------------------------


def rule_p6(model: CodeModel, config) -> list[Finding]:
    """Droppable stores may not trail an ordered seam's return."""
    analysis = analysis_for(model)
    seams = analysis.seam_keys()
    if not seams:
        return []
    flow = FlowAnalysis(model, analysis.graph, analysis.ops)
    flow.compute(sorted(seams))
    findings: dict[str, Finding] = {}
    for key in sorted(seams):
        cls, seam = seams[key]
        summary = flow.summary(key)
        for store in sorted(
            summary.exit_pending, key=lambda s: (s.path, s.line, s.col)
        ):
            finding = Finding(
                rule="P6",
                path=store.path,
                line=store.line,
                col=store.col,
                symbol=store.symbol,
                message=(
                    f"droppable store {store.label}(...) may still be "
                    f"pending when the ordered seam {cls}.{seam} returns — "
                    "a crash can drop it behind later accepted writes, "
                    "voiding the bound recovery relies on"
                ),
                suggestion=(
                    "order it before returning: wrap it in an atomic batch "
                    "(begin_atomic/write_atomic/commit_atomic) or follow "
                    "it with a fence (commit_root)"
                ),
                token=f"unfenced:{store.label}",
            )
            findings.setdefault(finding.key, finding)
    return list(findings.values())


# ---------------------------------------------------------------------------
# P7 — trace-seam coherence
# ---------------------------------------------------------------------------


def rule_p7(model: CodeModel, config) -> list[Finding]:
    """Persist micro-ops must be visible to the crashsim trace seams."""
    findings: list[Finding] = []
    findings.extend(_p7_untraced_mutators(model))
    findings.extend(_p7_grouped_bracketing(model))
    return findings


def _p7_untraced_mutators(model: CodeModel) -> list[Finding]:
    """Declared mutators of trace-domain classes must call the hook."""
    findings = []
    trace_domain: dict[str, object] = {}
    for domain in ("stores", "fences", "grouped"):
        for info in model.declaring_classes(domain):
            trace_domain[info.name] = info
    for name in sorted(trace_domain):
        info = trace_domain[name]
        for mutator in sorted(model.effective(name, "mutators")):
            resolved = model.resolve_method(name, mutator)
            if resolved is None or mutator in resolved.traced_methods:
                continue
            node = resolved.methods[mutator]
            findings.append(
                Finding(
                    rule="P7",
                    path=resolved.path,
                    line=node.lineno,
                    col=node.col_offset,
                    symbol=f"{resolved.name}.{mutator}",
                    message=(
                        f"persistent mutator {mutator}() never calls the "
                        "trace hook — crashsim's persist trace (and the "
                        "static/dynamic cross-check) cannot see this "
                        "micro-op"
                    ),
                    suggestion=(
                        "call self._trace(...) (or invoke trace_hook) "
                        "after the mutation, mirroring the other mutators"
                    ),
                    token=f"untraced:{mutator}",
                )
            )
    return findings


def _p7_grouped_bracketing(model: CodeModel) -> list[Finding]:
    """Grouped register ops must run inside a combined bracket; brackets
    must balance within their function."""
    analysis = analysis_for(model)
    graph, ops = analysis.graph, analysis.ops
    findings: list[Finding] = []
    # depth at each call site, per function, in one linear pass
    depth_at: dict[tuple[str, int, int], int] = {}
    grouped_sites: list[tuple[Scope, CallSite]] = []
    for key, scope in graph.functions.items():
        depth = 0
        begins = ends = 0
        for site in graph.callees(key):
            event = ops.classify(scope, site.name, site.receiver)
            kind = event[0] if event else None
            if kind == "end":
                depth -= 1
                ends += 1
            depth_at[(key, site.line, site.col)] = depth
            if kind == "begin":
                depth += 1
                begins += 1
            elif kind == "grouped":
                grouped_sites.append((scope, site))
        if begins != ends:
            findings.append(
                Finding(
                    rule="P7",
                    path=scope.path,
                    line=scope.node.lineno,
                    col=scope.node.col_offset,
                    symbol=scope.symbol,
                    message=(
                        f"combined group is unbalanced here ({begins} "
                        f"{COMBINED_BEGIN} vs {ends} {COMBINED_END}) — an "
                        "open controller transaction leaks past the "
                        "function and corrupts shared-fate accounting"
                    ),
                    suggestion="open and close the combined group in the "
                               "same function",
                    token="unbalanced-group",
                )
            )

    bracketed_memo: dict[str, bool] = {}

    def called_bracketed(key: str, trail: frozenset) -> bool:
        """Every call path to *key* passes through an open bracket."""
        if key in bracketed_memo:
            return bracketed_memo[key]
        sites = graph.callers.get(key, [])
        if not sites:
            return False
        ok = True
        for site in sites:
            if depth_at.get((site.caller, site.line, site.col), 0) > 0:
                continue
            if site.caller in trail or not called_bracketed(
                site.caller, trail | {site.caller}
            ):
                ok = False
                break
        bracketed_memo[key] = ok
        return ok

    for scope, site in grouped_sites:
        if depth_at.get((scope_key(scope), site.line, site.col), 0) > 0:
            continue
        if called_bracketed(scope_key(scope), frozenset({scope_key(scope)})):
            continue
        findings.append(
            Finding(
                rule="P7",
                path=scope.path,
                line=site.line,
                col=site.col,
                symbol=scope.symbol,
                message=(
                    f"grouped register op {site.dotted or site.name}(...) "
                    "executes outside any begin_combined/end_combined "
                    "bracket — a crash can separate the register bump "
                    "from the write it must share fate with"
                ),
                suggestion=(
                    "run it inside the write-back's combined group (or "
                    "bracket every call site of this helper)"
                ),
                token=f"unbracketed:{site.name}",
            )
        )
    return findings


# ---------------------------------------------------------------------------
# D0–D2 — determinism on spec-hashed paths
# ---------------------------------------------------------------------------


def _deterministic_scopes(model: CodeModel, config) -> list[tuple[str, Scope]]:
    """Function scopes reachable from the configured entry patterns."""
    patterns = getattr(
        config, "deterministic_entries", DEFAULT_DETERMINISTIC_ENTRIES
    )
    if not patterns:
        return []
    analysis = analysis_for(model)
    graph = analysis.graph
    entries = []
    for key, scope in graph.functions.items():
        for pattern in patterns:
            path_suffix, _, symbol_prefix = pattern.partition("::")
            if scope.path.endswith(path_suffix) and scope.symbol.startswith(
                symbol_prefix
            ):
                entries.append(key)
                break
    reachable = graph.reachable(entries)
    return sorted(
        ((key, graph.functions[key]) for key in reachable),
        key=lambda item: item[0],
    )


def rule_d0(model: CodeModel, config) -> list[Finding]:
    """Spec-hashed paths call no wall-clock/entropy sources."""
    analysis = analysis_for(model)
    findings = []
    for key, scope in _deterministic_scopes(model, config):
        for site in analysis.graph.callees(key):
            banned = _NONDET_CALLS.get(site.receiver or "")
            if banned is None:
                continue
            if banned and site.name not in banned:
                continue
            if site.name in _NONDET_EXEMPT:
                continue
            findings.append(
                Finding(
                    rule="D0",
                    path=scope.path,
                    line=site.line,
                    col=site.col,
                    symbol=scope.symbol,
                    message=(
                        f"{site.dotted}(...) is nondeterministic but this "
                        "function is reachable from a spec-hashed entry "
                        "point — identical specs would stop producing "
                        "identical runs"
                    ),
                    suggestion=(
                        "derive the value from the spec seed (e.g. a "
                        "seeded random.Random) or hoist it out of the "
                        "hashed path"
                    ),
                    token=f"nondet:{site.dotted}",
                )
            )
    return findings


def _set_names(scope: Scope) -> set[str]:
    names: set[str] = set()
    for node in scope.walk_own():
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and _is_set_expr(node.value, names)
        ):
            names.add(node.targets[0].id)
    return names


def _is_set_expr(node: ast.AST, set_names: set[str]) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    ):
        return True
    return isinstance(node, ast.Name) and node.id in set_names


def _order_free_iters(scope: Scope) -> set[int]:
    """``id()`` of iter nodes whose order cannot escape (the generator
    feeds an order-insensitive consumer like ``sum``/``min``/``sorted``)."""
    exempt: set[int] = set()
    for node in scope.walk_own():
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_FREE_CONSUMERS
            and node.args
        ):
            continue
        consumed = node.args[0]
        if isinstance(consumed, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
            for comp in consumed.generators:
                exempt.add(id(comp.iter))
        else:
            exempt.add(id(consumed))
    return exempt


def rule_d1(model: CodeModel, config) -> list[Finding]:
    """Spec-hashed paths do not iterate unordered sets."""
    findings = []
    for _key, scope in _deterministic_scopes(model, config):
        set_names = _set_names(scope)
        exempt = _order_free_iters(scope)
        iters: list[ast.expr] = []
        for node in scope.walk_own():
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.GeneratorExp, ast.ListComp, ast.SetComp,
                                   ast.DictComp)):
                iters.extend(comp.iter for comp in node.generators)
        for it in iters:
            if id(it) in exempt or not _is_set_expr(it, set_names):
                continue
            findings.append(
                Finding(
                    rule="D1",
                    path=scope.path,
                    line=it.lineno,
                    col=it.col_offset,
                    symbol=scope.symbol,
                    message=(
                        "iterating an unordered set on a spec-hashed path "
                        "— the iteration order depends on hash "
                        "randomization and can leak into cached results"
                    ),
                    suggestion="iterate sorted(...) over the set, or feed "
                               "it to an order-insensitive reduction",
                    token="set-iteration",
                )
            )
    return findings


def rule_d2(model: CodeModel, config) -> list[Finding]:
    """Spec-hashed paths serialize dicts with ``sort_keys=True``."""
    analysis = analysis_for(model)
    findings = []
    for key, scope in _deterministic_scopes(model, config):
        for site in analysis.graph.callees(key):
            if site.receiver != "json" or site.name not in ("dumps", "dump"):
                continue
            call = _call_node_at(scope, site)
            if call is not None and _sorts_keys(call):
                continue
            findings.append(
                Finding(
                    rule="D2",
                    path=scope.path,
                    line=site.line,
                    col=site.col,
                    symbol=scope.symbol,
                    message=(
                        f"json.{site.name}(...) without sort_keys=True on "
                        "a spec-hashed path — dict insertion order leaks "
                        "into the serialized (and possibly hashed) bytes"
                    ),
                    suggestion="pass sort_keys=True",
                    token="unsorted-json",
                )
            )
    return findings


def _call_node_at(scope: Scope, site: CallSite) -> ast.Call | None:
    for node in scope.walk_own():
        if (
            isinstance(node, ast.Call)
            and node.lineno == site.line
            and node.col_offset == site.col
        ):
            return node
    return None


def _sorts_keys(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if keyword.arg == "sort_keys":
            value = keyword.value
            if isinstance(value, ast.Constant):
                return bool(value.value)
            return True  # dynamic flag: give it the benefit of the doubt
    return False
