"""The persist-order rule passes (P0-P5).

Each pass is a pure function of the :class:`~repro.lint.model.CodeModel`
and the run configuration, returning :class:`~repro.lint.findings.Finding`
objects.  The rules encode cc-NVM's write-ordering discipline
(PAPER.md §4.2-4.4):

* **P0** — the declaration layer itself must be statically readable.
* **P1** — persistent attributes are assigned only inside the owning
  class; everywhere else mutation must go through the owner's sanctioned
  micro-ops (TCB register ops, WPQ ``write``/``write_atomic``/...).
* **P2** — the crash-site registry and the instrumented code agree in
  both directions, and every persist point (atomic-batch signals, TCB
  root commits) executes under crash-site coverage so the fault campaign
  can actually reach it.
* **P3** — an atomic batch opens, fills and commits within a single
  function: no split batches, no unbalanced ``begin``/``commit``.
* **P4** — recovery-path code never reads volatile-domain attributes;
  after a crash only the NVM image and the persistent TCB registers
  exist, so consulting volatile state is a latent use-of-lost-state bug.
* **P5** — every scheme subclass implements the full
  ``SecureNVMScheme`` contract (the abstract write/evict/flush/recover
  seams).
"""

from __future__ import annotations

import ast

from repro.lint.findings import Finding
from repro.lint.model import (
    FAULT_CALL_NAMES,
    CodeModel,
    Scope,
    call_name,
    receiver_name,
)

#: Calls that advance persistent state wholesale — each must run under
#: crash-site coverage (rule P2) so the campaign can crash around it.
PERSIST_POINTS = ("begin_atomic", "commit_atomic", "commit_root", "set_roots")

#: The atomic draining protocol's WPQ signals (rule P3).
ATOMIC_OPS = ("begin_atomic", "write_atomic", "commit_atomic")


def _assign_targets(node: ast.AST):
    """Flatten the attribute targets of any assignment statement."""
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        targets = [node.target]
    else:
        return
    while targets:
        target = targets.pop()
        if isinstance(target, (ast.Tuple, ast.List)):
            targets.extend(target.elts)
        elif isinstance(target, ast.Starred):
            targets.append(target.value)
        elif isinstance(target, ast.Attribute):
            yield target


def _function_scopes(model: CodeModel):
    for scope in model.scopes:
        if isinstance(scope.node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield scope


# ---------------------------------------------------------------------------
# P0 — declaration hygiene
# ---------------------------------------------------------------------------

def rule_p0(model: CodeModel, config) -> list[Finding]:
    """Problems found while reading the declaration layer."""
    return list(model.problems)


# ---------------------------------------------------------------------------
# P1 — persistent-domain stores
# ---------------------------------------------------------------------------

def rule_p1(model: CodeModel, config) -> list[Finding]:
    findings = []
    for scope in model.scopes:
        for node in scope.walk_own():
            for target in _assign_targets(node):
                finding = _check_store(model, scope, target)
                if finding is not None:
                    findings.append(finding)
    return findings


def _check_store(model: CodeModel, scope: Scope, target: ast.Attribute):
    attr = target.attr
    if attr not in model.persistent_owners:
        return None
    recv = receiver_name(target.value)
    if recv == "self":
        # Inside the owning class (or a subclass inheriting the domain)
        # the store IS the sanctioned micro-op.  An unrelated class's
        # same-named `self.<attr>` lives in its own namespace.
        return None
    owners = [
        info
        for info in model.aka_map.get(recv, ())
        if attr in model.effective(info.name, "persistent")
    ]
    if not owners:
        return None
    owner = owners[0]
    if scope.class_name is not None and owner.name in model.lineage(scope.class_name):
        return None  # the owner (or a subclass) touching its own domain
    mutators = owner.decl.mutators if owner.decl else ()
    suggestion = (
        f"mutate {owner.name} through its sanctioned micro-ops"
        + (f" ({', '.join(mutators)})" if mutators else "")
        + " or route the change through the WPQ"
    )
    return Finding(
        "P1", scope.path, target.lineno, target.col_offset, scope.symbol,
        f"direct store to persistent attribute {recv}.{attr} "
        f"(owned by {owner.name}) outside the owning class — persist order "
        "is only guaranteed through the owner's micro-ops",
        suggestion=suggestion,
        token=f"{recv}.{attr}",
    )


# ---------------------------------------------------------------------------
# P2 — crash-site registry coherence and persist-point coverage
# ---------------------------------------------------------------------------

def rule_p2(model: CodeModel, config) -> list[Finding]:
    findings = []
    registry = (
        set(config.site_registry)
        if config.site_registry is not None
        else set(model.site_defs)
    )

    called: set[str] = set()
    for fc in model.fault_calls:
        if fc.site is None:
            findings.append(
                Finding(
                    "P2", fc.path, fc.line, fc.col, fc.symbol,
                    "fault-site argument is not a string literal; the "
                    "registry cross-check cannot see this site",
                    suggestion="pass the dotted site name as a literal",
                    token="nonliteral",
                )
            )
            continue
        called.add(fc.site)
        if fc.site not in registry:
            findings.append(
                Finding(
                    "P2", fc.path, fc.line, fc.col, fc.symbol,
                    f"fault site {fc.site!r} is not in the faults/plan.py "
                    "registry — the campaign can never arm it",
                    suggestion="register a FaultSite entry (name, component, "
                    "description, reachable schemes)",
                    token=f"unregistered:{fc.site}",
                )
            )

    for name in sorted(registry - called):
        site_def = model.site_defs.get(name)
        path = site_def.path if site_def else "<registry>"
        line = site_def.line if site_def else 0
        findings.append(
            Finding(
                "P2", path, line, 0, "<registry>",
                f"registered fault site {name!r} appears in no "
                "_fault()/fault_hook() call — registry drift",
                suggestion="instrument the micro-step or retire the entry",
                token=f"unused:{name}",
            )
        )

    findings.extend(_persist_point_coverage(model, registry))
    return findings


def _persist_point_coverage(model: CodeModel, registry: set[str]) -> list[Finding]:
    findings = []
    instrumented_scopes = {(fc.path, fc.symbol) for fc in model.fault_calls}
    for scope in _function_scopes(model):
        if scope.node.name in FAULT_CALL_NAMES:
            continue
        scope_covered = (scope.path, scope.symbol) in instrumented_scopes
        for node in scope.walk_own():
            if not isinstance(node, ast.Call):
                continue
            method = call_name(node.func)
            if method not in PERSIST_POINTS:
                continue
            if scope_covered:
                continue
            if _callee_self_instrumented(model, scope, node.func, method):
                continue
            findings.append(
                Finding(
                    "P2", scope.path, node.lineno, node.col_offset, scope.symbol,
                    f"persist point {method}() executes with no crash site in "
                    "scope — the fault campaign cannot land a power failure "
                    "around this state transition",
                    suggestion="add a _fault(\"<component>.<step>\") call (and "
                    "registry entry) before/after the persist point, or "
                    "baseline it with a justification in DESIGN.md",
                    token=f"uncovered:{method}",
                )
            )
    return findings


def _callee_self_instrumented(
    model: CodeModel, scope: Scope, func: ast.AST, method: str
) -> bool:
    """Is the called persist-point method instrumented in its own body?"""
    if not isinstance(func, ast.Attribute):
        return False
    recv = receiver_name(func.value)
    candidates = []
    if recv == "self" and scope.class_name is not None:
        candidates.append(scope.class_name)
    candidates.extend(info.name for info in model.aka_map.get(recv, ()))
    return any(
        model.owner_is_self_instrumented(cls_name, method) for cls_name in candidates
    )


# ---------------------------------------------------------------------------
# P3 — atomic-batch bracketing
# ---------------------------------------------------------------------------

def rule_p3(model: CodeModel, config) -> list[Finding]:
    findings = []
    for scope in _function_scopes(model):
        calls: dict[str, list[ast.Call]] = {op: [] for op in ATOMIC_OPS}
        for node in scope.walk_own():
            if isinstance(node, ast.Call):
                name = call_name(node.func)
                if name in calls:
                    calls[name].append(node)
        if scope.class_name is not None and any(
            scope.node.name == op for op in ATOMIC_OPS
        ):
            continue  # the WPQ's own protocol methods
        begins, writes, commits = (
            calls["begin_atomic"], calls["write_atomic"], calls["commit_atomic"]
        )
        if writes and (not begins or not commits):
            first = writes[0]
            findings.append(
                Finding(
                    "P3", scope.path, first.lineno, first.col_offset, scope.symbol,
                    "write_atomic() without begin_atomic()+commit_atomic() in "
                    "the same function — atomic batches must not be split "
                    "across functions, or a crash can persist half an epoch",
                    suggestion="bracket the writes with begin_atomic()/"
                    "commit_atomic() locally, or use a single wpq.write()",
                    token="split-batch",
                )
            )
        if begins and len(begins) != len(commits):
            first = begins[0]
            findings.append(
                Finding(
                    "P3", scope.path, first.lineno, first.col_offset, scope.symbol,
                    f"unbalanced atomic batch: {len(begins)} begin_atomic() vs "
                    f"{len(commits)} commit_atomic() in this function — an "
                    "un-ended batch is silently dropped at the next crash",
                    suggestion="every begin_atomic() needs exactly one "
                    "commit_atomic() on every control-flow path",
                    token="unbalanced",
                )
            )
        elif commits and not begins and not writes:
            first = commits[0]
            findings.append(
                Finding(
                    "P3", scope.path, first.lineno, first.col_offset, scope.symbol,
                    "commit_atomic() without a begin_atomic() in this function "
                    "— the end signal is owned by whoever opened the batch",
                    suggestion="commit the batch in the function that began it",
                    token="stray-commit",
                )
            )
    return findings


# ---------------------------------------------------------------------------
# P4 — recovery-path volatile reads
# ---------------------------------------------------------------------------

def rule_p4(model: CodeModel, config) -> list[Finding]:
    findings = []
    for scope in _function_scopes(model):
        if not _is_recovery_scope(model, scope, config):
            continue
        seen: set[tuple[str, int]] = set()
        for node in scope.walk_own():
            if not (isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load)):
                continue
            attr = node.attr
            if attr not in model.volatile_owners:
                continue
            recv = receiver_name(node.value)
            owner = _volatile_owner(model, scope, recv, attr)
            if owner is None:
                continue
            key = (f"{recv}.{attr}", node.lineno)
            if key in seen:
                continue
            seen.add(key)
            findings.append(
                Finding(
                    "P4", scope.path, node.lineno, node.col_offset, scope.symbol,
                    f"recovery path reads volatile attribute {recv}.{attr} "
                    f"(declared volatile by {owner}) — after a crash only the "
                    "NVM image and persistent TCB registers exist",
                    suggestion="recompute the value from the NVM image or a "
                    "persistent register; volatile state must not feed recovery",
                    token=f"{recv}.{attr}",
                )
            )
    return findings


def _is_recovery_scope(model: CodeModel, scope: Scope, config) -> bool:
    normalized = scope.path.replace("\\", "/")
    if any(normalized.endswith(suffix) for suffix in config.recovery_files):
        return True
    if scope.class_name is not None and scope.node.name.startswith("recover"):
        lineage = model.lineage(scope.class_name)
        return config.scheme_root in lineage
    return False


def _volatile_owner(model: CodeModel, scope: Scope, recv, attr: str) -> str | None:
    if recv == "self" and scope.class_name is not None:
        if attr in model.effective(scope.class_name, "volatile"):
            return scope.class_name
        return None
    for info in model.aka_map.get(recv, ()):
        if attr in model.effective(info.name, "volatile"):
            return info.name
    return None


# ---------------------------------------------------------------------------
# P5 — the scheme contract
# ---------------------------------------------------------------------------

def rule_p5(model: CodeModel, config) -> list[Finding]:
    root = model.classes.get(config.scheme_root)
    if root is None:
        return []
    findings = []
    for sub in model.subclasses_of(config.scheme_root):
        for method in sorted(root.abstract_methods):
            resolved = model.resolve_method(sub.name, method)
            if resolved is None or (
                resolved.name == root.name and method in root.abstract_methods
            ):
                findings.append(
                    Finding(
                        "P5", sub.path, sub.line, 0, sub.name,
                        f"scheme {sub.name} does not implement {method}() — "
                        f"the {config.scheme_root} contract (write path, "
                        "eviction, flush, recovery) must be complete",
                        suggestion=f"implement {method}() or inherit it from a "
                        "concrete ancestor",
                        token=f"missing:{method}",
                    )
                )
    return findings


#: The full pass list, in reporting order.  The interprocedural
#: dataflow rules (P6/P7) and the determinism rules (D0-D2) live in
#: :mod:`repro.lint.ordering`; they share one call-graph build per run.
from repro.lint.ordering import (  # noqa: E402  (grouped with the list)
    rule_d0,
    rule_d1,
    rule_d2,
    rule_p6,
    rule_p7,
)

ALL_RULES = (
    rule_p0,
    rule_p1,
    rule_p2,
    rule_p3,
    rule_p4,
    rule_p5,
    rule_p6,
    rule_p7,
    rule_d0,
    rule_d1,
    rule_d2,
)
