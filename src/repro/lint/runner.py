"""Run the persist-order rule passes and fold in the baseline.

:func:`run_lint` is the single entry point used by the CLI, by CI and by
the unit tests; everything it needs is captured in :class:`LintConfig`
so tests can point it at seeded mini-trees.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.findings import RULES, Baseline, Finding, sort_findings
from repro.lint.model import build_model
from repro.lint.ordering import DEFAULT_DETERMINISTIC_ENTRIES
from repro.lint.rules import ALL_RULES

#: Version of the ``--json`` report layout.  Bump when a field is
#: renamed/removed; adding fields is backward compatible.
SCHEMA_VERSION = 1


@dataclass
class LintConfig:
    """One analyzer run: what to analyze and what to accept."""

    #: Directory tree to analyze (normally the installed ``repro`` package).
    root: Path
    #: Paths in findings are relative to this (default: ``root``'s parent).
    base_dir: Path | None = None
    #: Checked-in accepted-findings file, or ``None`` for no baseline.
    baseline_path: Path | None = None
    #: Override the crash-site registry (default: ``FaultSite`` defs found
    #: in the tree itself).
    site_registry: tuple[str, ...] | None = None
    #: Path suffixes whose every function is recovery-path code (P4).
    recovery_files: tuple[str, ...] = ("core/recovery.py",)
    #: Root class of the scheme contract (P4 recover methods, P5).
    scheme_root: str = "SecureNVMScheme"
    #: ``path-suffix::symbol-prefix`` entry patterns for the determinism
    #: rules (D0-D2); empty disables them.
    deterministic_entries: tuple[str, ...] = DEFAULT_DETERMINISTIC_ENTRIES
    #: Scheme seam names used as static entries by ``--cross-check``.
    cross_check_entries: tuple[str, ...] = (
        "writeback", "flush", "_on_dirty_meta_evict",
    )
    #: DESIGN.md (or equivalent) holding ``{#anchor}`` justifications.
    #: When set, every baseline entry must carry an anchor that resolves
    #: into this document (rule B0); ``None`` disables the check.
    design_path: Path | None = None


@dataclass
class LintReport:
    """The outcome of one analyzer run."""

    root: str
    findings: list[Finding] = field(default_factory=list)
    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale_baseline: list[str] = field(default_factory=list)
    baseline_path: str | None = None
    files_analyzed: int = 0
    #: Wall-clock analyzer runtime.  Deliberately *excluded* from
    #: :meth:`to_dict` so ``repro lint --json`` is byte-stable across
    #: runs; the CLI reports it on stderr and BENCH_lint.json records it.
    duration_seconds: float = 0.0

    def ok(self, strict: bool = False) -> bool:
        """Clean run: no unbaselined findings (strict: no stale entries)."""
        if self.new:
            return False
        if strict and self.stale_baseline:
            return False
        return True

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "root": self.root,
            "baseline": self.baseline_path,
            "files_analyzed": self.files_analyzed,
            "counts": {
                "total": len(self.findings),
                "new": len(self.new),
                "baselined": len(self.baselined),
                "stale_baseline": len(self.stale_baseline),
            },
            "rules": dict(RULES),
            "findings": [f.to_dict() for f in self.new],
            "baselined_findings": [f.to_dict() for f in self.baselined],
            "stale_baseline": list(self.stale_baseline),
        }

    def render_text(self) -> str:
        lines = []
        for finding in self.new:
            lines.append(finding.render())
        for key in self.stale_baseline:
            lines.append(f"stale baseline entry (violation no longer exists): {key}")
        summary = (
            f"repro lint: {len(self.new)} finding(s), "
            f"{len(self.baselined)} baselined, "
            f"{len(self.stale_baseline)} stale baseline entr(y/ies) "
            f"across {self.files_analyzed} file(s)"
        )
        lines.append(summary)
        return "\n".join(lines)


def run_lint(config: LintConfig) -> LintReport:
    """Build the model, run every rule pass, apply the baseline."""
    started = time.perf_counter()
    model = build_model(config.root, config.base_dir)
    findings: list[Finding] = []
    for rule in ALL_RULES:
        findings.extend(rule(model, config))

    baseline = (
        Baseline.load(config.baseline_path)
        if config.baseline_path is not None and Path(config.baseline_path).exists()
        else Baseline()
    )
    findings.extend(_baseline_anchor_findings(config, baseline))
    findings = sort_findings(findings)

    report = LintReport(
        root=str(config.root),
        findings=findings,
        baseline_path=baseline.path,
        files_analyzed=len(model.modules),
    )
    for finding in findings:
        if baseline.accepts(finding):
            report.baselined.append(finding)
        else:
            report.new.append(finding)
    report.stale_baseline = baseline.stale
    report.duration_seconds = time.perf_counter() - started
    return report


def _baseline_anchor_findings(config: LintConfig, baseline: Baseline) -> list[Finding]:
    """B0: every baseline entry must cite a resolvable DESIGN.md anchor."""
    if config.design_path is None or baseline.path is None:
        return []
    design_path = Path(config.design_path)
    design_text = (
        design_path.read_text(encoding="utf-8") if design_path.exists() else ""
    )
    findings = []
    file_name = Path(baseline.path).name
    for key in sorted(baseline.keys):
        parts = key.split("|")
        symbol = parts[2] if len(parts) >= 3 else key
        line = baseline.lines.get(key, 1)
        token = key.replace("|", ":")
        anchor = baseline.anchors.get(key)
        if anchor is None:
            findings.append(
                Finding(
                    rule="B0",
                    path=file_name,
                    line=line,
                    col=0,
                    symbol=symbol,
                    message=(
                        f"baseline entry {key} carries no justification "
                        f"anchor — exceptions must cite the "
                        f"{design_path.name} section that argues why they "
                        "are sound"
                    ),
                    suggestion=(
                        "append ' #anchor-name' to the entry and add a "
                        f"'{{#anchor-name}}' heading in {design_path.name}"
                    ),
                    token=f"unanchored:{token}",
                )
            )
        elif f"{{#{anchor}}}" not in design_text:
            findings.append(
                Finding(
                    rule="B0",
                    path=file_name,
                    line=line,
                    col=0,
                    symbol=symbol,
                    message=(
                        f"baseline anchor #{anchor} does not resolve: no "
                        f"'{{#{anchor}}}' heading in {design_path.name}"
                    ),
                    suggestion=(
                        f"add the heading to {design_path.name} or fix the "
                        "anchor name"
                    ),
                    token=f"dangling:{anchor}",
                )
            )
    return findings


def write_baseline(report: LintReport, path: Path) -> int:
    """Write every current finding key to *path*; returns the entry count.

    Keys are sorted and deduplicated (several findings can share one
    line-independent key).  Justification anchors already present in the
    existing file are preserved; new entries start unanchored (and the
    B0 rule will demand an anchor when ``design_path`` is configured).
    """
    path = Path(path)
    anchors: dict[str, str] = {}
    if path.exists():
        anchors = Baseline.load(path).anchors
    keys = sorted({f.key for f in report.findings if f.rule != "B0"})
    entries = [
        f"{key} #{anchors[key]}" if key in anchors else key for key in keys
    ]
    lines = [
        "# repro lint baseline - accepted persist-order findings.",
        "# One entry per line: rule|path|symbol|token [#design-anchor].",
        "# The anchor names the {#...} heading in DESIGN.md justifying the",
        "# exception; rule B0 fails entries whose anchor does not resolve.",
        *entries,
    ]
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    return len(keys)
