"""Run the persist-order rule passes and fold in the baseline.

:func:`run_lint` is the single entry point used by the CLI, by CI and by
the unit tests; everything it needs is captured in :class:`LintConfig`
so tests can point it at seeded mini-trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.findings import RULES, Baseline, Finding, sort_findings
from repro.lint.model import build_model
from repro.lint.rules import ALL_RULES


@dataclass
class LintConfig:
    """One analyzer run: what to analyze and what to accept."""

    #: Directory tree to analyze (normally the installed ``repro`` package).
    root: Path
    #: Paths in findings are relative to this (default: ``root``'s parent).
    base_dir: Path | None = None
    #: Checked-in accepted-findings file, or ``None`` for no baseline.
    baseline_path: Path | None = None
    #: Override the crash-site registry (default: ``FaultSite`` defs found
    #: in the tree itself).
    site_registry: tuple[str, ...] | None = None
    #: Path suffixes whose every function is recovery-path code (P4).
    recovery_files: tuple[str, ...] = ("core/recovery.py",)
    #: Root class of the scheme contract (P4 recover methods, P5).
    scheme_root: str = "SecureNVMScheme"


@dataclass
class LintReport:
    """The outcome of one analyzer run."""

    root: str
    findings: list[Finding] = field(default_factory=list)
    new: list[Finding] = field(default_factory=list)
    baselined: list[Finding] = field(default_factory=list)
    stale_baseline: list[str] = field(default_factory=list)
    baseline_path: str | None = None
    files_analyzed: int = 0

    def ok(self, strict: bool = False) -> bool:
        """Clean run: no unbaselined findings (strict: no stale entries)."""
        if self.new:
            return False
        if strict and self.stale_baseline:
            return False
        return True

    def to_dict(self) -> dict:
        return {
            "root": self.root,
            "baseline": self.baseline_path,
            "files_analyzed": self.files_analyzed,
            "counts": {
                "total": len(self.findings),
                "new": len(self.new),
                "baselined": len(self.baselined),
                "stale_baseline": len(self.stale_baseline),
            },
            "rules": dict(RULES),
            "findings": [f.to_dict() for f in self.new],
            "baselined_findings": [f.to_dict() for f in self.baselined],
            "stale_baseline": list(self.stale_baseline),
        }

    def render_text(self) -> str:
        lines = []
        for finding in self.new:
            lines.append(finding.render())
        for key in self.stale_baseline:
            lines.append(f"stale baseline entry (violation no longer exists): {key}")
        summary = (
            f"repro lint: {len(self.new)} finding(s), "
            f"{len(self.baselined)} baselined, "
            f"{len(self.stale_baseline)} stale baseline entr(y/ies) "
            f"across {self.files_analyzed} file(s)"
        )
        lines.append(summary)
        return "\n".join(lines)


def run_lint(config: LintConfig) -> LintReport:
    """Build the model, run every rule pass, apply the baseline."""
    model = build_model(config.root, config.base_dir)
    findings: list[Finding] = []
    for rule in ALL_RULES:
        findings.extend(rule(model, config))
    findings = sort_findings(findings)

    baseline = (
        Baseline.load(config.baseline_path)
        if config.baseline_path is not None and Path(config.baseline_path).exists()
        else Baseline()
    )
    report = LintReport(
        root=str(config.root),
        findings=findings,
        baseline_path=baseline.path,
        files_analyzed=len(model.modules),
    )
    for finding in findings:
        if baseline.accepts(finding):
            report.baselined.append(finding)
        else:
            report.new.append(finding)
    report.stale_baseline = baseline.stale
    return report


def write_baseline(report: LintReport, path: Path) -> int:
    """Write every current finding key to *path*; returns the entry count.

    Keys are sorted and deduplicated (several findings can share one
    line-independent key).
    """
    keys = sorted({f.key for f in report.findings})
    lines = [
        "# repro lint baseline - accepted persist-order findings.",
        "# One key per line: rule|path|symbol|token.",
        "# Every entry must be justified in DESIGN.md (persistence domains).",
        *keys,
    ]
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
    return len(keys)
