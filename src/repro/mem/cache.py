"""Set-associative write-back caches with LRU replacement.

One implementation serves the L1, the L2/LLC and the security meta cache;
per-role concerns (verified bits, per-line update counts for the epoch
trigger) live on :class:`CacheLine` fields the respective owner maintains.

Lines may carry an arbitrary payload — raw bytes in the data caches,
decoded :class:`~repro.metadata.counters.CounterLine` objects or tree-node
byte arrays in the meta cache, or ``None`` for pure timing studies.  Replacement
decisions are the caller's to act on: :meth:`Cache.fill` returns the
evicted victim so the owner can route the write-back through whatever
path the active scheme mandates — this is exactly the hook the secure-NVM
designs differ on.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

from repro.common.address import is_line_aligned
from repro.common.config import CacheConfig
from repro.common.stats import StatGroup


class CacheLine:
    """One resident cache line and its bookkeeping bits."""

    __slots__ = ("addr", "data", "dirty", "verified", "update_count")

    def __init__(self, addr: int, data: object | None, dirty: bool) -> None:
        self.addr = addr
        self.data = data
        self.dirty = dirty
        #: Meta-cache only: the line's contents were authenticated against
        #: the Merkle tree (or written by the TCB itself) and are trusted.
        self.verified = False
        #: Meta-cache only: updates since the line last became dirty
        #: (drives epoch-trigger condition 3, Section 4.2).
        self.update_count = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            c for c, on in (("D", self.dirty), ("V", self.verified)) if on
        )
        return f"CacheLine({self.addr:#x}{' ' + flags if flags else ''})"


class Cache:
    """A single-level set-associative cache."""

    def __init__(self, config: CacheConfig, stats: StatGroup | None = None) -> None:
        self.config = config
        self._sets: list[OrderedDict[int, CacheLine]] = [
            OrderedDict() for _ in range(config.num_sets)
        ]
        self._stats = stats if stats is not None else StatGroup(config.name)
        self._hits = self._stats.counter("hits")
        self._misses = self._stats.counter("misses")
        self._evictions = self._stats.counter("evictions")
        self._dirty_evictions = self._stats.counter("dirty_evictions")
        #: Optional observability bus (see :mod:`repro.obs`): dirty
        #: evictions are emitted as instants when set.
        self.obs = None

    @property
    def stats(self) -> StatGroup:
        """Hit/miss/eviction statistics."""
        return self._stats

    def _set_of(self, addr: int) -> OrderedDict[int, CacheLine]:
        if not is_line_aligned(addr):
            raise ValueError(f"cache access not line-aligned: {addr:#x}")
        index = addr >> 6
        if self.config.hashed_sets:
            index ^= (index >> 8) ^ (index >> 16) ^ (index >> 24)
        return self._sets[index % self.config.num_sets]

    # -- lookups ---------------------------------------------------------------

    def probe(self, addr: int) -> CacheLine | None:
        """Presence check without touching LRU state or statistics."""
        return self._set_of(addr).get(addr)

    def access(self, addr: int) -> CacheLine | None:
        """LRU-updating lookup; counts a hit or a miss."""
        cache_set = self._set_of(addr)
        line = cache_set.get(addr)
        if line is None:
            self._misses.inc()
            return None
        cache_set.move_to_end(addr)
        self._hits.inc()
        return line

    # -- content management ------------------------------------------------------

    def fill(self, addr: int, data: object | None = None, dirty: bool = False) -> CacheLine | None:
        """Install a line, returning the evicted victim (if any).

        If the line is already resident its data/dirty state is updated in
        place and no eviction occurs.
        """
        cache_set = self._set_of(addr)
        line = cache_set.get(addr)
        if line is not None:
            if data is not None:
                line.data = data
            line.dirty = line.dirty or dirty
            cache_set.move_to_end(addr)
            return None
        victim = None
        if len(cache_set) >= self.config.associativity:
            _, victim = cache_set.popitem(last=False)
            self._evictions.inc()
            if victim.dirty:
                self._dirty_evictions.inc()
                if self.obs is not None:
                    self.obs.instant(
                        "cache.dirty_evict", "cache", {"cache": self.config.name}
                    )
        cache_set[addr] = CacheLine(addr, data, dirty)
        return victim

    def would_evict(self, addr: int) -> CacheLine | None:
        """The victim a :meth:`fill` of *addr* would evict, without evicting.

        Returns ``None`` when *addr* is already resident or its set has a
        free way.  Schemes use this to act on a dirty victim *before* the
        eviction happens (cc-NVM drains the epoch first — trigger 2).
        """
        cache_set = self._set_of(addr)
        if addr in cache_set or len(cache_set) < self.config.associativity:
            return None
        return next(iter(cache_set.values()))

    def invalidate(self, addr: int) -> CacheLine | None:
        """Drop a line (returned to the caller, dirty or not)."""
        return self._set_of(addr).pop(addr, None)

    def clean(self, addr: int) -> None:
        """Clear the dirty bit of a resident line (post write-back)."""
        line = self.probe(addr)
        if line is not None:
            line.dirty = False
            line.update_count = 0

    def drop_all(self) -> None:
        """Invalidate the whole cache (models power loss of volatile SRAM)."""
        for cache_set in self._sets:
            cache_set.clear()

    # -- iteration ---------------------------------------------------------------

    def lines(self) -> Iterator[CacheLine]:
        """Iterate every resident line (unspecified order)."""
        for cache_set in self._sets:
            yield from cache_set.values()

    def dirty_lines(self) -> Iterator[CacheLine]:
        """Iterate every dirty resident line."""
        for line in self.lines():
            if line.dirty:
                yield line

    @property
    def occupancy(self) -> int:
        """Number of resident lines."""
        return sum(len(s) for s in self._sets)

    @property
    def hit_rate(self) -> float:
        """Fraction of accesses that hit (0.0 when no accesses yet)."""
        total = self._hits.value + self._misses.value
        return self._hits.value / total if total else 0.0
