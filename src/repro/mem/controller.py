"""Memory-controller timing model.

A single-channel controller with a read queue, a write queue and the
ADR-protected WPQ in front of a PCM device.  Two service paths model the
read-priority scheduling every modern controller implements:

* **Reads** are latency-critical: each takes the full 60 ns array
  latency, but consecutive reads pipeline across the device's banks, so
  the sustainable read rate is one line per (latency / banks).  The
  completion time is returned to the caller so the CPU can stall on
  demand misses.
* **Writes** are posted: they retire in the background at the device's
  banked write bandwidth without delaying reads — the
  paper's observation that "all extra metadata write traffic is incurred
  by data write-back, which is out of the critical path of the CPU
  execution" (Section 5.2).  The producer only stalls when the 64-entry
  write queue is full, which is exactly how a design that floods the
  write path (strict consistency's ~13 line writes per write-back) starts
  hurting IPC once "the NVM bandwidth [becomes] the bottleneck".

The functional path (what bytes land where) is delegated to the WPQ and
the device; this class only accounts for time.
"""

from __future__ import annotations

from collections import deque

from repro.common.config import SystemConfig
from repro.common.stats import StatGroup
from repro.mem.nvm import NVMDevice, PermanentMediaError, TransientReadFault
from repro.mem.wpq import WritePendingQueue


class MemoryController:
    """Queueing/timing front-end of the NVM device."""

    def __init__(
        self,
        config: SystemConfig,
        nvm: NVMDevice,
        stats: StatGroup | None = None,
    ) -> None:
        self.config = config
        self.nvm = nvm
        self._stats = stats if stats is not None else StatGroup("controller")
        self.wpq = WritePendingQueue(
            nvm, config.controller.wpq_entries, self._stats.group("wpq")
        )
        self._read_cycles = config.nvm_read_cycles
        self._write_cycles = config.nvm_write_cycles
        banks = config.nvm.banks
        self._read_interval = max(1, self._read_cycles // banks)
        self._write_interval = max(1, self._write_cycles // banks)
        self._wq_entries = config.controller.write_queue_entries
        #: Cycle at which the read path becomes free again.
        self._read_free_at = 0
        #: Completion times of writes still occupying write-queue slots.
        self._pending_writes: deque[int] = deque()
        self._read_latency = self._stats.distribution("read_latency")
        self._write_stalls = self._stats.counter("write_stall_cycles")
        self._reads_issued = self._stats.counter("reads_issued")
        self._writes_issued = self._stats.counter("writes_issued")
        self._media_retries = self._stats.counter(
            "media_read_retries", "re-reads after ECC-detected media faults"
        )
        self._media_absorbed = self._stats.counter(
            "media_faults_absorbed", "faulty reads recovered by retry"
        )
        self._media_failures = self._stats.counter(
            "media_permanent_failures", "lines given up on after the retry budget"
        )
        self._media_backoff = self._stats.counter(
            "media_backoff_cycles", "cycles spent backing off between retries"
        )
        self._media_backoff_capped = self._stats.counter(
            "media_backoff_capped", "retries whose backoff hit the hard ceiling"
        )
        #: Optional observability bus (see :mod:`repro.obs`): write-queue
        #: stalls and media retries are emitted as instants when set.
        self.obs = None

    @property
    def stats(self) -> StatGroup:
        """Controller timing statistics."""
        return self._stats

    def _drain_completed(self, now: int) -> None:
        while self._pending_writes and self._pending_writes[0] <= now:
            self._pending_writes.popleft()

    # -- functional read path (media-fault aware) ----------------------------------

    def read_line(self, addr: int) -> bytes:
        """Read one line, absorbing transient media faults by bounded retry.

        An ECC-detected fault is retried up to ``read_retry_limit`` times
        with exponential backoff (the backoff occupies the read port, so
        it shows up in subsequent read latencies).  A line still faulty
        after the budget raises :class:`PermanentMediaError` carrying the
        located address and region — graceful degradation is the caller's
        job, but the failure is never silent.
        """
        limit = self.config.controller.read_retry_limit
        backoff = self.config.controller.read_retry_backoff_cycles
        cap = self.config.controller.read_retry_backoff_cap_cycles
        attempt = 0
        while True:
            try:
                data = self.nvm.read_line(addr)
            except TransientReadFault:
                attempt += 1
                self._media_retries.inc()
                if self.obs is not None:
                    self.obs.instant(
                        "media.retry",
                        "controller",
                        {"addr": addr, "attempt": attempt},
                    )
                if attempt > limit:
                    self._media_failures.inc()
                    raise PermanentMediaError(
                        addr, self.nvm.layout.region_of(addr), attempt
                    ) from None
                if backoff >= cap:
                    backoff = cap
                    self._media_backoff_capped.inc()
                self._media_backoff.inc(backoff)
                self._read_free_at += backoff
                backoff = min(backoff * 2, cap)
                continue
            if attempt:
                self._media_absorbed.inc()
            return data

    # -- timing interface ---------------------------------------------------------

    def read_completion(self, now: int) -> int:
        """Issue a demand read at cycle *now*; return its completion cycle.

        Reads contend only with earlier reads (read-priority scheduling)
        and pipeline across banks; the returned latency includes the
        queueing delay when the read rate exceeds the banked bandwidth.
        """
        start = max(now, self._read_free_at)
        done = start + self._read_cycles
        self._read_free_at = start + self._read_interval
        self._reads_issued.inc()
        self._read_latency.sample(done - now)
        return done

    def post_write(self, now: int) -> int:
        """Post one line write at cycle *now*; return producer stall cycles.

        The write occupies a write-queue slot until the device retires it
        at the banked write bandwidth.  If all slots are busy the producer
        waits for the oldest write to retire — the returned stall.
        """
        self._drain_completed(now)
        stall = 0
        if len(self._pending_writes) >= self._wq_entries:
            oldest = self._pending_writes.popleft()
            stall = max(0, oldest - now)
            now += stall
            self._write_stalls.inc(stall)
            if stall and self.obs is not None:
                self.obs.instant("controller.write_stall", "controller", {"cycles": stall})
        last = self._pending_writes[-1] if self._pending_writes else now
        done = max(now, last) + self._write_interval
        self._pending_writes.append(done)
        self._writes_issued.inc()
        return stall

    def post_writes(self, now: int, count: int) -> int:
        """Post *count* line writes; return the total producer stall."""
        total = 0
        for _ in range(count):
            total += self.post_write(now + total)
        return total

    def drain_time(self, now: int) -> int:
        """Cycle at which every currently pending write has retired."""
        self._drain_completed(now)
        return max(now, self._pending_writes[-1] if self._pending_writes else now)

    @property
    def pending_write_count(self) -> int:
        """Write-queue occupancy (timing model view)."""
        return len(self._pending_writes)
