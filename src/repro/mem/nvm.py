"""Sparse line-addressed NVM device model.

The device stores 64 B lines in a dict keyed by line-aligned address, so a
16 GB address space costs only what the workload touches.  Never-written
lines read through the pluggable *initializer* — the format-time genesis
image (:mod:`repro.metadata.genesis`) — or as zeros without one.

Besides storage the device keeps the write/read traffic statistics that
Figure 5(b) is built from, classified per region (data, counter,
data-HMAC, Merkle) via the :class:`~repro.metadata.layout.MemoryLayout`.
Endurance-oriented per-line write counts are also tracked; they power the
wear-related assertions in the test suite (write amplification directly
attacks NVM lifetime, the motivation of Section 5.2).
"""

from __future__ import annotations

from repro.common.address import is_line_aligned
from repro.common.constants import CACHE_LINE_SIZE
from repro.common.persistence import persistence
from repro.common.stats import StatGroup
from repro.metadata.layout import MemoryLayout

_ZERO_LINE = bytes(CACHE_LINE_SIZE)


class TransientReadFault(Exception):
    """One device read returned an ECC-detected media fault.

    Raised by :meth:`NVMDevice.read_line` when an armed media-fault model
    (:mod:`repro.faults.media`) schedules a fault for this read.  The
    memory controller absorbs these with bounded retry-with-backoff; the
    device itself never retries.
    """

    def __init__(self, addr: int) -> None:
        super().__init__(f"ECC-detected read fault at NVM line {addr:#x}")
        self.addr = addr


class PermanentMediaError(Exception):
    """A line failed every retry the controller's budget allows.

    Carries enough context (address, region, attempts) for callers to
    degrade gracefully with a located report instead of crashing.
    """

    def __init__(self, addr: int, region: str, attempts: int) -> None:
        super().__init__(
            f"NVM line {addr:#x} ({region} region) still faulty after "
            f"{attempts} read attempts: media failure"
        )
        self.addr = addr
        self.region = region
        self.attempts = attempts


@persistence(
    persistent=("_lines", "_write_counts"),
    aka=("nvm",),
    mutators=("write_line", "write_partial", "poke", "restore"),
)
class NVMDevice:
    """The persistent, *untrusted* memory device.

    Everything stored here is visible to — and modifiable by — the
    attacker in the threat model; the attack-injection helpers in
    :mod:`repro.core.attacks` operate directly on this object.
    """

    def __init__(
        self,
        layout: MemoryLayout,
        stats: StatGroup | None = None,
        initializer=None,
    ) -> None:
        self.layout = layout
        self._lines: dict[int, bytes] = {}
        self._write_counts: dict[int, int] = {}
        #: Optional ``addr -> bytes`` callable providing the contents of
        #: never-written lines (the format-time genesis image).  ``None``
        #: falls back to all-zero lines.
        self._initializer = initializer
        #: Optional media-fault model (see :mod:`repro.faults.media`).
        #: Consulted on every :meth:`read_line`; ``None`` means a
        #: fault-free device.
        self._media = None
        self._stats = stats if stats is not None else StatGroup("nvm")
        self._reads = self._stats.group("reads")
        self._writes = self._stats.group("writes")
        self._read_total = self._stats.counter("read_total", "total line reads")
        self._write_total = self._stats.counter("write_total", "total line writes")

    @property
    def stats(self) -> StatGroup:
        """Traffic statistics for this device."""
        return self._stats

    def _check(self, addr: int) -> None:
        if not is_line_aligned(addr):
            raise ValueError(f"NVM access not line-aligned: {addr:#x}")
        if not 0 <= addr < self.layout.total_capacity:
            raise ValueError(f"NVM address out of range: {addr:#x}")

    # -- the memory-controller interface -------------------------------------

    def _virgin(self, addr: int) -> bytes:
        return self._initializer(addr) if self._initializer is not None else _ZERO_LINE

    def set_initializer(self, initializer) -> None:
        """Install the ``addr -> bytes`` provider for never-written lines."""
        self._initializer = initializer

    def set_media_model(self, media) -> None:
        """Install (or with ``None`` remove) a media-fault model.

        The model's ``on_read(addr)`` is consulted on every
        :meth:`read_line` and returns ``None`` (healthy), ``"detectable"``
        (ECC catches the fault — the read raises
        :class:`TransientReadFault`) or ``"silent"`` (the corrupted line is
        delivered; only the HMAC layer can notice).
        """
        self._media = media

    def read_line(self, addr: int) -> bytes:
        """Read one 64 B line (the genesis image if never written).

        Raises :class:`TransientReadFault` when the armed media model
        schedules an ECC-detected fault for this read; silently corrupted
        lines (faults ECC misses) are returned as-is and left for the
        integrity layer to catch.
        """
        self._check(addr)
        self._read_total.inc()
        self._reads.counter(self.layout.region_of(addr)).inc()
        line = self._lines.get(addr)
        if line is None:
            line = self._virgin(addr)
        if self._media is not None:
            action = self._media.on_read(addr)
            if action == "detectable":
                raise TransientReadFault(addr)
            if action == "silent":
                return self._media.corrupt(addr, line)
        return line

    def write_line(self, addr: int, data: bytes) -> None:
        """Write one 64 B line."""
        self._check(addr)
        if len(data) != CACHE_LINE_SIZE:
            raise ValueError("NVM writes are whole lines")
        self._write_total.inc()
        self._writes.counter(self.layout.region_of(addr)).inc()
        self._lines[addr] = bytes(data)
        self._write_counts[addr] = self._write_counts.get(addr, 0) + 1

    def write_partial(self, addr: int, offset: int, data: bytes) -> None:
        """Merge *data* into a line at byte *offset* (one line write).

        Models the controller's write-combining of sub-line metadata such
        as 128-bit data HMACs; it costs one device write like any other.
        """
        self._check(addr)
        if offset < 0 or offset + len(data) > CACHE_LINE_SIZE:
            raise ValueError("partial write exceeds the line")
        old = self._lines.get(addr)
        if old is None:
            old = self._virgin(addr)
        merged = old[:offset] + bytes(data) + old[offset + len(data):]
        self.write_line(addr, merged)

    # -- attacker / debugging back-door (no traffic accounting) ---------------

    def peek(self, addr: int) -> bytes:
        """Read a line without traffic accounting (attacker / test access)."""
        self._check(addr)
        line = self._lines.get(addr)
        return line if line is not None else self._virgin(addr)

    def virgin(self, addr: int) -> bytes:
        """The line's genesis (format-time) value, regardless of writes."""
        self._check(addr)
        return self._virgin(addr)

    def is_touched(self, addr: int) -> bool:
        """True once the line has been written (departed the genesis image)."""
        self._check(addr)
        return addr in self._lines

    def poke(self, addr: int, data: bytes) -> None:
        """Write a line without traffic accounting (attacker / test access)."""
        self._check(addr)
        if len(data) != CACHE_LINE_SIZE:
            raise ValueError("NVM lines are 64 B")
        self._lines[addr] = bytes(data)

    # -- introspection ---------------------------------------------------------

    def write_count(self, addr: int) -> int:
        """Number of device writes absorbed by the line at *addr*."""
        self._check(addr)
        return self._write_counts.get(addr, 0)

    @property
    def total_writes(self) -> int:
        """Total line writes absorbed by the device."""
        return self._write_total.value

    @property
    def total_reads(self) -> int:
        """Total line reads served by the device."""
        return self._read_total.value

    def writes_by_region(self) -> dict[str, int]:
        """Line writes per region name."""
        return {name: c.value for name, c in self._writes.counters.items()}

    def reads_by_region(self) -> dict[str, int]:
        """Line reads per region name."""
        return {name: c.value for name, c in self._reads.counters.items()}

    def touched_lines(self) -> list[int]:
        """Addresses of every line ever written (sorted)."""
        return sorted(self._lines)

    def snapshot(self) -> dict[int, bytes]:
        """Copy of the stored image (used by crash injection)."""
        return dict(self._lines)

    def restore(self, image: dict[int, bytes]) -> None:
        """Replace the stored image (crash-recovery rewind); stats are kept."""
        self._lines = dict(image)
