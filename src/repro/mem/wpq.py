"""Write pending queue (WPQ) with ADR persistence semantics.

The WPQ is the memory controller's persistence domain: the Asynchronous
DRAM Refresh (ADR) mechanism guarantees that, on power failure, everything
already accepted into the WPQ reaches NVM on backup power (Section 4.2).
cc-NVM builds its atomic draining protocol on exactly this property:

* *Normal* writes pass through the WPQ and are durable the moment they are
  accepted — modeled here as immediate write-through to the device.
* During an *atomic batch* (between the drainer's ``start`` and ``end``
  signals), metadata lines are blocked inside the WPQ.  Only when the
  ``end`` signal arrives are they released to NVM.  If the system crashes
  before ``end``, the residual batch is dropped wholesale, keeping the
  in-NVM Merkle tree in its previous consistent state; if it crashes after
  ``end``, ADR completes the flush, so the new consistent state lands in
  full.  Either way the tree is never half-updated — the all-or-nothing
  property Section 4.2's protocol needs.
"""

from __future__ import annotations

from repro.common.address import is_line_aligned
from repro.common.constants import CACHE_LINE_SIZE
from repro.common.persistence import persistence
from repro.common.stats import StatGroup
from repro.mem.nvm import NVMDevice


class AtomicBatchError(RuntimeError):
    """Raised on WPQ protocol violations (nesting, overflow, stray signals)."""


@persistence(
    volatile=("_batch", "obs"),
    aka=("wpq",),
    mutators=(
        "write",
        "write_partial",
        "begin_atomic",
        "write_atomic",
        "commit_atomic",
        "power_failure",
    ),
    # Ordering-point model (lint rules P6/P7): normal writes are durable
    # once accepted but *droppable* behind later in-flight traffic at a
    # power failure; a batch commit owns the WPQ end to end and is a fence.
    stores=("write", "write_partial"),
    fences=("commit_atomic",),
)
class WritePendingQueue:
    """The ADR-protected write queue in front of the NVM device."""

    def __init__(self, nvm: NVMDevice, entries: int, stats: StatGroup | None = None) -> None:
        if entries <= 0:
            raise ValueError("WPQ needs at least one entry")
        self.nvm = nvm
        self.entries = entries
        self._batch: list[tuple[int, bytes]] | None = None
        #: Optional fault-injection callback (see :mod:`repro.faults`):
        #: called with a dotted site name at every instrumented
        #: micro-step of the atomic draining protocol.
        self.fault_hook = None
        #: Optional persist-trace callback (see :mod:`repro.crashsim`):
        #: called with ``(kind, addr, data)`` after every persist
        #: micro-op so a recorder can rebuild the exact order in which
        #: lines became durable under ADR.
        self.trace_hook = None
        #: Optional observability bus (see :mod:`repro.obs`): every
        #: device write and atomic-batch bracket is emitted when set.
        self.obs = None
        self._stats = stats if stats is not None else StatGroup("wpq")
        self._normal_writes = self._stats.counter("normal_writes")
        self._batched_writes = self._stats.counter("batched_writes")
        self._batches_committed = self._stats.counter("batches_committed")
        self._batches_dropped = self._stats.counter("batches_dropped")
        self._batch_size_dist = self._stats.distribution("batch_size")

    @property
    def stats(self) -> StatGroup:
        """WPQ statistics (batch sizes, commit/drop counts)."""
        return self._stats

    def _fault(self, site: str) -> None:
        if self.fault_hook is not None:
            self.fault_hook(site)

    def _trace(self, kind: str, addr: int | None = None, data: bytes | None = None) -> None:
        if self.trace_hook is not None:
            self.trace_hook(kind, addr, data)

    # -- combined-group markers ---------------------------------------------------

    def begin_combined(self) -> None:
        """Mark the start of one controller write transaction.

        A *combined group* is a set of WPQ writes that travel to the
        controller as one transaction (e.g. a data line plus its HMAC
        sub-line plus the Nwb bump) and therefore either all reach the
        WPQ before a power failure or none do.  The markers are no-ops
        for the device; they only scope the persist trace.
        """
        self._trace("begin_combined")

    def end_combined(self) -> None:
        """Mark the end of the current combined write transaction."""
        self._trace("end_combined")

    @property
    def in_atomic_batch(self) -> bool:
        """True between a ``start`` signal and its ``end``/crash resolution."""
        return self._batch is not None

    @property
    def batch_size(self) -> int:
        """Entries buffered in the current atomic batch (0 outside one)."""
        return len(self._batch) if self._batch is not None else 0

    # -- normal traffic ---------------------------------------------------------

    def _validate_addr(self, addr: int) -> None:
        """Reject misaligned/out-of-range targets before any side effect.

        Validation happens *in the WPQ*, not only in the device: a bad
        address must fail before statistics are bumped (or, for atomic
        writes, before the line joins a batch that would then explode
        half-flushed at commit time).
        """
        if not is_line_aligned(addr):
            raise ValueError(f"WPQ write not line-aligned: {addr:#x}")
        if not 0 <= addr < self.nvm.layout.total_capacity:
            raise ValueError(f"WPQ write out of range: {addr:#x}")

    def _check_batch_conflict(self, addr: int) -> None:
        if self._batch is not None and any(a == addr for a, _ in self._batch):
            raise AtomicBatchError(
                f"normal write to {addr:#x} while the line is blocked in the "
                "atomic batch: the store would be ordered before the batch, "
                "breaking the all-or-nothing property"
            )

    def write(self, addr: int, data: bytes) -> None:
        """Accept a normal (immediately durable) line write."""
        self._validate_addr(addr)
        if len(data) != CACHE_LINE_SIZE:
            raise ValueError("WPQ line writes are whole 64 B lines")
        self._check_batch_conflict(addr)
        self._normal_writes.inc()
        self.nvm.write_line(addr, data)
        self._trace("write", addr)
        if self.obs is not None:
            self.obs.instant(
                "nvm.write",
                "wpq",
                {"region": self.nvm.layout.region_of(addr), "addr": addr},
            )

    def write_partial(self, addr: int, offset: int, data: bytes) -> None:
        """Accept a normal sub-line write (e.g. a 128-bit data HMAC)."""
        self._validate_addr(addr)
        if offset < 0 or offset + len(data) > CACHE_LINE_SIZE:
            raise ValueError(
                f"partial write [{offset}, {offset + len(data)}) exceeds the "
                f"{CACHE_LINE_SIZE} B line"
            )
        self._check_batch_conflict(addr)
        self._normal_writes.inc()
        self.nvm.write_partial(addr, offset, data)
        self._trace("write_partial", addr)
        if self.obs is not None:
            self.obs.instant(
                "nvm.write",
                "wpq",
                {"region": self.nvm.layout.region_of(addr), "addr": addr},
            )

    # -- atomic draining protocol -------------------------------------------------

    def begin_atomic(self) -> None:
        """The drainer's ``start`` signal: begin blocking metadata lines."""
        if self._batch is not None:
            raise AtomicBatchError("atomic batches cannot nest")
        self._batch = []
        self._trace("begin_atomic")
        self._fault("wpq.after_start")
        if self.obs is not None:
            self.obs.begin("wpq.batch", "wpq")

    def write_atomic(self, addr: int, data: bytes) -> None:
        """Block one metadata line inside the WPQ until the ``end`` signal."""
        if self._batch is None:
            raise AtomicBatchError("no atomic batch in progress")
        self._validate_addr(addr)
        if len(data) != CACHE_LINE_SIZE:
            raise ValueError("WPQ line writes are whole 64 B lines")
        if len(self._batch) >= self.entries:
            raise AtomicBatchError(
                f"atomic batch exceeds the {self.entries}-entry WPQ"
            )
        self._batch.append((addr, bytes(data)))
        self._trace("write_atomic", addr, bytes(data))
        self._fault("wpq.mid_batch")

    def commit_atomic(self) -> int:
        """The drainer's ``end`` signal: release the batch to NVM.

        Returns the number of lines flushed.  After this point the batch is
        durable even across an immediate power failure (ADR semantics).
        """
        if self._batch is None:
            raise AtomicBatchError("no atomic batch in progress")
        self._fault("wpq.before_end")
        batch, self._batch = self._batch, None
        for addr, data in batch:
            self.nvm.write_line(addr, data)
            if self.obs is not None:
                self.obs.instant(
                    "nvm.write",
                    "wpq",
                    {
                        "region": self.nvm.layout.region_of(addr),
                        "addr": addr,
                        "atomic": True,
                    },
                )
        self._trace("commit_atomic")
        self._fault("wpq.after_end")
        self._batched_writes.inc(len(batch))
        self._batches_committed.inc()
        self._batch_size_dist.sample(len(batch))
        if self.obs is not None:
            self.obs.end("wpq.batch", "wpq", {"lines": len(batch)})
        return len(batch)

    def power_failure(self) -> int:
        """Resolve a crash: drop any uncommitted batch (residual cachelines).

        Normal writes were already durable; an in-flight atomic batch that
        never saw its ``end`` signal is discarded, exactly as the protocol
        prescribes.  Returns the number of dropped entries.
        """
        if self._batch is None:
            self._trace("power_failure")
            if self.obs is not None:
                self.obs.instant("wpq.power_failure", "wpq", {"dropped": 0})
            return 0
        dropped, self._batch = self._batch, None
        self._batches_dropped.inc()
        self._trace("power_failure")
        if self.obs is not None:
            # The dropped batch's open span must still close so the
            # trace nests correctly across a crash.
            self.obs.end("wpq.batch", "wpq", {"lines": 0, "dropped": len(dropped)})
            self.obs.instant("wpq.power_failure", "wpq", {"dropped": len(dropped)})
        return len(dropped)
