"""Split-counter line codec.

One 64 B counter line serves one 4 KB data page (Section 2.2: "those
counters of different data blocks in the same data page are organized into
the same cache line").  Following the split-counter organization the line
packs one 64-bit *major* counter shared by the page plus sixty-four 7-bit
*minor* counters, one per data block:

::

    bytes 0..7   : major counter (little-endian)
    bytes 8..63  : 64 x 7-bit minor counters, LSB-first bit packing

The effective encryption counter of block *i* is the pair
``(major, minor[i])``.  A write-back increments ``minor[i]``; on overflow
the major counter is incremented, every minor resets to zero, and the whole
page must be re-encrypted under the new major (handled by the encryption
engine).
"""

from __future__ import annotations

from repro.common.constants import (
    BLOCKS_PER_PAGE,
    CACHE_LINE_SIZE,
    MAJOR_COUNTER_BYTES,
    MINOR_COUNTER_BITS,
    MINOR_COUNTER_MAX,
)

_MINOR_FIELD_BYTES = CACHE_LINE_SIZE - MAJOR_COUNTER_BYTES
_MAJOR_MAX = (1 << (8 * MAJOR_COUNTER_BYTES)) - 1


class CounterLine:
    """In-TCB decoded view of one split-counter line."""

    __slots__ = ("major", "minors")

    def __init__(self, major: int = 0, minors: list[int] | None = None) -> None:
        if not 0 <= major <= _MAJOR_MAX:
            raise ValueError("major counter out of range")
        if minors is None:
            minors = [0] * BLOCKS_PER_PAGE
        if len(minors) != BLOCKS_PER_PAGE:
            raise ValueError(f"expected {BLOCKS_PER_PAGE} minor counters")
        for m in minors:
            if not 0 <= m <= MINOR_COUNTER_MAX:
                raise ValueError("minor counter out of range")
        self.major = major
        self.minors = list(minors)

    # -- codec ---------------------------------------------------------------

    def encode(self) -> bytes:
        """Serialize to the 64 B NVM line format."""
        packed = 0
        for i, minor in enumerate(self.minors):
            packed |= minor << (i * MINOR_COUNTER_BITS)
        return self.major.to_bytes(MAJOR_COUNTER_BYTES, "little") + packed.to_bytes(
            _MINOR_FIELD_BYTES, "little"
        )

    @classmethod
    def decode(cls, raw: bytes) -> "CounterLine":
        """Parse a 64 B NVM line back into a :class:`CounterLine`."""
        if len(raw) != CACHE_LINE_SIZE:
            raise ValueError("counter lines are exactly one cache line")
        major = int.from_bytes(raw[:MAJOR_COUNTER_BYTES], "little")
        packed = int.from_bytes(raw[MAJOR_COUNTER_BYTES:], "little")
        minors = [
            (packed >> (i * MINOR_COUNTER_BITS)) & MINOR_COUNTER_MAX
            for i in range(BLOCKS_PER_PAGE)
        ]
        return cls(major, minors)

    # -- counter semantics ----------------------------------------------------

    def counter_pair(self, block: int) -> tuple[int, int]:
        """The (major, minor) encryption counter of page block *block*."""
        return self.major, self.minors[block]

    def increment(self, block: int) -> bool:
        """Bump block *block*'s counter for a write-back.

        Returns ``True`` when the minor counter overflowed, in which case
        the line has already been rolled to ``major + 1`` with all minors
        zeroed and the caller must re-encrypt the whole page.
        """
        if not 0 <= block < BLOCKS_PER_PAGE:
            raise ValueError(f"block index {block} out of range")
        if self.minors[block] < MINOR_COUNTER_MAX:
            self.minors[block] += 1
            return False
        if self.major == _MAJOR_MAX:
            raise OverflowError("major counter exhausted; page must be re-keyed")
        self.major += 1
        self.minors = [0] * BLOCKS_PER_PAGE
        return True

    def copy(self) -> "CounterLine":
        """Deep copy (used by crash snapshots and recovery trials)."""
        return CounterLine(self.major, list(self.minors))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CounterLine):
            return NotImplemented
        return self.major == other.major and self.minors == other.minors

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        hot = {i: m for i, m in enumerate(self.minors) if m}
        return f"CounterLine(major={self.major}, minors={hot or 0})"


def zero_counter_line() -> bytes:
    """Encoded form of an all-zero counter line (the NVM reset state)."""
    return bytes(CACHE_LINE_SIZE)
