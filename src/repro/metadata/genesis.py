"""The genesis (format-time) image of a secure NVM device.

When a secure-NVM DIMM is provisioned, the memory controller initializes
every region to a well-defined state: all encryption counters are zero,
every data block holds the counter-mode encryption of all-zero plaintext
under counter (0, 0), the data-HMAC region holds matching codes, and the
Merkle tree is built over the all-zero counter region.

Materializing that image for a 16 GB device is out of the question, but it
does not need to be: with content-keyed counter HMACs every untouched
subtree of a given level has the *same* node value, and untouched data and
HMAC lines are pure functions of their address.  :class:`GenesisImage`
computes any line of the pristine image on demand; plugged into the NVM
device as its line initializer, it makes the lazy sparse image
indistinguishable from a fully initialized DIMM.
"""

from __future__ import annotations

from repro.common.constants import (
    CACHE_LINE_SIZE,
    HMAC_SIZE,
    MERKLE_ARITY,
)
from repro.crypto.cme import CounterModeCipher
from repro.crypto.hmac_engine import HmacEngine
from repro.crypto.prf import SecretKey
from repro.metadata.counters import zero_counter_line
from repro.metadata.layout import MemoryLayout


class GenesisImage:
    """Lazily computes the pristine contents of any NVM line."""

    def __init__(
        self,
        layout: MemoryLayout,
        encryption_key: SecretKey,
        hmac_key: SecretKey,
    ) -> None:
        self.layout = layout
        self._cipher = CounterModeCipher(encryption_key)
        # A private engine so format-time work never pollutes runtime
        # HMAC-computation statistics.
        self._engine = HmacEngine(hmac_key)
        self._level_nodes: dict[int, bytes] = {}
        self._level_hmacs: dict[int, bytes] = {}

    # -- per-region values --------------------------------------------------------

    def data_line(self, addr: int) -> bytes:
        """Pristine data block: all-zero plaintext under counter (0, 0)."""
        return self._cipher.encrypt(bytes(CACHE_LINE_SIZE), addr, 0, 0)

    def data_hmac(self, addr: int) -> bytes:
        """Pristine data HMAC matching :meth:`data_line`."""
        return self._engine.data_hmac(self.data_line(addr), addr, 0, 0)

    def hmac_line(self, line_addr: int) -> bytes:
        """Pristine 64 B line of the data-HMAC region (4 packed codes)."""
        first_block = (line_addr - self.layout.hmac_base) // HMAC_SIZE
        parts = []
        for i in range(CACHE_LINE_SIZE // HMAC_SIZE):
            data_addr = (first_block + i) * CACHE_LINE_SIZE
            if data_addr < self.layout.data_capacity:
                parts.append(self.data_hmac(data_addr))
            else:
                parts.append(bytes(HMAC_SIZE))
        return b"".join(parts)

    def node(self, level: int) -> bytes:
        """The uniform pristine tree-node value at *level*.

        Level 0 is the all-zero counter line; each higher level packs
        four copies of the previous level's HMAC.  For layouts whose page
        count is not a power of four, partial nodes carry the uniform
        value in their dangling slots too — harmless, since verification
        only ever consults slots of children that exist (covered by the
        odd-geometry integration tests).
        """
        if level == 0:
            return zero_counter_line()
        cached = self._level_nodes.get(level)
        if cached is None:
            cached = self.node_hmac(level - 1) * MERKLE_ARITY
            self._level_nodes[level] = cached
        return cached

    def node_hmac(self, level: int) -> bytes:
        """HMAC of the pristine node value at *level*."""
        cached = self._level_hmacs.get(level)
        if cached is None:
            cached = self._engine.counter_hmac(self.node(level))
            self._level_hmacs[level] = cached
        return cached

    def root_register(self) -> bytes:
        """Pristine value of the TCB root registers (the genesis root node)."""
        return self.node(self.layout.root_level)

    # -- the NVM initializer hook -------------------------------------------------

    def line(self, addr: int) -> bytes:
        """Pristine contents of any line — the NVM device's initializer."""
        region = self.layout.region_of(addr)
        if region == "data":
            return self.data_line(addr)
        if region == "counter":
            return zero_counter_line()
        if region == "data_hmac":
            return self.hmac_line(addr)
        return self.node(self.layout.node_of_addr(addr).level)
