"""Physical address map of the secure NVM.

The device holds four regions.  The *data* region is what software sees;
the three metadata regions are managed by the memory controller:

::

    +-------------------+ 0
    |  data             |  user-visible capacity C
    +-------------------+ C
    |  counters         |  one 64 B split-counter line per 4 KB data page
    +-------------------+
    |  data HMACs       |  one 128-bit HMAC per 64 B data block
    +-------------------+
    |  Merkle nodes     |  internal levels of the 4-ary Bonsai MT
    +-------------------+

The Merkle tree's leaf level *is* the counter region (Bonsai MT
authenticates counters, not data — data is covered by the data HMACs,
which take the tree-protected counter as an input).  The root lives in an
on-chip TCB register and is never stored in NVM.  For the paper's 16 GB
device this yields 4 Mi counter lines and a 12-level tree: level 0 (the
counter leaves) through level 11 (the root), with levels 1..10 — the "10
internal path nodes" of Section 5.2 — resident in NVM.

All mappings are pure arithmetic; nothing is materialized, so a full
16 GB map costs a few integers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.address import block_in_page, line_align, page_index
from repro.common.constants import (
    CACHE_LINE_SIZE,
    HMAC_SIZE,
    MERKLE_ARITY,
    PAGE_SIZE,
)


@dataclass(frozen=True)
class MerkleNodeId:
    """Identity of one Merkle-tree node: (level, index within level).

    Level 0 is the counter-line leaf level; the highest level has a single
    node, the root.
    """

    level: int
    index: int


class MemoryLayout:
    """Computes every address mapping of the secure-NVM address space."""

    def __init__(self, data_capacity: int) -> None:
        if data_capacity <= 0 or data_capacity % PAGE_SIZE:
            raise ValueError("data capacity must be a positive multiple of the page size")
        self.data_capacity = data_capacity
        self.num_pages = data_capacity // PAGE_SIZE
        self.num_data_lines = data_capacity // CACHE_LINE_SIZE

        # Region bases.
        self.counter_base = data_capacity
        counter_bytes = self.num_pages * CACHE_LINE_SIZE
        self.hmac_base = self.counter_base + counter_bytes
        hmac_bytes = self.num_data_lines * HMAC_SIZE
        # Round the HMAC region up to a whole line.
        hmac_bytes = (hmac_bytes + CACHE_LINE_SIZE - 1) & ~(CACHE_LINE_SIZE - 1)
        self.merkle_base = self.hmac_base + hmac_bytes

        # Tree geometry: level_counts[k] = number of nodes at level k.
        counts = [self.num_pages]
        while counts[-1] > 1:
            counts.append((counts[-1] + MERKLE_ARITY - 1) // MERKLE_ARITY)
        self.level_counts: tuple[int, ...] = tuple(counts)

        # NVM offsets for internal levels 1 .. root_level-1 (leaves live in
        # the counter region; the root lives in the TCB).
        offsets: dict[int, int] = {}
        cursor = self.merkle_base
        for level in range(1, self.root_level):
            offsets[level] = cursor
            cursor += self.level_counts[level] * CACHE_LINE_SIZE
        self._level_offsets = offsets
        self.total_capacity = cursor

    # -- tree geometry -----------------------------------------------------

    @property
    def num_levels(self) -> int:
        """Total tree levels including the counter leaves and the root."""
        return len(self.level_counts)

    @property
    def root_level(self) -> int:
        """Level number of the root node (``num_levels - 1``)."""
        return len(self.level_counts) - 1

    @property
    def root(self) -> MerkleNodeId:
        """The root node id."""
        return MerkleNodeId(self.root_level, 0)

    def parent_of(self, node: MerkleNodeId) -> MerkleNodeId:
        """Parent node of *node* (undefined for the root)."""
        if node.level >= self.root_level:
            raise ValueError("the root has no parent")
        return MerkleNodeId(node.level + 1, node.index // MERKLE_ARITY)

    def children_of(self, node: MerkleNodeId) -> list[MerkleNodeId]:
        """Children of an internal *node* (empty for leaves)."""
        if node.level == 0:
            return []
        child_level = node.level - 1
        first = node.index * MERKLE_ARITY
        last = min(first + MERKLE_ARITY, self.level_counts[child_level])
        return [MerkleNodeId(child_level, i) for i in range(first, last)]

    def slot_in_parent(self, node: MerkleNodeId) -> int:
        """Which of the parent's HMAC slots (0..3) covers *node*."""
        if node.level >= self.root_level:
            raise ValueError("the root has no parent slot")
        return node.index % MERKLE_ARITY

    def ancestors_of_leaf(self, leaf_index: int) -> list[MerkleNodeId]:
        """All ancestors of counter leaf *leaf_index*, bottom-up, root last."""
        if not 0 <= leaf_index < self.num_pages:
            raise ValueError(f"leaf index {leaf_index} out of range")
        nodes = []
        node = MerkleNodeId(0, leaf_index)
        while node.level < self.root_level:
            node = self.parent_of(node)
            nodes.append(node)
        return nodes

    # -- address mappings ----------------------------------------------------

    def check_data_address(self, addr: int) -> None:
        """Raise if *addr* is not a valid data-region address."""
        if not 0 <= addr < self.data_capacity:
            raise ValueError(f"address {addr:#x} outside the data region")

    def counter_line_addr(self, data_addr: int) -> int:
        """NVM address of the counter line covering *data_addr*'s page."""
        self.check_data_address(data_addr)
        return self.counter_base + page_index(data_addr) * CACHE_LINE_SIZE

    def counter_leaf_index(self, data_addr: int) -> int:
        """Merkle leaf index (= page index) covering *data_addr*."""
        self.check_data_address(data_addr)
        return page_index(data_addr)

    def leaf_index_of_counter_addr(self, counter_addr: int) -> int:
        """Inverse of :meth:`counter_line_addr` for counter-region lines."""
        if not self.counter_base <= counter_addr < self.hmac_base:
            raise ValueError(f"address {counter_addr:#x} not in the counter region")
        return (counter_addr - self.counter_base) // CACHE_LINE_SIZE

    def block_slot(self, data_addr: int) -> int:
        """Index (0..63) of *data_addr*'s block inside its counter line."""
        self.check_data_address(data_addr)
        return block_in_page(data_addr)

    def data_hmac_location(self, data_addr: int) -> tuple[int, int]:
        """(line address, byte offset) of the data HMAC for *data_addr*'s block.

        Four 128-bit data HMACs share one 64 B metadata line.
        """
        self.check_data_address(data_addr)
        block = line_align(data_addr) // CACHE_LINE_SIZE
        byte_pos = self.hmac_base + block * HMAC_SIZE
        return line_align(byte_pos), byte_pos & (CACHE_LINE_SIZE - 1)

    def merkle_node_addr(self, node: MerkleNodeId) -> int:
        """NVM address of a tree node.

        Valid for leaves (counter region) and internal levels; the root has
        no NVM address (it lives in the TCB) and raises.
        """
        if node.level == 0:
            if not 0 <= node.index < self.num_pages:
                raise ValueError(f"leaf index {node.index} out of range")
            return self.counter_base + node.index * CACHE_LINE_SIZE
        if node.level == self.root_level:
            raise ValueError("the root is stored in the TCB, not in NVM")
        if not 0 < node.level < self.root_level:
            raise ValueError(f"no such tree level: {node.level}")
        if not 0 <= node.index < self.level_counts[node.level]:
            raise ValueError(f"node index {node.index} out of range at level {node.level}")
        return self._level_offsets[node.level] + node.index * CACHE_LINE_SIZE

    def node_of_addr(self, addr: int) -> MerkleNodeId:
        """Inverse of :meth:`merkle_node_addr` for counter/Merkle addresses."""
        if self.counter_base <= addr < self.hmac_base:
            return MerkleNodeId(0, (addr - self.counter_base) // CACHE_LINE_SIZE)
        for level in range(1, self.root_level):
            base = self._level_offsets[level]
            size = self.level_counts[level] * CACHE_LINE_SIZE
            if base <= addr < base + size:
                return MerkleNodeId(level, (addr - base) // CACHE_LINE_SIZE)
        raise ValueError(f"address {addr:#x} is not a tree-node address")

    def region_of(self, addr: int) -> str:
        """Region name ('data' | 'counter' | 'data_hmac' | 'merkle') of *addr*."""
        if addr < 0 or addr >= self.total_capacity:
            raise ValueError(f"address {addr:#x} outside the device")
        if addr < self.counter_base:
            return "data"
        if addr < self.hmac_base:
            return "counter"
        if addr < self.merkle_base:
            return "data_hmac"
        return "merkle"

    def metadata_addresses_for_writeback(self, data_addr: int) -> list[int]:
        """Every metadata line a write-back to *data_addr* can dirty.

        This is the deterministic address set Section 4.2 relies on ("for a
        specific data block, the related metadata addresses are
        deterministic"): the counter line plus the NVM-resident ancestors
        on its Merkle path (the root is in the TCB).  The data HMAC line is
        excluded — data HMACs bypass the meta cache.
        """
        leaf = self.counter_leaf_index(data_addr)
        addrs = [self.counter_line_addr(data_addr)]
        for node in self.ancestors_of_leaf(leaf):
            if node.level < self.root_level:
                addrs.append(self.merkle_node_addr(node))
        return addrs
