"""Bonsai Merkle Tree operations over the NVM image.

The tree authenticates the counter region (Figure 1): its leaves are the
64 B counter lines, each internal node packs the four 128-bit counter
HMACs of its children, and the root node lives in a TCB register.  This
module provides the *whole-image* operations — computing the root implied
by the counter region, checking the stored tree's internal consistency,
locating the first mismatching edges (how replay attacks are pinpointed
during recovery, Section 4.4 step 1), and rebuilding after counters have
been recovered.

All operations are **sparse**: untouched subtrees equal the genesis image
by construction, so only lines actually written (plus their ancestor
paths) are ever visited.  That is what makes the paper's full 16 GB
device — with its 12-level tree — directly simulable.

The *runtime* incremental path (cached verification, deferred spreading)
lives with the meta cache in :mod:`repro.metadata.metacache`; both share
the slot-manipulation helpers defined here.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.constants import CACHE_LINE_SIZE, HMAC_SIZE, MERKLE_ARITY
from repro.crypto.hmac_engine import HmacEngine
from repro.mem.nvm import NVMDevice
from repro.metadata.genesis import GenesisImage
from repro.metadata.layout import MemoryLayout, MerkleNodeId


def read_slot(node: bytes, slot: int) -> bytes:
    """Extract the *slot*-th (0..3) child HMAC from a 64 B tree node."""
    if not 0 <= slot < MERKLE_ARITY:
        raise ValueError(f"slot {slot} out of range")
    return bytes(node[slot * HMAC_SIZE:(slot + 1) * HMAC_SIZE])


def write_slot(node: bytes, slot: int, hmac: bytes) -> bytes:
    """Return *node* with its *slot*-th child HMAC replaced."""
    if not 0 <= slot < MERKLE_ARITY:
        raise ValueError(f"slot {slot} out of range")
    if len(hmac) != HMAC_SIZE:
        raise ValueError("HMAC codewords are 128-bit")
    if len(node) != CACHE_LINE_SIZE:
        raise ValueError("tree nodes are one cache line")
    return node[:slot * HMAC_SIZE] + bytes(hmac) + node[(slot + 1) * HMAC_SIZE:]


@dataclass(frozen=True)
class MismatchedEdge:
    """A parent/child pair whose stored HMAC disagrees with the child.

    ``parent`` is ``None`` when the mismatch is against the TCB root
    register itself.
    """

    parent: MerkleNodeId | None
    child: MerkleNodeId


class MerkleTree:
    """Sparse whole-image Bonsai MT over an NVM device's counter region."""

    def __init__(self, nvm: NVMDevice, engine: HmacEngine, genesis: GenesisImage) -> None:
        self.nvm = nvm
        self.layout: MemoryLayout = nvm.layout
        self.engine = engine
        self.genesis = genesis

    # -- node access (attacker-visible image; no traffic accounting) -----------

    def node_bytes(self, node: MerkleNodeId) -> bytes:
        """Current NVM contents of *node* (genesis value if untouched)."""
        return self.nvm.peek(self.layout.merkle_node_addr(node))

    def child_hmac(self, child: MerkleNodeId) -> bytes:
        """HMAC of *child*'s current contents, as its parent should store it."""
        addr = self.layout.merkle_node_addr(child)
        if not self.nvm.is_touched(addr):
            return self.genesis.node_hmac(child.level)
        return self.engine.counter_hmac(self.nvm.peek(addr))

    # -- sparse touched-node bookkeeping ------------------------------------------

    def _touched_nodes(self) -> dict[int, set[int]]:
        """Touched counter/Merkle lines grouped as {level: {index, ...}}."""
        per_level: dict[int, set[int]] = {}
        for addr in self.nvm.touched_lines():
            region = self.layout.region_of(addr)
            if region not in ("counter", "merkle"):
                continue
            node = self.layout.node_of_addr(addr)
            per_level.setdefault(node.level, set()).add(node.index)
        return per_level

    # -- bulk operations ----------------------------------------------------------

    def _propagate(self, poke: bool) -> bytes:
        """Recompute the tree bottom-up over the affected sparse node set.

        Affected nodes are the touched counter leaves, every touched
        internal node, and all their ancestors; everything else is genesis
        and needs no work.  With *poke* the recomputed internal nodes are
        written back to the image (recovery's rebuild); without it the
        image is left untouched (a pure what-root-should-be query).
        Returns the implied 64 B root-node value.
        """
        layout = self.layout
        touched = self._touched_nodes()
        # Leaf inputs: the stored counter lines.
        current: dict[int, bytes] = {
            idx: self.node_bytes(MerkleNodeId(0, idx))
            for idx in touched.get(0, set())
        }
        for level in range(1, layout.num_levels):
            affected = {idx // MERKLE_ARITY for idx in current}
            affected |= touched.get(level, set())
            parents: dict[int, bytes] = {}
            for parent_idx in affected:
                node = self.genesis.node(level)
                for slot in range(MERKLE_ARITY):
                    child_idx = parent_idx * MERKLE_ARITY + slot
                    if child_idx >= layout.level_counts[level - 1]:
                        break
                    child_val = current.get(child_idx)
                    if child_val is not None:
                        node = write_slot(
                            node, slot, self.engine.counter_hmac(child_val)
                        )
                parents[parent_idx] = node
                if poke and level < layout.root_level:
                    self.nvm.poke(
                        layout.merkle_node_addr(MerkleNodeId(level, parent_idx)), node
                    )
            current = parents
        return current.get(0, self.genesis.root_register())

    def compute_root(self) -> bytes:
        """Root-node value implied by the current counter region.

        Performs no NVM writes; this is the check recovery uses to ask
        "does the reconstructed tree match a TCB root?".
        """
        return self._propagate(poke=False)

    def build(self) -> bytes:
        """Rebuild every affected internal node in NVM from the counters.

        Used at recovery step 4 ("rebuild the Merkle Tree based on the
        recovered counters") and by tests that want a consistent image.
        Returns the 64 B root-node value for the TCB registers.
        """
        return self._propagate(poke=True)

    def find_mismatches(self, root_register: bytes) -> list[MismatchedEdge]:
        """Every stored parent/child edge whose HMAC check fails.

        Compares each relevant node against the HMAC its parent (or the
        TCB *root_register* for the top internal level) stores for it.
        Only edges adjacent to a touched node can mismatch — untouched
        edges are genesis-consistent — so the scan is sparse.  An
        internally consistent, untampered image returns ``[]``; a
        replayed node shows up as a mismatch on an adjacent edge, which
        is precisely how recovery *locates* normal replay attacks.
        Results are ordered bottom-up, leaf edges first.
        """
        layout = self.layout
        touched = self._touched_nodes()
        edges: set[tuple[int, int]] = set()  # child (level, index)
        for level, indices in touched.items():
            for index in indices:
                node = MerkleNodeId(level, index)
                if level < layout.root_level:
                    edges.add((level, index))  # the edge above this node
                for child in layout.children_of(node):
                    edges.add((child.level, child.index))  # edges below
        mismatches = []
        for level, index in sorted(edges):
            child = MerkleNodeId(level, index)
            parent = layout.parent_of(child)
            slot = layout.slot_in_parent(child)
            if parent.level == layout.root_level:
                stored = read_slot(root_register, slot)
                parent_id = None
            else:
                stored = read_slot(self.node_bytes(parent), slot)
                parent_id = parent
            if stored != self.child_hmac(child):
                mismatches.append(MismatchedEdge(parent_id, child))
        return mismatches

    def verify_consistent(self, root_register: bytes) -> bool:
        """True when the stored tree matches itself and *root_register*."""
        return not self.find_mismatches(root_register)
