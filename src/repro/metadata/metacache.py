"""The meta cache: verified on-chip caching of counters and tree nodes.

The paper places a shared 128 KB, 8-way cache at the L2 level that holds
both encryption counter lines and Merkle-tree nodes (Section 5).  A line
resident here has been authenticated on the way in (or was produced by the
TCB itself) and is therefore *trusted*: integrity verification of a child
can stop as soon as an ancestor is found in this cache — "the cached tree
nodes have already been verified and their security is guaranteed being
on-chip" (Section 2.2).  Exactly this property also powers cc-NVM's
deferred spreading.

:class:`MetadataStore` wraps the cache with:

* **verified loads** — a miss walks the Merkle path upward, reading
  uncached ancestors from NVM until it reaches a cached (trusted) node or
  the TCB root register, then verifies downward and installs every node as
  clean+verified.  A mismatch raises :class:`IntegrityError` — runtime
  attack detection;
* **scheme-pluggable eviction policy** — cc-NVM must drain the epoch
  *before* a dirty metadata line leaves the cache (trigger 2), while
  conventional designs lazily propagate the victim's HMAC to its parent
  and write the victim back.  Both hooks are injected by the owning
  scheme;
* **timing accounting** — every load reports the cycles it cost (meta-
  cache hit latency, NVM reads, HMAC checks) so schemes can charge it to
  the write-back or read path.

Counter lines are cached *decoded* (as :class:`CounterLine`), tree nodes
as raw 64 B values; :meth:`MetadataStore.encoded` renders either for NVM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, TypeVar

from repro.common.config import SystemConfig
from repro.common.persistence import persistence
from repro.common.stats import StatGroup
from repro.crypto.hmac_engine import HmacEngine
from repro.core.tcb import TCB
from repro.mem.cache import Cache, CacheLine
from repro.mem.nvm import NVMDevice
from repro.metadata.counters import CounterLine
from repro.metadata.genesis import GenesisImage
from repro.metadata.layout import MemoryLayout, MerkleNodeId
from repro.metadata.merkle import read_slot

T = TypeVar("T")


class IntegrityError(Exception):
    """An integrity check failed — an attack was detected at runtime."""

    def __init__(self, message: str, node: MerkleNodeId | None = None) -> None:
        super().__init__(message)
        #: The tree node whose verification failed, when known.
        self.node = node


@dataclass(frozen=True)
class AccessResult(Generic[T]):
    """Outcome of one metadata load: the value, its cost, hit/miss."""

    value: T
    cycles: int
    hit: bool


@persistence(
    volatile=("cache", "overlay", "walk_depth", "obs"),
    aka=("meta",),
)
class MetadataStore:
    """Verified meta cache over the counter and Merkle regions."""

    def __init__(
        self,
        config: SystemConfig,
        cache: Cache,
        nvm: NVMDevice,
        engine: HmacEngine,
        tcb: TCB,
        genesis: GenesisImage,
        stats: StatGroup | None = None,
        reader=None,
    ) -> None:
        self.config = config
        self.cache = cache
        self.nvm = nvm
        #: ``addr -> bytes`` used for device reads during verification
        #: walks.  Defaults to the raw device; schemes pass the memory
        #: controller's retrying ``read_line`` so transient media faults
        #: are absorbed before a line is HMAC-checked.
        self._read_line = reader if reader is not None else nvm.read_line
        self.layout: MemoryLayout = nvm.layout
        self.engine = engine
        self.tcb = tcb
        self.genesis = genesis
        self._hit_latency = config.security.meta_cache.hit_latency
        self._read_cycles = config.nvm_read_cycles
        self._hmac_cycles = config.security.hmac_latency_cycles
        self._stats = stats if stats is not None else StatGroup("metastore")
        self._verify_walks = self._stats.distribution(
            "verify_walk_levels", "uncached levels walked per verified miss"
        )
        self._integrity_failures = self._stats.counter("integrity_failures")
        #: Called with a dirty victim *before* it would be evicted; the
        #: scheme may clean it (cc-NVM: drain the epoch).
        self.pre_evict: Callable[[CacheLine], None] | None = None
        #: Called with a victim that left the cache still dirty; the
        #: scheme must make it durable (lazy propagate + NVM write).
        self.on_dirty_evict: Callable[[CacheLine], None] | None = None
        #: Optional observability bus (see :mod:`repro.obs`): verified
        #: fills (with their walk depth) are emitted as instants when set.
        self.obs = None
        #: Depth of in-flight verification walks.  Schemes consult this
        #: to defer epoch drains: a drain rewrites NVM lines, which would
        #: invalidate the walk's point-in-time snapshots.
        self.walk_depth = 0
        #: Write-back overlay: newest encoded values of dirty lines that
        #: were evicted but whose NVM copy is *not yet* current (they are
        #: waiting for an epoch commit or an atomic batch).  Loads consult
        #: this before NVM so a stale image is never re-verified against
        #: an already-updated parent.  Values here originated on-chip and
        #: are therefore trusted without a verification walk.
        self.overlay: dict[int, bytes] = {}

    @property
    def stats(self) -> StatGroup:
        """Verification statistics."""
        return self._stats

    # -- encode/decode ---------------------------------------------------------------

    def encoded(self, line: CacheLine) -> bytes:
        """64 B NVM image of a cached metadata line."""
        if isinstance(line.data, CounterLine):
            return line.data.encode()
        if isinstance(line.data, (bytes, bytearray)):
            return bytes(line.data)
        raise TypeError(f"unexpected meta cache payload: {type(line.data)!r}")

    # -- installation with eviction policy ----------------------------------------------

    def install(self, addr: int, value: object, dirty: bool, verified: bool) -> CacheLine:
        """Insert *value* at *addr*, honouring the scheme's eviction hooks."""
        victim = self.cache.would_evict(addr)
        if victim is not None and victim.dirty and self.pre_evict is not None:
            self.pre_evict(victim)
        victim = self.cache.fill(addr, value, dirty)
        if victim is not None and victim.dirty:
            if self.on_dirty_evict is None:
                raise RuntimeError(
                    "dirty metadata evicted with no write-back policy installed"
                )
            self.on_dirty_evict(victim)
        line = self.cache.probe(addr)
        line.verified = line.verified or verified
        return line

    # -- raw NVM decode ---------------------------------------------------------------

    def _decode(self, addr: int, raw: bytes) -> object:
        if self.layout.region_of(addr) == "counter":
            return CounterLine.decode(raw)
        return raw

    # -- verified loads ----------------------------------------------------------------

    def load_verified(self, addr: int) -> AccessResult:
        """Load the metadata line at *addr*, authenticating it if uncached.

        On a miss, reads the line and every uncached ancestor from NVM,
        verifies the chain top-down starting from the first trusted
        ancestor (a cached node, or the TCB ``root_new`` register), and
        installs all of it as clean+verified.  Raises
        :class:`IntegrityError` on any mismatch, naming the offending
        node — runtime detection *and location* of integrity attacks.
        """
        line = self.cache.access(addr)
        if line is not None:
            return AccessResult(line.data, self._hit_latency, True)

        pending = self.overlay.pop(addr, None)
        if pending is not None:
            installed = self.install(
                addr, self._decode(addr, pending), dirty=True, verified=True
            )
            return AccessResult(installed.data, self._hit_latency, False)

        layout = self.layout
        target = layout.node_of_addr(addr)
        self.walk_depth += 1
        try:
            return self._walk_and_verify(addr, target)
        finally:
            self.walk_depth -= 1

    def _walk_and_verify(self, addr: int, target: MerkleNodeId) -> AccessResult:
        layout = self.layout
        # Collect the uncached suffix of the path: target first, upward.
        chain: list[tuple[MerkleNodeId, int, bytes]] = []
        node = target
        node_addr = addr
        cycles = self._hit_latency  # the lookup that missed
        while True:
            raw = self._read_line(node_addr)
            cycles += self._read_cycles
            chain.append((node, node_addr, raw))
            if node.level + 1 == layout.num_levels:
                trusted_slot_source = None  # verify topmost against TCB root
                break
            parent = layout.parent_of(node)
            if parent.level == layout.root_level:
                trusted_slot_source = None
                break
            parent_addr = layout.merkle_node_addr(parent)
            parent_line = self.cache.access(parent_addr)
            if parent_line is not None:
                cycles += self._hit_latency
                trusted_slot_source = parent_line.data
                break
            pending = self.overlay.pop(parent_addr, None)
            if pending is not None:
                # The parent's newest value was evicted into the overlay
                # (its commit is still pending).  It originated on-chip,
                # so it is trusted exactly like a cached ancestor; its
                # stale NVM copy must not be read instead.
                installed = self.install(
                    parent_addr,
                    self._decode(parent_addr, pending),
                    dirty=True,
                    verified=True,
                )
                cycles += self._hit_latency
                trusted_slot_source = installed.data
                break
            node = parent
            node_addr = parent_addr
        self._verify_walks.sample(len(chain))
        if self.obs is not None:
            self.obs.instant(
                "meta.fill",
                "meta",
                {"addr": addr, "levels": len(chain), "region": self.layout.region_of(addr)},
            )

        # Verify top-down: the topmost fetched node against the trusted
        # source, then each fetched node against the one above it.
        for i in range(len(chain) - 1, -1, -1):
            node, node_addr, raw = chain[i]
            slot = layout.slot_in_parent(node)
            if i == len(chain) - 1:
                if trusted_slot_source is None:
                    stored = read_slot(self.tcb.root_new, slot)
                else:
                    stored = read_slot(bytes(trusted_slot_source), slot)
            else:
                stored = read_slot(chain[i + 1][2], slot)
            computed = self.engine.counter_hmac(raw)
            cycles += self._hmac_cycles
            if not self.engine.verify(stored, computed):
                self._integrity_failures.inc()
                raise IntegrityError(
                    f"counter HMAC mismatch at level {node.level}, "
                    f"index {node.index} (addr {node_addr:#x})",
                    node=node,
                )
            existing = self.cache.probe(node_addr)
            if existing is not None:
                # A nested eviction's lazy propagation (re)installed —
                # and possibly updated — this node while the walk was in
                # flight; the on-chip copy is newer than our NVM
                # snapshot and must not be clobbered.
                existing.verified = True
                continue
            self.install(node_addr, self._decode(node_addr, raw), dirty=False, verified=True)

        return AccessResult(self.cache.probe(addr).data, cycles, False)

    def load_counter(self, data_addr: int) -> AccessResult:
        """Verified load of the counter line covering *data_addr*'s page."""
        return self.load_verified(self.layout.counter_line_addr(data_addr))

    def load_node(self, node: MerkleNodeId) -> AccessResult:
        """Verified load of one tree node (leaf or internal)."""
        return self.load_verified(self.layout.merkle_node_addr(node))

    # -- unverified state inspection ----------------------------------------------------

    def probe(self, addr: int) -> CacheLine | None:
        """Presence check without LRU/statistics effects."""
        return self.cache.probe(addr)

    def dirty_addresses(self) -> list[int]:
        """Addresses of every dirty line currently resident (sorted)."""
        return sorted(line.addr for line in self.cache.dirty_lines())

    def crash(self) -> None:
        """Power failure: all volatile meta-cache contents are lost."""
        self.cache.drop_all()
        self.overlay.clear()
