"""Observability: cycle-stamped tracing, interval metrics, timelines.

Zero-cost when disabled: components hold ``obs = None`` and guard every
emission, so an uninstrumented run executes the exact same instruction
stream as before this subsystem existed.  Enable it by building an
:class:`ObsSession` and passing it to
:func:`repro.sim.runner.run_simulation`::

    from repro.obs import ObsSession
    session = ObsSession(sample_every=1000)
    result = run_simulation("ccnvm", trace, obs=session)
    summary = session.timeline(result)
    trace_json = session.chrome_trace()

See DESIGN.md's "Observability" section for the event taxonomy and
artifact formats.
"""

from __future__ import annotations

from repro.obs.events import DEFAULT_CAPACITY, Event, EventBus, attach
from repro.obs.sampler import IntervalSampler, Sample
from repro.obs.timeline import TimelineSummary, analyze_events

__all__ = [
    "DEFAULT_CAPACITY",
    "Event",
    "EventBus",
    "IntervalSampler",
    "ObsSession",
    "Sample",
    "TimelineSummary",
    "analyze_events",
    "attach",
]


class ObsSession:
    """One run's worth of observability state: bus + optional sampler.

    Built by the caller, attached by the runner: the sampler needs the
    scheme's stat tree, which only exists once the system is built, so
    :meth:`attach` is invoked from inside ``run_simulation``.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY, sample_every: int = 0) -> None:
        self.bus = EventBus(capacity)
        self.sample_every = sample_every
        self.sampler: IntervalSampler | None = None
        #: The attached :class:`~repro.sim.system.MemoryHierarchy` — kept
        #: so callers can reach the live stat tree after the run (the
        #: runner builds and discards the system internally).
        self.system = None

    def attach(self, system, cpu=None) -> None:
        """Wire the bus (and sampler) into a built system and its CPU."""
        self.system = system
        attach(system, self.bus)
        if self.sample_every:
            self.sampler = IntervalSampler(system.scheme.stats, self.sample_every)
        if cpu is not None:
            cpu.obs = self.bus
            cpu.sampler = self.sampler

    def reset(self) -> None:
        """Forget warm-up events/samples; rebase the sampler deltas."""
        self.bus.clear()
        if self.sampler is not None:
            self.sampler.reset()

    def finish(self, cycles: int) -> None:
        """Take the final sample at the end of the measured region."""
        if self.sampler is not None:
            self.sampler.sample(cycles)

    # -- artifact shortcuts ------------------------------------------------

    def timeline(self, result=None) -> TimelineSummary:
        """Fold the captured events into a per-phase timeline."""
        return analyze_events(
            self.bus.events(),
            total_cycles=getattr(result, "cycles", 0),
            total_nvm_writes=getattr(result, "nvm_writes", 0),
            scheme=getattr(result, "scheme", ""),
            workload=getattr(result, "workload", ""),
            dropped=self.bus.dropped,
        )

    def chrome_trace(self, process_name: str = "repro") -> dict:
        """Render the captured events as Chrome ``trace_event`` JSON."""
        from repro.obs.export import events_to_trace

        return events_to_trace(self.bus.events(), process_name=process_name)

    def samples(self) -> list[Sample]:
        """The sampler's recorded time-series (empty when not sampling)."""
        return self.sampler.samples() if self.sampler is not None else []
