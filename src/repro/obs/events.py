"""Cycle-stamped structured event bus.

The bus is the spine of the observability subsystem: instrumented
components (CPU, WPQ, drainer, meta-cache, recovery, ...) hold an
optional reference to an :class:`EventBus` and emit *spans* (begin/end
pairs bracketing a phase such as an epoch drain) and *instants*
(point events such as one NVM line write).  Two properties are load
bearing:

**Zero cost when disabled.**  Components store ``self.obs = None`` and
guard every emission with ``if self.obs is not None`` — the same
pattern the fault (``fault_hook``) and crash-trace (``trace_hook``)
seams already use.  With tracing off, no event objects are allocated,
no strings are formatted, and the hot loops are untouched, which is
what keeps the headline numbers byte-identical to an uninstrumented
build.

**Deterministic timestamps.**  Events are stamped with the simulated
cycle clock, never the wall clock.  The CPU publishes its cycle count
via :meth:`EventBus.set_now` once per trace record; components that run
logically "inside" a cycle (recovery, which the model does not clock)
advance a sub-cycle work counter through :meth:`EventBus.advance` so
their events still order deterministically.  Timestamps are clamped to
be monotonically non-decreasing, which the Perfetto ``trace_event``
format requires.

Events are plain tuples in a bounded ring buffer (``deque`` with
``maxlen``), so a runaway emitter degrades to dropping the *oldest*
events (the drop count is kept) instead of exhausting memory.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Iterator, NamedTuple

from repro.common.persistence import persistence

#: Event kind markers, mirroring Chrome ``trace_event`` phases.
BEGIN = "B"
END = "E"
INSTANT = "i"

#: Default ring-buffer capacity (events). 1M tuples is ~100 MB worst
#: case — far above any smoke workload, low enough to bound a runaway.
DEFAULT_CAPACITY = 1_000_000


class Event(NamedTuple):
    """One trace event.

    ``ts`` is the simulated cycle (monotonic per bus); ``kind`` is one
    of :data:`BEGIN` / :data:`END` / :data:`INSTANT`; ``name`` is the
    event taxonomy entry (``"epoch.drain"``, ``"nvm.write"``, ...);
    ``cat`` groups names for trace viewers (``"epoch"``, ``"wpq"``,
    ``"recovery"``, ...); ``args`` carries event-specific detail.
    """

    ts: int
    kind: str
    name: str
    cat: str
    args: dict[str, Any] | None


@persistence(volatile=("now", "capacity", "dropped", "enabled", "_events"))
class EventBus:
    """Bounded, cycle-stamped event sink.

    The bus itself is pure observer state: it never feeds back into the
    model, and the whole object is declared volatile in the persistence
    layer — a crash loses the trace, never correctness.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self.now = 0
        self.dropped = 0
        self.enabled = True
        self._events: deque[Event] = deque(maxlen=capacity)

    # ------------------------------------------------------------------
    # Clock
    # ------------------------------------------------------------------
    def set_now(self, cycle: int) -> None:
        """Advance the bus clock to the CPU's cycle count.

        Clamped monotonic: a component that reports a stale local clock
        cannot make time run backwards.
        """
        if cycle > self.now:
            self.now = cycle

    def advance(self, work_units: int = 1) -> None:
        """Advance the clock by *work_units* pseudo-cycles.

        Used by code the simulator does not clock (recovery), so its
        events still get distinct, ordered timestamps.
        """
        self.now += work_units

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(
        self,
        kind: str,
        name: str,
        cat: str,
        args: dict[str, Any] | None = None,
        ts: int | None = None,
    ) -> None:
        """Append one event, stamping it with the (clamped) bus clock."""
        if not self.enabled:
            return
        stamp = self.now if ts is None else ts
        if stamp > self.now:
            self.now = stamp
        elif stamp < self.now:
            stamp = self.now
        if len(self._events) == self.capacity:
            self.dropped += 1
        self._events.append(Event(stamp, kind, name, cat, args))

    def begin(
        self,
        name: str,
        cat: str,
        args: dict[str, Any] | None = None,
        ts: int | None = None,
    ) -> None:
        """Open a span. Spans nest LIFO per bus."""
        self.emit(BEGIN, name, cat, args, ts)

    def end(
        self,
        name: str,
        cat: str,
        args: dict[str, Any] | None = None,
        ts: int | None = None,
    ) -> None:
        """Close the innermost open span with this *name*."""
        self.emit(END, name, cat, args, ts)

    def instant(
        self,
        name: str,
        cat: str,
        args: dict[str, Any] | None = None,
        ts: int | None = None,
    ) -> None:
        """Record a point event."""
        self.emit(INSTANT, name, cat, args, ts)

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def events(self) -> list[Event]:
        """Snapshot of the buffered events, oldest first."""
        return list(self._events)

    def clear(self) -> None:
        """Forget buffered events and the drop count (clock survives).

        Used for the warm-up reset: the measured region starts with an
        empty buffer and exact (zero-drop) accounting, but time keeps
        running forward so later stamps stay monotonic.
        """
        self._events.clear()
        self.dropped = 0


def attach(system: Any, bus: EventBus | None) -> None:
    """Wire *bus* into every instrumentation seam of a built system.

    *system* is a :class:`repro.sim.system.MemoryHierarchy` (or any
    object exposing ``scheme`` the same way).  Passing ``None`` detaches
    tracing, restoring the zero-cost path.  The seams mirror the
    ``fault_hook`` wiring: each component simply holds the reference.
    """
    scheme = getattr(system, "scheme", system)
    scheme.obs = bus
    scheme.wpq.obs = bus
    scheme.controller.obs = bus
    scheme.engine.obs = bus
    scheme.meta.obs = bus
    queue = getattr(scheme, "queue", None)  # the dirty address queue
    if queue is not None:
        queue.obs = bus
    for cache in (getattr(system, "l1", None), getattr(system, "l2", None)):
        if cache is not None:
            cache.obs = bus
    if scheme.meta.cache is not None:
        scheme.meta.cache.obs = bus
