"""Trace and time-series artifact writers.

Two artifact families come out of the observability subsystem:

* **Chrome/Perfetto traces** — the event stream rendered as
  ``trace_event`` JSON (the ``{"traceEvents": [...]}`` container
  format), loadable in ``ui.perfetto.dev`` or ``chrome://tracing``.
  Span begin/end and instant events map 1:1 to phases ``B``/``E``/``i``;
  timestamps are the simulated cycle count (exported as microseconds,
  so one trace-viewer microsecond = one model cycle).
* **Time-series CSV/JSON** — the interval sampler's delta rows, one
  column per stat path.

:func:`validate_trace` is the schema check CI runs against an exported
trace: structural validity plus the LIFO span-nesting and monotonic-
timestamp rules the viewers rely on.
"""

from __future__ import annotations

import io
import json
from typing import Any

from repro.obs.events import BEGIN, END, INSTANT, Event
from repro.obs.sampler import Sample

#: Trace-event phases this exporter produces (a subset of the format).
_VALID_PHASES = (BEGIN, END, INSTANT)


def events_to_trace(
    events: list[Event],
    process_name: str = "repro",
    thread_name: str = "sim",
    pid: int = 0,
    tid: int = 0,
) -> dict[str, Any]:
    """Render an event stream as a Chrome ``trace_event`` JSON object."""
    trace_events: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": process_name},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": thread_name},
        },
    ]
    for event in events:
        entry: dict[str, Any] = {
            "name": event.name,
            "cat": event.cat,
            "ph": event.kind,
            "ts": event.ts,
            "pid": pid,
            "tid": tid,
        }
        if event.kind == INSTANT:
            entry["s"] = "t"  # thread-scoped instant
        if event.args:
            entry["args"] = event.args
        trace_events.append(entry)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(path: str, trace: dict[str, Any]) -> None:
    """Write a trace object produced by :func:`events_to_trace`."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=None, separators=(",", ":"))
        handle.write("\n")


def validate_trace(trace: Any) -> list[str]:
    """Schema-check a ``trace_event`` JSON object; returns problems.

    An empty list means the trace is structurally valid: the container
    shape is right, every event carries the mandatory fields, ``B``/``E``
    events nest LIFO per ``(pid, tid)`` and timestamps never go
    backwards per thread.
    """
    problems: list[str] = []
    if not isinstance(trace, dict) or not isinstance(
        trace.get("traceEvents"), list
    ):
        return ["not a trace_event JSON object: missing traceEvents list"]
    stacks: dict[tuple, list[str]] = {}
    last_ts: dict[tuple, float] = {}
    for index, entry in enumerate(trace["traceEvents"]):
        where = f"traceEvents[{index}]"
        if not isinstance(entry, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = entry.get("ph")
        name = entry.get("name")
        if not isinstance(name, str):
            problems.append(f"{where}: missing name")
            continue
        if phase == "M":
            continue  # metadata events carry no timestamp
        if phase not in _VALID_PHASES:
            problems.append(f"{where}: unexpected phase {phase!r}")
            continue
        ts = entry.get("ts")
        if not isinstance(ts, (int, float)):
            problems.append(f"{where}: missing numeric ts")
            continue
        key = (entry.get("pid"), entry.get("tid"))
        if ts < last_ts.get(key, ts):
            problems.append(
                f"{where}: timestamp {ts} goes backwards on thread {key}"
            )
        last_ts[key] = ts
        stack = stacks.setdefault(key, [])
        if phase == BEGIN:
            stack.append(name)
        elif phase == END:
            if not stack:
                problems.append(f"{where}: E {name!r} with no open span")
            elif stack[-1] != name:
                problems.append(
                    f"{where}: E {name!r} does not match open span "
                    f"{stack[-1]!r} (spans must nest LIFO)"
                )
                stack.pop()
            else:
                stack.pop()
    for key, stack in stacks.items():
        for name in stack:
            problems.append(f"thread {key}: span {name!r} never ended")
    return problems


# ---------------------------------------------------------------------------
# Time-series writers
# ---------------------------------------------------------------------------

def series_to_rows(samples: list[Sample]) -> tuple[list[str], list[list]]:
    """Tabulate samples: ``(header, rows)`` with one column per path."""
    paths: set[str] = set()
    for sample in samples:
        paths.update(sample.deltas)
    columns = sorted(paths)
    header = ["cycle"] + columns
    rows = [
        [sample.cycle] + [sample.deltas.get(path, 0) for path in columns]
        for sample in samples
    ]
    return header, rows


def series_to_csv(samples: list[Sample]) -> str:
    """Render samples as CSV text (header + one row per snapshot)."""
    header, rows = series_to_rows(samples)
    out = io.StringIO()
    out.write(",".join(header) + "\n")
    for row in rows:
        out.write(",".join(str(v) for v in row) + "\n")
    return out.getvalue()


def series_to_json(samples: list[Sample], every: int = 0) -> dict[str, Any]:
    """Render samples as a JSON-able time-series object."""
    header, rows = series_to_rows(samples)
    return {
        "kind": "obs_series",
        "every": every,
        "columns": header,
        "rows": rows,
    }


# ---------------------------------------------------------------------------
# Timeline / headline artifacts
# ---------------------------------------------------------------------------

def obs_headline_to_json(
    summaries: list[dict[str, Any]], workload: str, length: int
) -> dict[str, Any]:
    """The ``BENCH_obs_headline.json`` breakdown artifact.

    *summaries* are :meth:`TimelineSummary.as_dict` objects, one per
    scheme, ordered as run.
    """
    return {
        "bench": "obs_headline",
        "workload": workload,
        "length": length,
        "schemes": [s["scheme"] for s in summaries],
        "timelines": summaries,
    }


def write_json(path: str, payload: dict[str, Any]) -> None:
    """Write a JSON artifact with stable key order and a trailing newline."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
