"""Interval sampling of the statistics tree.

The simulator already counts everything interesting (WPQ batches, cache
hits, NVM writes per region, drain triggers) — what end-of-run totals
cannot show is *when* the traffic happened.  :class:`IntervalSampler`
snapshots a :class:`~repro.common.stats.StatGroup` subtree every K
cycles and stores the **delta** of every counter since the previous
snapshot (and the sample-count delta of every distribution), so
occupancy and traffic curves come for free from existing counters
without touching any hot path.

The CPU drives it: :meth:`maybe_sample` is called once per trace record
with the current cycle and returns immediately until the next interval
boundary has passed.  Sample rows are plain ``(cycle, {path: delta})``
pairs, ready for the CSV/JSON writers in :mod:`repro.obs.export`.
"""

from __future__ import annotations

from typing import NamedTuple

from repro.common.stats import Counter, StatGroup

#: Safety bound on retained samples: a pathological ``every`` of 1 cycle
#: on a long run degrades to dropping the newest samples, not to
#: unbounded memory.
DEFAULT_MAX_SAMPLES = 100_000


class Sample(NamedTuple):
    """One snapshot: the cycle it was taken at and per-stat deltas."""

    cycle: int
    deltas: dict[str, float]


class IntervalSampler:
    """Snapshots a stat subtree every *every* cycles, recording deltas."""

    def __init__(
        self,
        stats: StatGroup,
        every: int,
        prefix: str = "",
        max_samples: int = DEFAULT_MAX_SAMPLES,
    ) -> None:
        if every <= 0:
            raise ValueError("sampling interval must be positive")
        self.stats = stats
        self.every = every
        #: Optional dotted-path prefix filter (e.g. ``"ccnvm.nvm"``).
        self.prefix = prefix
        self.max_samples = max_samples
        self.dropped = 0
        self._samples: list[Sample] = []
        self._last: dict[str, float] = {}
        self._next_at = every

    def _totals(self) -> dict[str, float]:
        totals: dict[str, float] = {}
        for path, stat in self.stats.walk():
            if self.prefix and not path.startswith(self.prefix):
                continue
            totals[path] = (
                stat.value if isinstance(stat, Counter) else stat.count
            )
        return totals

    def maybe_sample(self, now: int) -> bool:
        """Take a snapshot if the interval boundary has passed.

        Returns True when a sample was recorded.  Multiple elapsed
        intervals collapse into one sample (the deltas are cumulative
        since the last snapshot either way), keeping the cost bounded by
        the trace length, not the cycle count.
        """
        if now < self._next_at:
            return False
        self.sample(now)
        self._next_at = (now // self.every + 1) * self.every
        return True

    def sample(self, now: int) -> None:
        """Unconditionally record one snapshot at cycle *now*."""
        totals = self._totals()
        deltas = {
            path: value - self._last.get(path, 0)
            for path, value in totals.items()
        }
        self._last = totals
        if len(self._samples) >= self.max_samples:
            self.dropped += 1
            return
        self._samples.append(Sample(now, deltas))

    def samples(self) -> list[Sample]:
        """All recorded samples, oldest first."""
        return list(self._samples)

    def paths(self) -> list[str]:
        """Sorted union of every stat path seen across all samples."""
        seen: set[str] = set()
        for sample in self._samples:
            seen.update(sample.deltas)
        return sorted(seen)

    def reset(self) -> None:
        """Drop recorded samples and rebase deltas on the current totals.

        Called after a warm-up region so the measured series starts from
        zeroed deltas, mirroring the stat reset the runner performs.
        """
        self._samples.clear()
        self._last = self._totals()
        self.dropped = 0
