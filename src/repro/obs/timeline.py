"""Epoch/drain/recovery timeline analysis.

Folds a cycle-stamped event stream (:mod:`repro.obs.events`) into a
per-phase attribution of the run's cycles and NVM writes — the "where
did the 3.36x go" table.  Four named phases cover the model:

* ``epoch_body`` — ordinary execution inside an open epoch (the default
  when no span is active: write-backs, fills, metadata walks);
* ``drain`` — inside an epoch commit (cc-NVM's atomic draining
  protocol) or inside a WPQ atomic batch (SC's per-write-back flush,
  which is its degenerate one-write-back "epoch");
* ``spread`` — the deferred-spreading recompute at drain time (a nested
  sub-phase of the drain; its cycles are reported separately, not
  double-counted into ``drain``);
* ``recovery`` — post-crash recovery phases.

Attribution is interval-based: the cycles between two consecutive
events belong to the phase that was active (innermost open span) during
that interval; ``nvm.write`` instants are charged to the phase active
at their timestamp.  Because the phase stack bottoms out at
``epoch_body``, every cycle and every write is attributed to *some*
named phase — ring-buffer drops are the only loss, and they are
reported.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.events import BEGIN, END, INSTANT, Event

#: The named phases, in reporting order.
PHASES = ("epoch_body", "drain", "spread", "recovery")

#: Span name → phase it activates.  Unlisted spans (and ``recovery.*``,
#: matched by prefix) inherit the handling in :func:`_phase_of_span`.
_SPAN_PHASES = {
    "epoch.drain": "drain",
    "epoch.spread": "spread",
    "wpq.batch": "drain",
}


def _phase_of_span(name: str, current: str) -> str:
    phase = _SPAN_PHASES.get(name)
    if phase is not None:
        return phase
    if name.startswith("recovery."):
        return "recovery"
    return current  # unknown spans keep the enclosing phase


@dataclass
class PhaseTotals:
    """Cycles and NVM writes attributed to one phase."""

    cycles: int = 0
    nvm_writes: int = 0
    writes_by_region: dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "cycles": self.cycles,
            "nvm_writes": self.nvm_writes,
            "writes_by_region": dict(sorted(self.writes_by_region.items())),
        }


@dataclass
class TimelineSummary:
    """Per-phase attribution of one run."""

    scheme: str = ""
    workload: str = ""
    phases: dict[str, PhaseTotals] = field(default_factory=dict)
    #: Run totals the coverage ratios are computed against (from the
    #: simulation result, not from the event stream).
    total_cycles: int = 0
    total_nvm_writes: int = 0
    epochs: int = 0
    drains_by_trigger: dict[str, int] = field(default_factory=dict)
    recoveries: int = 0
    #: Events lost to the bounded ring buffer (0 = exact attribution).
    dropped_events: int = 0
    #: END events with no matching open span (ring-buffer truncation).
    unmatched_ends: int = 0

    @property
    def attributed_cycles(self) -> int:
        return sum(p.cycles for p in self.phases.values())

    @property
    def attributed_writes(self) -> int:
        return sum(p.nvm_writes for p in self.phases.values())

    @property
    def cycle_coverage(self) -> float:
        """Fraction of the run's cycles attributed to named phases."""
        if not self.total_cycles:
            return 1.0
        return min(1.0, self.attributed_cycles / self.total_cycles)

    @property
    def write_coverage(self) -> float:
        """Fraction of the run's NVM writes attributed to named phases."""
        if not self.total_nvm_writes:
            return 1.0
        return min(1.0, self.attributed_writes / self.total_nvm_writes)

    @staticmethod
    def from_dict(data: dict) -> "TimelineSummary":
        """Rebuild a summary from :meth:`as_dict` output (cache payloads).

        The derived fields (attributed totals, coverage ratios) are
        recomputed from the phase totals rather than trusted from the
        payload, so they stay consistent by construction.
        """
        summary = TimelineSummary(
            scheme=data.get("scheme", ""),
            workload=data.get("workload", ""),
            total_cycles=data.get("total_cycles", 0),
            total_nvm_writes=data.get("total_nvm_writes", 0),
            epochs=data.get("epochs", 0),
            drains_by_trigger=dict(data.get("drains_by_trigger", {})),
            recoveries=data.get("recoveries", 0),
            dropped_events=data.get("dropped_events", 0),
            unmatched_ends=data.get("unmatched_ends", 0),
        )
        summary.phases = {
            name: PhaseTotals(
                cycles=totals.get("cycles", 0),
                nvm_writes=totals.get("nvm_writes", 0),
                writes_by_region=dict(totals.get("writes_by_region", {})),
            )
            for name, totals in data.get("phases", {}).items()
        }
        return summary

    def as_dict(self) -> dict:
        return {
            "scheme": self.scheme,
            "workload": self.workload,
            "phases": {
                name: self.phases[name].as_dict()
                for name in PHASES
                if name in self.phases
            },
            "total_cycles": self.total_cycles,
            "total_nvm_writes": self.total_nvm_writes,
            "attributed_cycles": self.attributed_cycles,
            "attributed_writes": self.attributed_writes,
            "cycle_coverage": round(self.cycle_coverage, 6),
            "write_coverage": round(self.write_coverage, 6),
            "epochs": self.epochs,
            "drains_by_trigger": dict(sorted(self.drains_by_trigger.items())),
            "recoveries": self.recoveries,
            "dropped_events": self.dropped_events,
            "unmatched_ends": self.unmatched_ends,
        }


def analyze_events(
    events: list[Event],
    total_cycles: int = 0,
    total_nvm_writes: int = 0,
    scheme: str = "",
    workload: str = "",
    dropped: int = 0,
) -> TimelineSummary:
    """Fold an event stream into a :class:`TimelineSummary`.

    *total_cycles* / *total_nvm_writes* are the simulation result's
    totals; the cycles after the last event (and before the first) are
    attributed to the phase active at that point, so the attribution is
    complete whenever no events were dropped.
    """
    summary = TimelineSummary(
        scheme=scheme,
        workload=workload,
        total_cycles=total_cycles,
        total_nvm_writes=total_nvm_writes,
        dropped_events=dropped,
    )
    phases = {name: PhaseTotals() for name in PHASES}

    # Stack of (span_name, phase); the active phase is the top's, or
    # epoch_body when empty.
    stack: list[tuple[str, str]] = []
    last_ts = 0

    def active() -> str:
        return stack[-1][1] if stack else "epoch_body"

    def charge(until: int) -> None:
        nonlocal last_ts
        if until > last_ts:
            phases[active()].cycles += until - last_ts
            last_ts = until

    for event in events:
        charge(event.ts)
        if event.kind == BEGIN:
            stack.append((event.name, _phase_of_span(event.name, active())))
        elif event.kind == END:
            for i in range(len(stack) - 1, -1, -1):
                if stack[i][0] == event.name:
                    del stack[i:]
                    break
            else:
                summary.unmatched_ends += 1
        elif event.kind == INSTANT and event.name == "nvm.write":
            totals = phases[active()]
            totals.nvm_writes += 1
            region = (event.args or {}).get("region", "unknown")
            totals.writes_by_region[region] = (
                totals.writes_by_region.get(region, 0) + 1
            )
        if event.kind == INSTANT and event.name == "epoch.commit":
            args = event.args or {}
            if args.get("lines", 0):
                summary.epochs += 1
                trigger = args.get("trigger", "unknown")
                summary.drains_by_trigger[trigger] = (
                    summary.drains_by_trigger.get(trigger, 0) + 1
                )
        if event.kind == BEGIN and event.name == "recovery.run":
            summary.recoveries += 1

    # The tail of the run (after the final event) belongs to whatever
    # phase is still active — normally epoch_body.
    charge(max(total_cycles, last_ts))

    summary.phases = {
        name: totals for name, totals in phases.items()
        if totals.cycles or totals.nvm_writes
    }
    if not summary.phases:
        summary.phases = {"epoch_body": phases["epoch_body"]}
    return summary


def render_table(summaries: list[TimelineSummary]) -> str:
    """Human-readable per-scheme phase table."""
    lines = []
    header = (
        f"{'scheme':<14} {'phase':<11} {'cycles':>12} {'%cyc':>7} "
        f"{'nvm_writes':>11} {'%wr':>7}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for summary in summaries:
        # Phase rows are shares of the *attributed* stream (they sum to
        # 100%); the stream can extend past the measured region's cycle
        # count because the end-of-run flush is traced too.  The
        # [coverage] row compares against the run totals instead.
        total_c = summary.attributed_cycles or 1
        total_w = summary.attributed_writes or 1
        for name in PHASES:
            totals = summary.phases.get(name)
            if totals is None:
                continue
            lines.append(
                f"{summary.scheme:<14} {name:<11} {totals.cycles:>12} "
                f"{100 * totals.cycles / total_c:>6.1f}% "
                f"{totals.nvm_writes:>11} "
                f"{100 * totals.nvm_writes / total_w:>6.1f}%"
            )
        lines.append(
            f"{summary.scheme:<14} {'[coverage]':<11} "
            f"{summary.attributed_cycles:>12} "
            f"{100 * summary.cycle_coverage:>6.1f}% "
            f"{summary.attributed_writes:>11} "
            f"{100 * summary.write_coverage:>6.1f}%"
        )
    return "\n".join(lines)
