"""Run orchestration: declarative specs, content-addressed caching,
parallel execution and resumable journals.

The subsystem turns every experiment in the repo — a Figure 5 cell, a
sensitivity point, a fault injection — into data (:class:`RunSpec`),
which makes three things cheap at once:

* **parallelism** — specs are picklable, so a spawn-safe worker pool
  (:class:`WorkerPool`) fans a sweep out across processes;
* **reuse** — a spec's content hash plus a fingerprint of the simulator
  sources addresses an on-disk result store (:class:`ResultCache`), so
  unchanged experiments are never executed twice, across processes and
  sessions;
* **resumability** — completed specs land in a JSONL :class:`RunJournal`
  as they finish, so an interrupted sweep continues where it stopped.

:func:`run_specs` / :func:`orchestrate` chain the three together.
"""

from repro.runs.cache import ResultCache, code_fingerprint, default_cache_root
from repro.runs.journal import RunJournal
from repro.runs.orchestrate import (
    RunReport,
    orchestrate,
    run_specs,
    sweep_journal_path,
)
from repro.runs.pool import RunOutcome, WorkerPool, execute_spec
from repro.runs.spec import (
    RunSpec,
    Sweep,
    canonical_json,
    config_from_dict,
    config_to_dict,
    simulation_spec,
)

__all__ = [
    "ResultCache",
    "RunJournal",
    "RunOutcome",
    "RunReport",
    "RunSpec",
    "Sweep",
    "WorkerPool",
    "canonical_json",
    "code_fingerprint",
    "config_from_dict",
    "config_to_dict",
    "default_cache_root",
    "execute_spec",
    "orchestrate",
    "run_specs",
    "simulation_spec",
    "sweep_journal_path",
]
