"""Content-addressed on-disk result cache.

Results live under ``.repro-cache/results/<fingerprint>/<spec_hash>.json``
where *fingerprint* digests every ``*.py`` file of the installed
``repro`` package: editing any simulator source invalidates every cached
result at once (no stale-figure hazards), while a rerun of an unchanged
tree is served from disk without executing a single simulation.

Entries are written crash-consistently — serialized to a temporary file
in the same directory, then :func:`os.replace`'d into place — so a cache
interrupted mid-``put`` never holds a torn JSON document.  This mirrors
the write-ordering discipline the simulated system itself is built
around, and the class declares its domains to the ``repro lint``
analyzer like every other owner of crash-surviving state.

Cumulative hit/miss/store counters persist in ``stats.json`` (merged at
:meth:`ResultCache.flush_stats`, typically once per orchestrated sweep),
which is what ``repro runs status --json`` reports and CI asserts on.
"""

from __future__ import annotations

import errno
import hashlib
import json
import os
import tempfile
from pathlib import Path

from repro.chaos.inject import chaos_fire
from repro.common.persistence import persistence
from repro.runs.spec import RunSpec

#: Default cache directory (relative to the working directory unless the
#: ``CCNVM_CACHE_DIR`` environment variable points elsewhere).
DEFAULT_CACHE_DIR = ".repro-cache"

#: On-disk entry format version; bump to orphan every existing entry.
CACHE_FORMAT = 1

_FINGERPRINTS: dict[str, str] = {}


def default_cache_root() -> Path:
    """The cache directory honoring the ``CCNVM_CACHE_DIR`` override."""
    return Path(os.environ.get("CCNVM_CACHE_DIR", DEFAULT_CACHE_DIR))


def code_fingerprint(root: Path | None = None) -> str:
    """Digest of every Python source file under the ``repro`` package.

    The digest covers relative paths *and* contents, so renaming a module
    invalidates just like editing one.  Memoized per process — the tree
    does not change under a running sweep.
    """
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parent
    key = str(root)
    if key not in _FINGERPRINTS:
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            digest.update(str(path.relative_to(root)).encode())
            digest.update(b"\x00")
            digest.update(path.read_bytes())
            digest.update(b"\x00")
        _FINGERPRINTS[key] = digest.hexdigest()[:16]
    return _FINGERPRINTS[key]


def _atomic_write_text(path: Path, text: str) -> None:
    """Write *text* to *path* via a same-directory rename (no torn files).

    Safe under concurrent writers of the *same* path: every writer gets
    its own ``mkstemp`` name (two processes can never interleave into
    one temp file), the bytes are fsynced before the rename, and
    ``os.replace`` is atomic — a reader observes either some writer's
    complete document or the previous one, never a mixture.  On a true
    race the last rename wins, which is correct for a content-addressed
    store: both writers were storing the same content-equivalent entry.
    """
    fd, tmp = tempfile.mkstemp(dir=path.parent, prefix=path.name, suffix=".tmp")
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


@persistence(
    persistent=("cumulative",),
    volatile=("hits", "misses", "stores"),
    aka=("result_cache",),
    mutators=("get", "put", "flush_stats", "gc"),
)
class ResultCache:
    """Spec-hash-addressed result store, invalidated by code fingerprint.

    ``cumulative`` mirrors ``stats.json`` (it survives the process);
    ``hits``/``misses``/``stores`` count this session only and are lost
    unless :meth:`flush_stats` merges them to disk.
    """

    def __init__(
        self, root: Path | str | None = None, fingerprint: str | None = None
    ) -> None:
        self.root = Path(root) if root is not None else default_cache_root()
        self.fingerprint = fingerprint or code_fingerprint()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.cumulative = self._read_stats()

    # -- paths -------------------------------------------------------------

    @property
    def results_dir(self) -> Path:
        return self.root / "results"

    @property
    def journal_dir(self) -> Path:
        return self.root / "journal"

    @property
    def stats_path(self) -> Path:
        return self.root / "stats.json"

    def path_for(self, spec: RunSpec) -> Path:
        """Where this spec's result lives (for the current fingerprint)."""
        return self.results_dir / self.fingerprint / f"{spec.spec_hash()}.json"

    # -- the store ---------------------------------------------------------

    def get(self, spec: RunSpec):
        """The cached payload for *spec*, or ``None`` on a miss.

        A hit requires the entry to exist, parse, and carry the current
        format version and fingerprint; anything less is a miss (and an
        unreadable entry is removed rather than trusted).
        """
        path = self.path_for(spec)
        if chaos_fire("cache.get_missing") is not None:
            # The entry "vanished" underfoot (lost generation, eviction
            # race): a forced miss, which the journal then covers.
            self.misses += 1
            return None
        try:
            envelope = json.loads(path.read_text(encoding="utf-8"))
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        if (
            envelope.get("format") != CACHE_FORMAT
            or envelope.get("fingerprint") != self.fingerprint
        ):
            self.misses += 1
            return None
        self.hits += 1
        return envelope["payload"]

    def contains(self, spec: RunSpec) -> bool:
        """Peek: whether a current-generation entry exists on disk.

        No counters, no reads — used by the service's degraded
        (cache-only) admission check, which must not perturb the
        hit/miss statistics or trust the entry's contents.
        """
        return self.path_for(spec).is_file()

    def put(self, spec: RunSpec, payload) -> Path:
        """Store *payload* for *spec* (atomically) and return its path."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        # Spelled out one call per site (not a loop over names) so the
        # drift test can see every literal site string in the source.
        if chaos_fire("cache.put_eio") is not None:
            raise OSError(errno.EIO, "chaos: injected EIO on cache put", str(path))
        if chaos_fire("cache.put_enospc") is not None:
            raise OSError(
                errno.ENOSPC, "chaos: injected ENOSPC on cache put", str(path)
            )
        if chaos_fire("cache.put_torn") is not None:
            # The writer "dies" mid-write: a partial temp file is left
            # behind (the next gc sweeps it); the entry itself is never
            # visible because the rename never happened.
            fd, _tmp = tempfile.mkstemp(
                dir=path.parent, prefix=path.name, suffix=".tmp"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write('{"torn":')
            raise OSError(
                errno.EIO,
                "chaos: cache writer died mid-put (orphan *.tmp left)",
                str(path),
            )
        envelope = {
            "format": CACHE_FORMAT,
            "fingerprint": self.fingerprint,
            "spec_hash": spec.spec_hash(),
            "spec": spec.to_dict(),
            "payload": payload,
        }
        text = json.dumps(envelope, sort_keys=True, indent=1)
        try:
            _atomic_write_text(path, text)
        except FileNotFoundError:
            # A concurrent gc removed the generation directory between
            # mkdir and mkstemp; recreate it and retry once.
            path.parent.mkdir(parents=True, exist_ok=True)
            _atomic_write_text(path, text)
        self.stores += 1
        return path

    # -- persistent statistics ---------------------------------------------

    def _read_stats(self) -> dict:
        try:
            data = json.loads(self.stats_path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            data = {}
        return {
            "hits": int(data.get("hits", 0)),
            "misses": int(data.get("misses", 0)),
            "stores": int(data.get("stores", 0)),
            "flushes": int(data.get("flushes", 0)),
            "gc_runs": int(data.get("gc_runs", 0)),
            "gc_removed": int(data.get("gc_removed", 0)),
            "gc_reclaimed_bytes": int(data.get("gc_reclaimed_bytes", 0)),
        }

    def flush_stats(self) -> dict:
        """Merge this session's counters into ``stats.json`` and reset them.

        Re-reads the file first so concurrent sessions accumulate rather
        than overwrite each other (last-merge-wins on a true race, which
        is acceptable for monitoring counters).
        """
        if not (self.hits or self.misses or self.stores):
            return self.cumulative
        current = self._read_stats()
        current["hits"] += self.hits
        current["misses"] += self.misses
        current["stores"] += self.stores
        current["flushes"] += 1
        self.root.mkdir(parents=True, exist_ok=True)
        _atomic_write_text(self.stats_path, json.dumps(current, sort_keys=True, indent=1))
        self.cumulative = current
        self.hits = self.misses = self.stores = 0
        return current

    # -- maintenance -------------------------------------------------------

    def status(self) -> dict:
        """Inventory for ``repro runs status``: entries, sizes, counters."""
        generations = {}
        if self.results_dir.is_dir():
            for gen_dir in sorted(self.results_dir.iterdir()):
                if not gen_dir.is_dir():
                    continue
                entries = list(gen_dir.glob("*.json"))
                generations[gen_dir.name] = {
                    "entries": len(entries),
                    "bytes": sum(p.stat().st_size for p in entries),
                    "current": gen_dir.name == self.fingerprint,
                }
        journals = (
            sorted(p.name for p in self.journal_dir.glob("*.jsonl"))
            if self.journal_dir.is_dir()
            else []
        )
        pending = {
            "hits": self.hits, "misses": self.misses, "stores": self.stores
        }
        return {
            "root": str(self.root),
            "fingerprint": self.fingerprint,
            "generations": generations,
            "journals": journals,
            "stats": self._read_stats(),
            "session": pending,
        }

    def gc(
        self,
        everything: bool = False,
        max_generations: int | None = None,
        max_bytes: int | None = None,
    ) -> dict:
        """Prune the store; returns ``{removed, kept, reclaimed_bytes}``.

        Without knobs this drops every stale-fingerprint generation (the
        historical behaviour).  ``max_generations=N`` instead *retains* a
        multi-generation cache: the current generation plus the N-1 most
        recently written stale ones survive, older generations go.
        ``max_bytes=B`` then evicts oldest-first — stale generations'
        entries before current ones — until the store fits in B bytes.
        Orphaned ``*.tmp`` files from crashed writers are always swept.

        Journals are removed alongside the generations they belong to
        only under *everything* (a stale journal is harmless — its
        fingerprint header stops it from resuming the wrong code).
        Reclaimed bytes accumulate in ``stats.json`` (``gc_runs`` /
        ``gc_removed`` / ``gc_reclaimed_bytes``), which is what
        ``repro runs status --json`` reports.
        """
        removed = kept = reclaimed = 0

        def unlink(path: Path) -> tuple[int, int]:
            """Remove one file; returns (entries, bytes) it was worth."""
            try:
                size = path.stat().st_size
                path.unlink()
            except OSError:
                return 0, 0
            return 1, size

        gen_dirs = (
            [d for d in sorted(self.results_dir.iterdir()) if d.is_dir()]
            if self.results_dir.is_dir()
            else []
        )
        for gen_dir in gen_dirs:
            for tmp in gen_dir.glob("*.tmp"):
                _, size = unlink(tmp)
                reclaimed += size

        if everything:
            doomed = set(d.name for d in gen_dirs)
        elif max_generations is None and max_bytes is None:
            doomed = {d.name for d in gen_dirs if d.name != self.fingerprint}
        else:
            # Multi-generation retention: keep the current generation
            # plus the most recently touched stale ones, newest first.
            stale = sorted(
                (d for d in gen_dirs if d.name != self.fingerprint),
                key=lambda d: d.stat().st_mtime,
                reverse=True,
            )
            budget = (
                len(stale)
                if max_generations is None
                else max(0, max_generations - 1)
            )
            doomed = {d.name for d in stale[budget:]}

        survivors: list[Path] = []
        for gen_dir in gen_dirs:
            entries = list(gen_dir.glob("*.json"))
            if gen_dir.name in doomed:
                for path in entries:
                    n, size = unlink(path)
                    removed += n
                    reclaimed += size
                try:
                    gen_dir.rmdir()
                except OSError:
                    pass
            else:
                survivors.extend(entries)

        if max_bytes is not None and not everything:
            sized = []
            total = 0
            for path in survivors:
                try:
                    stat = path.stat()
                except OSError:
                    continue
                current = path.parent.name == self.fingerprint
                sized.append((current, stat.st_mtime, stat.st_size, path))
                total += stat.st_size
            # Oldest stale entries first, oldest current entries last.
            sized.sort(key=lambda item: (item[0], item[1]))
            evicted = set()
            for current, _mtime, size, path in sized:
                if total <= max_bytes:
                    break
                n, got = unlink(path)
                removed += n
                reclaimed += got
                total -= size
                evicted.add(path)
            survivors = [p for p in survivors if p not in evicted]

        kept = len(survivors)

        if everything:
            if self.journal_dir.is_dir():
                for path in self.journal_dir.glob("*.jsonl"):
                    _, size = unlink(path)
                    reclaimed += size
            try:
                self.stats_path.unlink()
            except OSError:
                pass
            self.cumulative = self._read_stats()
        else:
            stats = self._read_stats()
            stats["gc_runs"] += 1
            stats["gc_removed"] += removed
            stats["gc_reclaimed_bytes"] += reclaimed
            self.root.mkdir(parents=True, exist_ok=True)
            _atomic_write_text(
                self.stats_path, json.dumps(stats, sort_keys=True, indent=1)
            )
            self.cumulative = stats
        return {"removed": removed, "kept": kept, "reclaimed_bytes": reclaimed}
