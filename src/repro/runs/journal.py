"""JSONL run journal: live progress and resume-after-interrupt.

One journal file records one sweep.  The first line is a header naming
the code fingerprint the sweep ran under; every following line is one
completed spec with its full result payload.  Appends are flushed per
record, so a power-cut (or Ctrl-C) mid-sweep loses at most the record
being written — on the next run :meth:`RunJournal.completed` hands the
orchestrator every spec that already finished and only the remainder is
executed.  A half-written trailing line (the crash case) is detected and
ignored on load, then truncated away by the next append.

If the journal on disk was written by a *different* code fingerprint its
records are not resumable — results from old code must not leak into new
figures — so the file is restarted from scratch.
"""

from __future__ import annotations

import errno
import json
import os
import time
from pathlib import Path

from repro.chaos.inject import chaos_fire
from repro.common.persistence import persistence
from repro.runs.spec import RunSpec

#: Journal file format version.
JOURNAL_FORMAT = 1


@persistence(
    persistent=("records",),
    volatile=("_handle", "_good_bytes"),
    aka=("journal",),
    mutators=("record", "close"),
)
class RunJournal:
    """Append-only JSONL journal of completed run specs.

    ``records`` mirrors the on-disk file (it is rebuilt from disk on
    open, so it survives a crash); the open file ``_handle`` does not.
    ``_good_bytes`` tracks the byte offset of the last fully-fsynced
    record boundary: a failed append (torn write, failed fsync)
    truncates the file back to it before re-raising, so an in-process
    IO failure leaves the journal exactly as resumable as a crash
    would — the write-ordering discipline of the modeled NVM, applied
    to the host's own durable state.
    """

    def __init__(self, path: Path | str, fingerprint: str) -> None:
        self.path = Path(path)
        self.fingerprint = fingerprint
        #: spec_hash -> record dict, as recovered from / written to disk.
        self.records: dict[str, dict] = {}
        #: Records loaded from a previous interrupted session.
        self.resumed = 0
        self._handle = None
        self._good_bytes = 0
        self._open()

    def _open(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        good_bytes = self._load()
        if good_bytes is None:
            # New file, wrong fingerprint or unreadable header: restart.
            self.records = {}
            self._handle = open(self.path, "wb")
            self._good_bytes = 0
            header = {
                "format": JOURNAL_FORMAT,
                "fingerprint": self.fingerprint,
                "created": time.time(),
            }
            self._append_line(header)
        else:
            # Resume: drop any torn trailing line, then append.
            with open(self.path, "rb+") as handle:
                handle.truncate(good_bytes)
            self.resumed = len(self.records)
            self._handle = open(self.path, "ab")
            self._good_bytes = good_bytes

    def _load(self):
        """Read the journal; return the byte length of the intact prefix.

        ``None`` means the file cannot be resumed (missing, unreadable or
        fingerprint mismatch) and must be restarted.
        """
        try:
            raw = self.path.read_bytes()
        except OSError:
            return None
        good = 0
        header_seen = False
        for line in raw.splitlines(keepends=True):
            if not line.endswith(b"\n"):
                break  # torn trailing record from an interrupted append
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break
            if not header_seen:
                if (
                    record.get("format") != JOURNAL_FORMAT
                    or record.get("fingerprint") != self.fingerprint
                ):
                    return None
                header_seen = True
            elif "spec_hash" in record:
                self.records[record["spec_hash"]] = record
            good += len(line)
        return good if header_seen else None

    def _append_line(self, obj: dict) -> None:
        data = (json.dumps(obj, sort_keys=True) + "\n").encode("utf-8")
        action = chaos_fire("journal.append_torn")
        if action is not None:
            # The writer "dies" mid-record: half the bytes land, then
            # the failure surfaces.  _repair() truncates the torn tail
            # back to the last good boundary before re-raising.
            self._handle.write(data[: max(1, len(data) // 2)])
            self._repair()
            raise OSError(
                errno.EIO,
                f"chaos: torn append to {self.path.name} (tail truncated back)",
            )
        try:
            self._handle.write(data)
            self._handle.flush()
            action = chaos_fire("journal.fsync_fail")
            if action is not None:
                raise OSError(
                    errno.EIO,
                    f"chaos: fsync failed on {self.path.name} "
                    "(record durability unknown, discarded)",
                )
            os.fsync(self._handle.fileno())
        except OSError:
            self._repair()
            raise
        self._good_bytes += len(data)

    def _repair(self) -> None:
        """Truncate a torn/unsynced tail back to the last good record."""
        try:
            self._handle.flush()
        except OSError:
            pass
        os.ftruncate(self._handle.fileno(), self._good_bytes)

    # -- the journaling protocol -------------------------------------------

    def completed(self, spec_hash: str) -> dict | None:
        """The journaled record for *spec_hash* if it finished cleanly."""
        record = self.records.get(spec_hash)
        if record is not None and record.get("status") == "done":
            return record
        return None

    def record(
        self,
        spec: RunSpec,
        status: str,
        payload=None,
        cached: bool = False,
        duration: float = 0.0,
        error: str = "",
    ) -> dict:
        """Append one completed spec (result payload included) and flush."""
        entry = {
            "spec_hash": spec.spec_hash(),
            "label": spec.describe(),
            "kind": spec.kind,
            "scheme": spec.scheme,
            "workload": spec.workload,
            "status": status,
            "cached": cached,
            "duration": round(duration, 6),
            "payload": payload,
        }
        if error:
            entry["error"] = error
        # Disk first: a failed append must not leave an in-memory record
        # the on-disk journal does not hold.
        self._append_line(entry)
        self.records[entry["spec_hash"]] = entry
        return entry

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
