"""The orchestrator: cache -> journal -> worker pool, in that order.

:func:`run_specs` is the single entry point every experiment driver
(Figure 5/6, the fault campaign, the benchmark harness) submits through.
For each requested spec it consults, in order:

1. the content-addressed **result cache** (same spec hash + same code
   fingerprint ⇒ the simulation is provably redundant);
2. the sweep's **journal** (resume after an interrupt, also with the
   cache disabled);
3. the **worker pool**, which actually executes the remainder.

Fresh results are journaled and cached as they arrive, so an interrupt
at any point loses at most the in-flight specs.  Deduplication happens
up front: submitting the same spec twice (e.g. the shared ``no_cc``
baseline of two figures) costs one execution.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.runs.cache import ResultCache, code_fingerprint
from repro.runs.journal import RunJournal
from repro.runs.pool import RunOutcome, WorkerPool
from repro.runs.spec import RunSpec, canonical_json


@dataclass
class RunReport:
    """Accounting for one orchestrated batch."""

    #: spec_hash -> outcome, covering every submitted spec.
    outcomes: dict[str, RunOutcome] = field(default_factory=dict)
    executed: int = 0
    cache_hits: int = 0
    journal_hits: int = 0
    failed: int = 0
    #: Specs re-run by the supervisor (chunk-timeout re-dispatch inside
    #: the pool plus retry rounds at this level).
    retried: int = 0
    #: Cache puts that still failed after their own retry budget; the
    #: result stays durable in the journal, so these are non-fatal.
    cache_put_errors: int = 0
    #: Journal appends that failed (the journal truncates itself back
    #: to the last good record); the cache still holds the result.
    journal_errors: int = 0
    wall_seconds: float = 0.0

    def payload(self, spec: RunSpec):
        """The payload of one submitted spec; raises if that spec failed."""
        outcome = self.outcomes[spec.spec_hash()]
        if not outcome.ok:
            raise RuntimeError(
                f"run {spec.describe()} {outcome.status}: {outcome.error}"
            )
        return outcome.payload

    def errors(self) -> list[str]:
        return [
            f"{o.spec.describe()}: {o.status} ({o.error.strip().splitlines()[-1]})"
            if o.error
            else f"{o.spec.describe()}: {o.status}"
            for o in self.outcomes.values()
            if not o.ok
        ]

    def raise_on_failure(self) -> None:
        """Fail loudly when any spec did not complete."""
        problems = self.errors()
        if problems:
            raise RuntimeError(
                f"{len(problems)} of {len(self.outcomes)} runs failed:\n  "
                + "\n  ".join(problems)
            )

    def summary(self) -> str:
        retried = f", {self.retried} retried" if self.retried else ""
        return (
            f"{len(self.outcomes)} specs: {self.executed} executed, "
            f"{self.cache_hits} from cache, {self.journal_hits} from journal, "
            f"{self.failed} failed{retried} in {self.wall_seconds:.2f}s"
        )


def sweep_journal_path(cache: ResultCache, name: str, specs: list[RunSpec]) -> Path:
    """A stable journal path for one named sweep.

    The file name folds in a digest of the submitted spec hashes, so the
    same sweep resumes its own journal while a differently-shaped sweep
    (other length, other workload subset) gets a fresh one.
    """
    import hashlib

    digest = hashlib.sha256(
        canonical_json(sorted(s.spec_hash() for s in specs)).encode()
    ).hexdigest()[:12]
    return cache.journal_dir / f"{name}-{digest}.jsonl"


def run_specs(
    specs: list[RunSpec],
    jobs: int = 1,
    cache: ResultCache | None = None,
    journal: RunJournal | None = None,
    timeout: float | None = None,
    chunk: int | None = None,
    progress=None,
    retries: int = 0,
    backoff_base: float = 0.05,
    backoff_cap: float = 2.0,
) -> RunReport:
    """Resolve every spec through cache, journal, then the worker pool.

    *progress*, when given, is called as ``progress(outcome, done, total)``
    for every resolved spec (cache and journal hits included).

    *retries* is the supervision budget for **retryable** outcomes
    (worker death, hang, torn IPC — never an error raised inside the
    spec itself): each retry round re-runs the survivors at ``chunk=1``
    in a fresh pool with pristine worker processes, after an
    exponential backoff with jitter (*backoff_base* doubling per round,
    capped at *backoff_cap* seconds).  A spec's outcome is journaled,
    cached and reported exactly once — its final one.

    Transient IO failures on the durable stores are tolerated and
    counted rather than fatal: a failed cache put leaves the result in
    the journal (``cache_put_errors``), a failed journal append leaves
    it in the cache (``journal_errors``) — losing *both* on the same
    record would take two independent failures.
    """
    started = time.perf_counter()
    report = RunReport()
    # Jitter only — never on any result-producing path.
    rng = random.Random(0xC4A05)

    ordered: list[RunSpec] = []
    seen: set[str] = set()
    for spec in specs:
        if spec.spec_hash() not in seen:
            seen.add(spec.spec_hash())
            ordered.append(spec)

    total = len(ordered)

    def emit(outcome: RunOutcome) -> None:
        report.outcomes[outcome.spec.spec_hash()] = outcome
        if not outcome.ok:
            report.failed += 1
        if progress is not None:
            progress(outcome, len(report.outcomes), total)

    def put_tolerant(spec: RunSpec, payload) -> None:
        """Cache put with its own small retry budget for transient IO."""
        for attempt in range(3):
            try:
                cache.put(spec, payload)
                return
            except OSError:
                if attempt == 2:
                    report.cache_put_errors += 1
                else:
                    time.sleep(
                        min(backoff_cap, backoff_base * (2 ** attempt))
                        * rng.random()
                    )

    def record_tolerant(spec: RunSpec, *args, **kwargs) -> None:
        try:
            journal.record(spec, *args, **kwargs)
        except OSError:
            report.journal_errors += 1

    pending: list[RunSpec] = []
    for spec in ordered:
        spec_hash = spec.spec_hash()
        if cache is not None:
            payload = cache.get(spec)
            if payload is not None:
                report.cache_hits += 1
                if journal is not None and journal.completed(spec_hash) is None:
                    record_tolerant(spec, "done", payload, cached=True)
                emit(RunOutcome(spec, "done", payload=payload, source="cache"))
                continue
        if journal is not None:
            record = journal.completed(spec_hash)
            if record is not None:
                report.journal_hits += 1
                if cache is not None:
                    put_tolerant(spec, record["payload"])
                emit(
                    RunOutcome(
                        spec,
                        "done",
                        payload=record["payload"],
                        duration=record.get("duration", 0.0),
                        source="journal",
                    )
                )
                continue
        pending.append(spec)

    def finalize(outcome: RunOutcome) -> None:
        report.executed += 1
        if journal is not None:
            record_tolerant(
                outcome.spec,
                outcome.status,
                outcome.payload,
                duration=outcome.duration,
                error=outcome.error,
            )
        if cache is not None and outcome.ok:
            put_tolerant(outcome.spec, outcome.payload)
        emit(outcome)

    to_run = pending
    attempt = 0
    while to_run:
        final_round = attempt >= max(0, retries)
        deferred: list[RunSpec] = []

        def on_result(outcome, _final=final_round, _deferred=deferred):
            if outcome.ok or not outcome.retryable or _final:
                finalize(outcome)
            else:
                _deferred.append(outcome.spec)

        pool = WorkerPool(
            jobs=jobs,
            timeout=timeout,
            # Retry rounds isolate at chunk=1 in pristine processes.
            chunk=chunk if attempt == 0 else 1,
            max_tasks_per_child=None if attempt == 0 else 1,
        )
        pool.run(to_run, on_result=on_result)
        report.retried += pool.redispatched
        if not deferred:
            break
        attempt += 1
        report.retried += len(deferred)
        delay = min(backoff_cap, backoff_base * (2 ** (attempt - 1)))
        time.sleep(delay * (0.5 + rng.random()))
        to_run = deferred

    if cache is not None:
        cache.flush_stats()
    report.wall_seconds = time.perf_counter() - started
    return report


def orchestrate(
    name: str,
    specs: list[RunSpec],
    jobs: int = 1,
    use_cache: bool = True,
    cache_root=None,
    timeout: float | None = None,
    chunk: int | None = None,
    progress=None,
    retries: int = 0,
) -> RunReport:
    """The common CLI/driver wrapper around :func:`run_specs`.

    Builds the default cache (unless disabled) and a named, resumable
    journal under it, runs the batch, and closes the journal.  With the
    cache disabled there is nowhere durable to journal, so interrupted
    ``--no-cache`` sweeps restart from scratch — by design: ``--no-cache``
    promises pristine re-execution.
    """
    if not use_cache:
        return run_specs(
            specs,
            jobs=jobs,
            timeout=timeout,
            chunk=chunk,
            progress=progress,
            retries=retries,
        )
    cache = ResultCache(cache_root, fingerprint=code_fingerprint())
    with RunJournal(sweep_journal_path(cache, name, specs), cache.fingerprint) as journal:
        return run_specs(
            specs,
            jobs=jobs,
            cache=cache,
            journal=journal,
            timeout=timeout,
            chunk=chunk,
            progress=progress,
            retries=retries,
        )
