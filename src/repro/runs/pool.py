"""Spawn-safe worker pool executing :class:`~repro.runs.spec.RunSpec`s.

Workers receive plain spec dicts (picklable under any start method),
rebuild the experiment from scratch — trace generation, scheme
construction, simulation — and return plain JSON-able payloads.  The
``spawn`` start context is used deliberately: it is the only method that
works everywhere, and it guarantees workers never inherit warmed-up
interpreter state from the parent, which is what makes the determinism
test (serial result == pooled result, byte for byte) meaningful.

Failure isolation is layered:

* an exception inside a spec is caught *in the worker* and comes back as
  a ``failed`` outcome carrying the traceback — the sweep continues;
* a worker process dying outright (or hanging) is bounded by the
  per-chunk deadline derived from ``timeout``; the affected specs come
  back as ``timeout`` outcomes and the pool is torn down afterwards
  rather than joined.

Dispatch is chunked (several specs per task) to amortize process startup
and IPC; ``chunk=1`` gives the finest isolation, larger chunks less
overhead.  With ``jobs <= 1`` everything runs inline in the parent —
same code path through :func:`execute_spec`, no processes at all.
"""

from __future__ import annotations

import multiprocessing
import time
import traceback
from dataclasses import dataclass, field

from repro.runs.spec import RunSpec

#: Grace seconds added on top of a chunk's nominal deadline.
_TIMEOUT_GRACE = 5.0


# ---------------------------------------------------------------------------
# what a worker actually runs (module level: picklable under spawn)
# ---------------------------------------------------------------------------


def _execute_simulation(spec: RunSpec):
    from repro.analysis.export import result_to_dict
    from repro.sim.runner import run_simulation
    from repro.workloads.spec import spec_trace

    obs_params = spec.params.get("obs")
    session = None
    if obs_params:
        from repro.obs import DEFAULT_CAPACITY, ObsSession

        session = ObsSession(
            capacity=obs_params.get("capacity", DEFAULT_CAPACITY),
            sample_every=obs_params.get("sample_every", 0),
        )

    trace = spec_trace(spec.workload, spec.length, spec.seed)
    result = run_simulation(
        spec.scheme,
        trace,
        spec.system_config(),
        data_capacity=spec.params.get("data_capacity"),
        seed=spec.scheme_seed,
        warmup_fraction=spec.warmup,
        obs=session,
    )
    payload = result_to_dict(result)
    if session is not None:
        # Folded worker-side: the event stream is large and per-process,
        # the timeline summary is small and JSON-able — only the latter
        # travels back (and into the cache).  Consumers must pop "obs"
        # before result_from_dict.
        payload["obs"] = {"timeline": session.timeline(result).as_dict()}
        if obs_params.get("sample_every"):
            from repro.obs.export import series_to_json

            payload["obs"]["series"] = series_to_json(
                session.samples(), every=obs_params["sample_every"]
            )
    return payload


def _campaign_config(spec: RunSpec):
    from repro.faults.campaign import CampaignConfig

    return CampaignConfig(
        schemes=(spec.scheme,),
        steps=spec.params["steps"],
        seed=spec.seed,
        data_capacity=spec.params["data_capacity"],
        media=False,
    )


def _execute_injection(spec: RunSpec):
    from repro.faults.campaign import _inject

    result = _inject(
        spec.scheme, spec.params["site"], spec.params["hit"], _campaign_config(spec)
    )
    return result.to_dict()


def _execute_media(spec: RunSpec):
    from repro.faults.campaign import _media_phase

    return [m.to_dict() for m in _media_phase(spec.scheme, _campaign_config(spec))]


def _execute_discover(spec: RunSpec):
    from repro.faults.campaign import _discover

    return _discover(spec.scheme, _campaign_config(spec))


def _execute_crash(spec: RunSpec):
    from repro.crashsim.explore import execute_cell

    return execute_cell(spec)


_EXECUTORS = {
    "simulation": _execute_simulation,
    "injection": _execute_injection,
    "media": _execute_media,
    "discover": _execute_discover,
    "crash": _execute_crash,
}


def execute_spec(spec_dict: dict):
    """Execute one spec dict and return its JSON-able result payload."""
    spec = RunSpec.from_dict(spec_dict)
    return _EXECUTORS[spec.kind](spec)


def _run_chunk(spec_dicts: list[dict]) -> list[dict]:
    """Worker task: run a chunk of specs, isolating per-spec failures."""
    out = []
    for spec_dict in spec_dicts:
        started = time.perf_counter()
        try:
            payload = execute_spec(spec_dict)
            out.append(
                {
                    "status": "done",
                    "payload": payload,
                    "duration": time.perf_counter() - started,
                }
            )
        except Exception:
            out.append(
                {
                    "status": "failed",
                    "payload": None,
                    "duration": time.perf_counter() - started,
                    "error": traceback.format_exc(),
                }
            )
    return out


# ---------------------------------------------------------------------------
# outcomes and the pool
# ---------------------------------------------------------------------------


@dataclass
class RunOutcome:
    """One spec's fate after orchestration."""

    spec: RunSpec
    status: str  # 'done' | 'failed' | 'timeout'
    payload: object = None
    error: str = ""
    duration: float = 0.0
    #: Where the payload came from: 'run' | 'cache' | 'journal'.
    source: str = "run"

    @property
    def ok(self) -> bool:
        return self.status == "done"


@dataclass
class WorkerPool:
    """Chunked, timeout-bounded executor over a spawn process pool."""

    jobs: int = 1
    #: Per-spec wall-clock budget in seconds (None = unbounded).
    timeout: float | None = None
    #: Specs per worker task (None = auto: ~4 tasks per worker).
    chunk: int | None = None
    start_method: str = "spawn"
    #: Outcomes of the last :meth:`run`, in submission order.
    last_outcomes: list[RunOutcome] = field(default_factory=list)

    def run(self, specs: list[RunSpec], on_result=None) -> list[RunOutcome]:
        """Execute every spec; one outcome per spec, in submission order."""
        if not specs:
            self.last_outcomes = []
            return []
        if self.jobs <= 1:
            outcomes = self._run_inline(specs, on_result)
        else:
            outcomes = self._run_pooled(specs, on_result)
        self.last_outcomes = outcomes
        return outcomes

    def _run_inline(self, specs, on_result) -> list[RunOutcome]:
        outcomes = []
        for spec in specs:
            raw = _run_chunk([spec.to_dict()])[0]
            outcome = RunOutcome(
                spec,
                raw["status"],
                payload=raw["payload"],
                error=raw.get("error", ""),
                duration=raw["duration"],
            )
            outcomes.append(outcome)
            if on_result is not None:
                on_result(outcome)
        return outcomes

    def _chunk_size(self, total: int) -> int:
        if self.chunk is not None:
            return max(1, self.chunk)
        return max(1, -(-total // (self.jobs * 4)))

    def _run_pooled(self, specs, on_result) -> list[RunOutcome]:
        size = self._chunk_size(len(specs))
        chunks = [specs[i:i + size] for i in range(0, len(specs), size)]
        context = multiprocessing.get_context(self.start_method)
        outcomes: list[RunOutcome] = []
        timed_out = False
        pool = context.Pool(processes=min(self.jobs, len(chunks)))
        try:
            pending = [
                pool.apply_async(_run_chunk, ([s.to_dict() for s in chunk],))
                for chunk in chunks
            ]
            for chunk, handle in zip(chunks, pending):
                deadline = (
                    None
                    if self.timeout is None
                    else self.timeout * len(chunk) + _TIMEOUT_GRACE
                )
                try:
                    raws = handle.get(deadline)
                except multiprocessing.TimeoutError:
                    timed_out = True
                    raws = [
                        {
                            "status": "timeout",
                            "payload": None,
                            "duration": deadline or 0.0,
                            "error": f"no result within {deadline:.0f}s "
                            "(worker hung or died)",
                        }
                    ] * len(chunk)
                except Exception:
                    # The worker process died before returning (e.g. a
                    # hard crash the in-worker try/except cannot catch).
                    raws = [
                        {
                            "status": "failed",
                            "payload": None,
                            "duration": 0.0,
                            "error": traceback.format_exc(),
                        }
                    ] * len(chunk)
                for spec, raw in zip(chunk, raws):
                    outcome = RunOutcome(
                        spec,
                        raw["status"],
                        payload=raw["payload"],
                        error=raw.get("error", ""),
                        duration=raw["duration"],
                    )
                    outcomes.append(outcome)
                    if on_result is not None:
                        on_result(outcome)
        finally:
            # A hung worker would block join() forever; terminate instead.
            if timed_out:
                pool.terminate()
            else:
                pool.close()
            pool.join()
        return outcomes
