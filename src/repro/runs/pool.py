"""Spawn-safe worker pool executing :class:`~repro.runs.spec.RunSpec`s.

Workers receive plain spec dicts (picklable under any start method),
rebuild the experiment from scratch — trace generation, scheme
construction, simulation — and return plain JSON-able payloads.  The
``spawn`` start context is used deliberately: it is the only method that
works everywhere, and it guarantees workers never inherit warmed-up
interpreter state from the parent, which is what makes the determinism
test (serial result == pooled result, byte for byte) meaningful.

Failure isolation is layered:

* an exception inside a spec is caught *in the worker* and comes back as
  a ``failed`` outcome carrying the traceback — the sweep continues;
* a worker process dying outright (or hanging) is bounded by the
  per-chunk deadline derived from ``timeout``; the affected specs come
  back as ``timeout`` outcomes and the pool is torn down afterwards
  rather than joined.

Dispatch is chunked (several specs per task) to amortize process startup
and IPC; ``chunk=1`` gives the finest isolation, larger chunks less
overhead.  With ``jobs <= 1`` everything runs inline in the parent —
same code path through :func:`execute_spec`, no processes at all.

When a chunk of several specs times out, only one of them is typically
at fault; by default the pool re-dispatches the whole chunk once at
``chunk=1`` in a fresh pool (one process per spec), so the innocent
chunk-mates complete and only the genuinely hung/crashed spec comes
back as ``timeout``.  Results additionally carry an integrity digest
taken in the worker before IPC; a payload that does not match its
digest in the parent is demoted to a retryable ``corrupt`` outcome
rather than silently trusted.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field

from repro.chaos.inject import chaos_fire
from repro.runs.spec import RunSpec

#: Grace seconds added on top of a chunk's nominal deadline.
_TIMEOUT_GRACE = 5.0


def payload_digest(payload) -> str:
    """Content digest of a result payload (canonical JSON, sha256)."""
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode()).hexdigest()


# ---------------------------------------------------------------------------
# what a worker actually runs (module level: picklable under spawn)
# ---------------------------------------------------------------------------


def _execute_simulation(spec: RunSpec):
    from repro.analysis.export import result_to_dict
    from repro.sim.runner import run_simulation
    from repro.workloads.spec import spec_trace

    obs_params = spec.params.get("obs")
    session = None
    if obs_params:
        from repro.obs import DEFAULT_CAPACITY, ObsSession

        session = ObsSession(
            capacity=obs_params.get("capacity", DEFAULT_CAPACITY),
            sample_every=obs_params.get("sample_every", 0),
        )

    descriptor = spec.params.get("workload")
    if descriptor is not None:
        from repro.trafficgen.descriptor import build_trace

        trace = build_trace(descriptor, spec.length, spec.seed)
    else:
        trace = spec_trace(spec.workload, spec.length, spec.seed)
    result = run_simulation(
        spec.scheme,
        trace,
        spec.system_config(),
        data_capacity=spec.params.get("data_capacity"),
        seed=spec.scheme_seed,
        warmup_fraction=spec.warmup,
        obs=session,
    )
    payload = result_to_dict(result)
    if session is not None:
        # Folded worker-side: the event stream is large and per-process,
        # the timeline summary is small and JSON-able — only the latter
        # travels back (and into the cache).  Consumers must pop "obs"
        # before result_from_dict.
        payload["obs"] = {"timeline": session.timeline(result).as_dict()}
        if obs_params.get("sample_every"):
            from repro.obs.export import series_to_json

            payload["obs"]["series"] = series_to_json(
                session.samples(), every=obs_params["sample_every"]
            )
    return payload


def _campaign_config(spec: RunSpec):
    from repro.faults.campaign import CampaignConfig

    return CampaignConfig(
        schemes=(spec.scheme,),
        steps=spec.params["steps"],
        seed=spec.seed,
        data_capacity=spec.params["data_capacity"],
        media=False,
    )


def _execute_injection(spec: RunSpec):
    from repro.faults.campaign import _inject

    result = _inject(
        spec.scheme, spec.params["site"], spec.params["hit"], _campaign_config(spec)
    )
    return result.to_dict()


def _execute_media(spec: RunSpec):
    from repro.faults.campaign import _media_phase

    return [m.to_dict() for m in _media_phase(spec.scheme, _campaign_config(spec))]


def _execute_discover(spec: RunSpec):
    from repro.faults.campaign import _discover

    return _discover(spec.scheme, _campaign_config(spec))


def _execute_crash(spec: RunSpec):
    from repro.crashsim.explore import execute_cell

    return execute_cell(spec)


_EXECUTORS = {
    "simulation": _execute_simulation,
    "injection": _execute_injection,
    "media": _execute_media,
    "discover": _execute_discover,
    "crash": _execute_crash,
}


def execute_spec(spec_dict: dict):
    """Execute one spec dict and return its JSON-able result payload."""
    spec = RunSpec.from_dict(spec_dict)
    return _EXECUTORS[spec.kind](spec)


def _corrupt_payload(payload, params: dict):
    """Deterministically damage a payload (chaos ``pool.result_corrupt``)."""
    if params.get("mode") == "garbage" or not isinstance(payload, dict):
        return {"__chaos__": "corrupted payload"}
    keys = sorted(payload)
    return {k: payload[k] for k in keys[: len(keys) // 2]}


def _run_chunk(spec_dicts: list[dict]) -> list[dict]:
    """Worker task: run a chunk of specs, isolating per-spec failures."""
    # Process-death sites only make sense in an actual worker process;
    # inline (jobs<=1) execution runs this in the parent, which must
    # never be exited or stalled by its own chaos plan.
    in_worker = multiprocessing.parent_process() is not None
    out = []
    for spec_dict in spec_dicts:
        action = chaos_fire("pool.worker_crash")
        if action is not None and in_worker:
            os._exit(int(action.get("exit_code", 70)))
        action = chaos_fire("pool.worker_hang")
        if action is not None and in_worker:
            time.sleep(float(action.get("hang_seconds", 3600.0)))
        started = time.perf_counter()
        try:
            payload = execute_spec(spec_dict)
            digest = payload_digest(payload)
            action = chaos_fire("pool.result_corrupt")
            if action is not None:
                payload = _corrupt_payload(payload, action)
            out.append(
                {
                    "status": "done",
                    "payload": payload,
                    "digest": digest,
                    "duration": time.perf_counter() - started,
                }
            )
        except Exception:
            out.append(
                {
                    "status": "failed",
                    "payload": None,
                    "duration": time.perf_counter() - started,
                    "error": traceback.format_exc(),
                }
            )
    return out


# ---------------------------------------------------------------------------
# outcomes and the pool
# ---------------------------------------------------------------------------


@dataclass
class RunOutcome:
    """One spec's fate after orchestration."""

    spec: RunSpec
    status: str  # 'done' | 'failed' | 'timeout' | 'corrupt'
    payload: object = None
    error: str = ""
    duration: float = 0.0
    #: Where the payload came from: 'run' | 'cache' | 'journal'.
    source: str = "run"
    #: Whether a supervisor should re-run this spec: True for
    #: infrastructure failures (worker death, hang, torn IPC), False
    #: for errors raised inside the spec itself (deterministic).
    retryable: bool = False

    @property
    def ok(self) -> bool:
        return self.status == "done"


def _raw_outcome(spec: RunSpec, raw: dict) -> RunOutcome:
    """Build one outcome from a worker's raw result dict.

    A ``done`` payload whose content no longer matches the integrity
    digest taken in the worker is demoted to a retryable ``corrupt``
    outcome — torn IPC must never masquerade as a result.
    """
    status = raw["status"]
    payload = raw.get("payload")
    error = raw.get("error", "")
    retryable = bool(raw.get("retryable", False))
    if (
        status == "done"
        and "digest" in raw
        and payload_digest(payload) != raw["digest"]
    ):
        status = "corrupt"
        payload = None
        error = "result payload failed its integrity digest (torn in transit)"
        retryable = True
    return RunOutcome(
        spec,
        status,
        payload=payload,
        error=error,
        duration=raw.get("duration", 0.0),
        retryable=retryable,
    )


@dataclass
class WorkerPool:
    """Chunked, timeout-bounded executor over a spawn process pool."""

    jobs: int = 1
    #: Per-spec wall-clock budget in seconds (None = unbounded).
    timeout: float | None = None
    #: Specs per worker task (None = auto: ~4 tasks per worker).
    chunk: int | None = None
    start_method: str = "spawn"
    #: Grace seconds on top of each chunk's nominal deadline.
    grace: float = _TIMEOUT_GRACE
    #: Re-dispatch a timed-out multi-spec chunk once at chunk=1 so one
    #: hung spec does not condemn its chunk-mates.
    redispatch: bool = True
    #: Worker recycling (``maxtasksperchild``); 1 gives every chunk a
    #: pristine process.
    max_tasks_per_child: int | None = None
    #: Outcomes of the last :meth:`run`, in submission order.
    last_outcomes: list[RunOutcome] = field(default_factory=list)
    #: Specs re-dispatched at chunk=1 after a chunk timeout (cumulative).
    redispatched: int = 0

    def run(self, specs: list[RunSpec], on_result=None) -> list[RunOutcome]:
        """Execute every spec; one outcome per spec, in submission order."""
        if not specs:
            self.last_outcomes = []
            return []
        if self.jobs <= 1:
            outcomes = self._run_inline(specs, on_result)
        else:
            outcomes = self._run_pooled(specs, on_result)
        self.last_outcomes = outcomes
        return outcomes

    def _run_inline(self, specs, on_result) -> list[RunOutcome]:
        outcomes = []
        for spec in specs:
            raw = _run_chunk([spec.to_dict()])[0]
            outcome = _raw_outcome(spec, raw)
            outcomes.append(outcome)
            if on_result is not None:
                on_result(outcome)
        return outcomes

    def _chunk_size(self, total: int) -> int:
        if self.chunk is not None:
            return max(1, self.chunk)
        return max(1, -(-total // (self.jobs * 4)))

    def _run_pooled(self, specs, on_result) -> list[RunOutcome]:
        size = self._chunk_size(len(specs))
        chunks = [specs[i:i + size] for i in range(0, len(specs), size)]
        context = multiprocessing.get_context(self.start_method)
        #: (submission index, outcome); sorted back before returning.
        indexed: list[tuple[int, RunOutcome]] = []
        #: (submission index, spec) of timed-out multi-spec chunk members
        #: held back for the chunk=1 re-dispatch (not yet reported).
        suspects: list[tuple[int, RunSpec]] = []
        timed_out = False
        pool = context.Pool(
            processes=min(self.jobs, len(chunks)),
            maxtasksperchild=self.max_tasks_per_child,
        )
        try:
            pending = [
                pool.apply_async(_run_chunk, ([s.to_dict() for s in chunk],))
                for chunk in chunks
            ]
            base = 0
            for chunk, handle in zip(chunks, pending):
                deadline = (
                    None
                    if self.timeout is None
                    else self.timeout * len(chunk) + self.grace
                )
                try:
                    raws = handle.get(deadline)
                except multiprocessing.TimeoutError:
                    timed_out = True
                    raws = [
                        {
                            "status": "timeout",
                            "payload": None,
                            "duration": deadline or 0.0,
                            "error": f"no result within {deadline:.0f}s "
                            "(worker hung or died)",
                            "retryable": True,
                        }
                    ] * len(chunk)
                except Exception:
                    # The worker process died before returning (e.g. a
                    # hard crash the in-worker try/except cannot catch).
                    raws = [
                        {
                            "status": "failed",
                            "payload": None,
                            "duration": 0.0,
                            "error": traceback.format_exc(),
                            "retryable": True,
                        }
                    ] * len(chunk)
                for offset, (spec, raw) in enumerate(zip(chunk, raws)):
                    if (
                        raw["status"] == "timeout"
                        and self.redispatch
                        and len(chunk) > 1
                    ):
                        suspects.append((base + offset, spec))
                        continue
                    outcome = _raw_outcome(spec, raw)
                    indexed.append((base + offset, outcome))
                    if on_result is not None:
                        on_result(outcome)
                base += len(chunk)
        finally:
            # A hung worker would block join() forever; terminate instead.
            if timed_out:
                pool.terminate()
            else:
                pool.close()
            pool.join()
        if suspects:
            # Isolate the offender: one fresh process per surviving spec
            # (maxtasksperchild=1 also resets any per-process chaos
            # counters, so a scheduled crash does not re-fire here).
            self.redispatched += len(suspects)
            retry_pool = WorkerPool(
                jobs=min(self.jobs, len(suspects)),
                timeout=self.timeout,
                chunk=1,
                start_method=self.start_method,
                grace=self.grace,
                redispatch=False,
                max_tasks_per_child=1,
            )
            retried = retry_pool.run([spec for _, spec in suspects])
            for (index, _spec), outcome in zip(suspects, retried):
                indexed.append((index, outcome))
                if on_result is not None:
                    on_result(outcome)
        return [outcome for _, outcome in sorted(indexed, key=lambda p: p[0])]
