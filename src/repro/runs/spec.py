"""Declarative run specifications with deterministic content hashes.

A :class:`RunSpec` names everything that determines one experiment's
outcome — the kind of run, the design, the workload recipe, the system
configuration and every seed — as plain JSON-able data.  Two specs that
would produce the same result serialize to the same canonical JSON and
therefore hash to the same :meth:`RunSpec.spec_hash`, which is the key
the on-disk result cache and the run journal are addressed by.

The spec deliberately stores the workload *recipe* (name, length, seed),
never the generated trace: traces are megabytes, regenerating them is
deterministic and cheap, and keeping specs tiny lets a worker process
rebuild its entire job from one small dict.

:class:`Sweep` is the cartesian product companion: the Figure 5 matrix
is ``Sweep(schemes=..., workloads=...)``, the fault campaign's scheme x
site grid and the Figure 6 sensitivity sweeps expand the same way.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Mapping

from repro.common.config import (
    CacheConfig,
    ControllerConfig,
    CpuConfig,
    EpochConfig,
    NVMConfig,
    SecurityConfig,
    SystemConfig,
)

#: Run kinds the worker pool knows how to execute (see ``runs.pool``).
RUN_KINDS = ("simulation", "injection", "media", "discover", "crash")


def canonical_json(obj: Any) -> str:
    """The one serialization used for hashing: sorted keys, no whitespace."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


# ---------------------------------------------------------------------------
# SystemConfig <-> plain dict
# ---------------------------------------------------------------------------


def config_to_dict(config: SystemConfig) -> dict:
    """Flatten a :class:`SystemConfig` into a JSON-able nested dict."""
    return asdict(config)


def config_from_dict(data: Mapping) -> SystemConfig:
    """Rebuild a :class:`SystemConfig` from :func:`config_to_dict` output."""
    security = dict(data["security"])
    security["meta_cache"] = CacheConfig(**security["meta_cache"])
    return SystemConfig(
        cpu=CpuConfig(**data["cpu"]),
        l1=CacheConfig(**data["l1"]),
        l2=CacheConfig(**data["l2"]),
        nvm=NVMConfig(**data["nvm"]),
        controller=ControllerConfig(**data["controller"]),
        security=SecurityConfig(**security),
        epoch=EpochConfig(**data["epoch"]),
    )


def _normalize_config(config: SystemConfig | Mapping | None) -> dict | None:
    if config is None:
        return None
    if isinstance(config, SystemConfig):
        return config_to_dict(config)
    return dict(config)


# ---------------------------------------------------------------------------
# RunSpec
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class RunSpec:
    """Everything that determines one experiment's result, as data.

    * ``kind`` — what the worker executes: a full-system ``simulation``,
      a fault-campaign ``injection``/``media`` phase, or a crash-site
      ``discover`` pass.
    * ``scheme`` / ``workload`` / ``length`` / ``seed`` — the design and
      the workload recipe (SPEC surrogate name + generator parameters).
    * ``scheme_seed`` — the key-derivation seed handed to
      :func:`repro.core.schemes.create_scheme` (independent of the
      workload seed, exactly as in :func:`repro.sim.runner.run_simulation`).
    * ``warmup`` — warmup fraction replayed before measurement.
    * ``config`` — full :func:`config_to_dict` image, or ``None`` for the
      paper-default :class:`SystemConfig`.
    * ``params`` — kind-specific knobs (crash site, hit index, campaign
      steps, data capacity ...); folded into the hash like everything else.
    """

    kind: str = "simulation"
    scheme: str = "ccnvm"
    workload: str = ""
    length: int = 0
    seed: int = 0
    scheme_seed: int = 0
    warmup: float = 0.0
    config: Mapping | None = None
    params: Mapping = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in RUN_KINDS:
            raise ValueError(f"unknown run kind {self.kind!r}; choose from {RUN_KINDS}")
        object.__setattr__(self, "config", _normalize_config(self.config))
        object.__setattr__(self, "params", dict(self.params))

    def to_dict(self) -> dict:
        """Plain-dict image — the canonical JSON of this is what is hashed."""
        return {
            "kind": self.kind,
            "scheme": self.scheme,
            "workload": self.workload,
            "length": self.length,
            "seed": self.seed,
            "scheme_seed": self.scheme_seed,
            "warmup": self.warmup,
            "config": self.config,
            "params": dict(self.params),
        }

    @staticmethod
    def from_dict(data: Mapping) -> "RunSpec":
        return RunSpec(**dict(data))

    def spec_hash(self) -> str:
        """Deterministic content hash of the spec (sha256 of canonical JSON)."""
        return hashlib.sha256(canonical_json(self.to_dict()).encode()).hexdigest()

    def describe(self) -> str:
        """A short human label for progress lines and journals."""
        parts = [self.kind, self.scheme]
        if self.workload:
            parts.append(f"{self.workload}@{self.length}#{self.seed}")
        if "site" in self.params:
            parts.append(str(self.params["site"]))
        if self.params.get("mode") == "enumerate":
            parts.append(f"shard{self.params['shard']}/{self.params['shards']}")
        if "depth" in self.params:
            parts.append(f"depth{self.params['depth']}")
        return "/".join(parts)

    def system_config(self) -> SystemConfig:
        """The live :class:`SystemConfig` this spec runs under."""
        return SystemConfig() if self.config is None else config_from_dict(self.config)


def simulation_spec(
    scheme: str,
    workload: str,
    length: int,
    seed: int,
    config: SystemConfig | Mapping | None = None,
    scheme_seed: int = 0,
    warmup: float = 0.0,
    data_capacity: int | None = None,
    obs: Mapping | None = None,
    workload_descriptor: Mapping | None = None,
) -> RunSpec:
    """Spec for one :func:`repro.sim.runner.run_simulation` cell.

    *obs*, when given, asks the worker to run under an
    :class:`repro.obs.ObsSession` and attach the folded observability
    payload (timeline, optional sample series) to the result under an
    ``"obs"`` key.  Its knobs (``capacity``, ``sample_every``) are part
    of the spec hash, so obs-enabled runs cache separately from plain
    ones — the plain headline payload stays byte-identical.

    *workload_descriptor*, when given, is a trafficgen workload
    descriptor (see :mod:`repro.trafficgen.descriptor`): it is
    canonicalized into ``params["workload"]`` — and therefore into the
    spec hash — and the worker materializes the trace from it instead
    of from a named Figure-5 surrogate.  *workload* may then be left
    empty; it defaults to the descriptor's short content label.
    """
    params = {} if data_capacity is None else {"data_capacity": data_capacity}
    if obs is not None:
        params["obs"] = dict(obs)
    if workload_descriptor is not None:
        from repro.trafficgen.descriptor import (
            descriptor_label,
            validate_descriptor,
        )

        canonical = validate_descriptor(workload_descriptor)
        params["workload"] = canonical
        workload = workload or descriptor_label(canonical)
    return RunSpec(
        kind="simulation",
        scheme=scheme,
        workload=workload,
        length=length,
        seed=seed,
        scheme_seed=scheme_seed,
        warmup=warmup,
        config=config,
        params=params,
    )


# ---------------------------------------------------------------------------
# Sweep
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Sweep:
    """A cartesian (scheme x workload x config x seed) grid of simulations.

    ``configs`` maps a *label* to a config (``None`` = paper defaults);
    the label is not hashed — only the config content is — but it lets
    callers reassemble expanded results by swept point.
    """

    schemes: tuple[str, ...]
    workloads: tuple[str, ...]
    length: int
    seeds: tuple[int, ...] = (1,)
    configs: Mapping[str, SystemConfig | Mapping | None] = field(
        default_factory=lambda: {"default": None}
    )
    warmup: float = 0.0
    scheme_seed: int = 0

    def expand(self) -> list[tuple[tuple[str, str, str, int], RunSpec]]:
        """All cells, as ``((config_label, scheme, workload, seed), spec)``.

        Expansion order is deterministic: configs in mapping order, then
        schemes, workloads and seeds in their given order.
        """
        cells = []
        for label, config in self.configs.items():
            normalized = _normalize_config(config)
            for scheme in self.schemes:
                for workload in self.workloads:
                    for seed in self.seeds:
                        spec = simulation_spec(
                            scheme,
                            workload,
                            self.length,
                            seed,
                            config=normalized,
                            scheme_seed=self.scheme_seed,
                            warmup=self.warmup,
                        )
                        cells.append(((label, scheme, workload, seed), spec))
        return cells

    def specs(self) -> list[RunSpec]:
        """Just the specs, in expansion order."""
        return [spec for _, spec in self.expand()]
