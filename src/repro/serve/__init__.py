"""Long-lived simulation service: sharded queue, shared cache, streaming.

The subsystem promotes the run orchestrator (:mod:`repro.runs`) from a
per-invocation library to a persistent daemon so a fleet of clients
shares one warm cache:

* :mod:`repro.serve.protocol` — versioned, byte-stable JSON wire format
  (covered by the lint determinism rules) plus SSE framing;
* :mod:`repro.serve.queue` — sharded priority queue with per-client
  quotas and global admission control;
* :mod:`repro.serve.service` — request coalescing on content keys, the
  shared multi-generation :class:`~repro.runs.cache.ResultCache` with
  eviction, execution through cache → journal → pool, and per-job event
  streams;
* :mod:`repro.serve.breaker` — the circuit breaker behind cache-only
  degraded mode and the ``/readyz`` readiness signal;
* :mod:`repro.serve.http` — the asyncio HTTP / unix-socket front-end;
* :mod:`repro.serve.client` — the blocking thin client the CLI uses;
* :mod:`repro.serve.lock` — the one-daemon-per-cache-root pidfile lock;
* :mod:`repro.serve.daemon` — the ``repro serve`` entry point.
"""

from repro.serve.breaker import CircuitBreaker, ServiceDegradedError
from repro.serve.client import ServeClient, ServeError
from repro.serve.daemon import DaemonConfig, run_daemon
from repro.serve.lock import DaemonLock, DaemonRunningError
from repro.serve.protocol import SCHEMA_VERSION, ProtocolError
from repro.serve.queue import QueueFullError, QuotaExceededError, ShardedQueue
from repro.serve.service import Job, SimulationService, job_key

__all__ = [
    "CircuitBreaker",
    "DaemonConfig",
    "DaemonLock",
    "DaemonRunningError",
    "Job",
    "ProtocolError",
    "QueueFullError",
    "QuotaExceededError",
    "SCHEMA_VERSION",
    "ServeClient",
    "ServeError",
    "ServiceDegradedError",
    "ShardedQueue",
    "SimulationService",
    "job_key",
    "run_daemon",
]
