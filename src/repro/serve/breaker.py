"""Circuit breaker guarding the daemon's execution path.

When the execution backend fails repeatedly (worker pool wedged, cache
volume returning EIO, a poisoned code fingerprint), continuing to accept
cold work just queues more failures behind the first one.  The breaker
trips after *threshold* **consecutive** job failures and the service
degrades to cache-only mode: warm submissions (every spec already
cached) are still served, cold submissions are refused with a 503 and a
``Retry-After`` hint.  After *cooldown* seconds a single probe job is
let through (half-open); its success closes the breaker, its failure
re-trips the cooldown.

The breaker is deliberately not thread-safe on its own: the service
only touches it from the event loop thread.
"""

from __future__ import annotations

import time


class ServiceDegradedError(RuntimeError):
    """Raised on cold submissions while the breaker is open."""

    def __init__(self, retry_after: float) -> None:
        #: Seconds until the breaker will admit a probe; HTTP maps this
        #: to the Retry-After header.
        self.retry_after = max(0.0, retry_after)
        super().__init__(
            "service degraded: execution breaker open, cache-only mode "
            f"(retry after {self.retry_after:.1f}s)"
        )


class CircuitBreaker:
    """Classic closed / open / half-open breaker over job outcomes."""

    def __init__(
        self,
        threshold: int = 5,
        cooldown: float = 30.0,
        clock=time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"breaker threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.cooldown = cooldown
        self._clock = clock
        self.state = "closed"
        self.consecutive_failures = 0
        self.opened_at: float | None = None
        #: Lifetime counters, exposed via status() for observability.
        self.trips = 0
        self.probes = 0

    def allow(self) -> bool:
        """May a cold (uncached) job be admitted right now?

        Transitions open -> half_open when the cooldown has elapsed; in
        half-open exactly one caller gets True (the probe) until its
        outcome is recorded.
        """
        if self.state == "closed":
            return True
        if self.state == "open":
            if self._clock() - self.opened_at >= self.cooldown:
                self.state = "half_open"
                self.probes += 1
                return True
            return False
        # half_open: the single probe is already in flight.
        return False

    def record_success(self) -> None:
        if self.state == "half_open":
            self.state = "closed"
            self.opened_at = None
        self.consecutive_failures = 0

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == "half_open":
            # The probe failed: straight back to open, fresh cooldown.
            self.state = "open"
            self.opened_at = self._clock()
            self.trips += 1
        elif self.state == "closed" and self.consecutive_failures >= self.threshold:
            self.state = "open"
            self.opened_at = self._clock()
            self.trips += 1

    def retry_after(self) -> float:
        """Seconds until the next probe would be admitted (0 if now)."""
        if self.state != "open" or self.opened_at is None:
            return 0.0
        return max(0.0, self.cooldown - (self._clock() - self.opened_at))

    def snapshot(self) -> dict:
        return {
            "state": self.state,
            "threshold": self.threshold,
            "cooldown": self.cooldown,
            "consecutive_failures": self.consecutive_failures,
            "retry_after": round(self.retry_after(), 3),
            "trips": self.trips,
            "probes": self.probes,
        }
