"""Thin blocking client for the simulation service.

The CLI is one consumer of this module; tests are another.  It speaks
the same one-request-per-connection HTTP/1.1 the server emits, over TCP
(``http://host:port``) or a unix socket (``unix:///path``), with no
third-party dependency — a plain socket, a tiny response parser, and
the :mod:`repro.serve.protocol` body codecs.

``watch`` is a generator over the job's server-sent-events stream: it
yields every event (history replay included) and returns after the
terminal ``done``/``failed``/``deadline`` event, so ``for event in
client.watch(id)`` is a complete progress loop.

Transient infrastructure faults are the client's problem too: connects
retry with exponential backoff while the daemon is still binding its
socket (``connect_attempts``), and a watch stream that drops without a
terminal event reconnects and resumes — events carry a per-job ``seq``,
so the replayed history is deduplicated and the caller sees every event
exactly once, in order.
"""

from __future__ import annotations

import socket
import time
from typing import Iterator

from repro.serve.protocol import (
    is_terminal_event,
    sse_parse,
    submit_body,
    wire_decode,
    wire_encode,
)

#: Seconds a control request (status/submit/job/result) may take.
DEFAULT_TIMEOUT = 60.0


class ServeError(RuntimeError):
    """A non-2xx response, carrying the server's error document."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"server returned {status}: {message}")
        self.status = status
        self.message = message


class ServeClient:
    """One service endpoint, addressed as ``http://host:port`` or
    ``unix:///path/to/socket``."""

    def __init__(
        self,
        server: str,
        timeout: float = DEFAULT_TIMEOUT,
        connect_attempts: int = 3,
        connect_backoff: float = 0.1,
        watch_resume: int = 3,
    ) -> None:
        self.server = server
        self.timeout = timeout
        #: Connect retries (refused / socket-not-there-yet) and their
        #: initial backoff; the delay doubles per attempt, capped at 2s.
        self.connect_attempts = max(1, connect_attempts)
        self.connect_backoff = connect_backoff
        #: Times one watch() call will reconnect a dropped event stream.
        self.watch_resume = max(0, watch_resume)
        if server.startswith("unix://"):
            self._unix_path = server[len("unix://"):]
            self._addr = None
        elif server.startswith("http://"):
            rest = server[len("http://"):].rstrip("/")
            host, _, port = rest.partition(":")
            if not port:
                raise ValueError(f"{server!r} needs an explicit port")
            self._unix_path = None
            self._addr = (host, int(port))
        else:
            raise ValueError(
                f"unsupported server address {server!r} "
                "(use http://host:port or unix:///path)"
            )

    # -- transport -----------------------------------------------------------

    def _connect_once(self, timeout: float | None) -> socket.socket:
        if self._unix_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(self._unix_path)
        else:
            sock = socket.create_connection(self._addr, timeout=timeout)
        return sock

    def _connect(self, timeout: float | None) -> socket.socket:
        """Connect with a bounded retry budget.

        A daemon that is still starting (socket file not created yet,
        listener not bound yet) refuses for a few hundred milliseconds;
        retrying here means every caller — CLI, campaign, tests — gets
        that grace for free.  Anything other than refused/missing-socket
        raises immediately.
        """
        delay = self.connect_backoff
        for attempt in range(self.connect_attempts):
            try:
                return self._connect_once(timeout)
            except (ConnectionRefusedError, FileNotFoundError):
                if attempt == self.connect_attempts - 1:
                    raise
                time.sleep(min(2.0, delay))
                delay *= 2
        raise AssertionError("unreachable")

    def _send(self, sock: socket.socket, method: str, path: str,
              body: dict | None) -> None:
        payload = wire_encode(body) if body is not None else b""
        host = "localhost" if self._unix_path is not None else self._addr[0]
        head = (
            f"{method} {path} HTTP/1.1\r\n"
            f"Host: {host}\r\n"
            "Connection: close\r\n"
        )
        if payload:
            head += (
                "Content-Type: application/json\r\n"
                f"Content-Length: {len(payload)}\r\n"
            )
        sock.sendall(head.encode("latin-1") + b"\r\n" + payload)

    @staticmethod
    def _read_head(reader) -> tuple[int, dict]:
        status_line = reader.readline().decode("latin-1").strip()
        try:
            _, code, _ = status_line.split(" ", 2)
            status = int(code)
        except ValueError as exc:
            raise ServeError(0, f"bad status line {status_line!r}") from exc
        headers = {}
        while True:
            line = reader.readline().decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers

    def _request(self, method: str, path: str, body: dict | None = None,
                 timeout: float | None = None) -> dict:
        sock = self._connect(timeout or self.timeout)
        try:
            self._send(sock, method, path, body)
            reader = sock.makefile("rb")
            status, headers = self._read_head(reader)
            length = headers.get("content-length")
            raw = reader.read(int(length)) if length is not None else reader.read()
        finally:
            sock.close()
        document = wire_decode(raw)
        if status >= 400:
            raise ServeError(status, document.get("error", raw.decode()))
        return document

    # -- the API -------------------------------------------------------------

    def status(self) -> dict:
        return self._request("GET", "/v1/status")

    def healthz(self) -> dict:
        """Liveness document (always 200 while the daemon serves)."""
        return self._request("GET", "/healthz")

    def readyz(self) -> dict:
        """Readiness document; raises :class:`ServeError` 503 when the
        service is degraded to cache-only mode."""
        return self._request("GET", "/readyz")

    def submit(self, kind: str, client: str = "cli", priority: int = 0,
               specs: list[dict] | None = None,
               params: dict | None = None) -> dict:
        return self._request(
            "POST",
            "/v1/submit",
            submit_body(kind, client=client, priority=priority,
                        specs=specs, params=params),
        )

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        return self._request("GET", f"/v1/jobs/{job_id}/result")

    def shutdown(self) -> dict:
        return self._request("POST", "/v1/shutdown")

    def _stream(self, job_id: str, timeout: float | None) -> Iterator[dict]:
        """One SSE connection's worth of events (may end without a
        terminal event if the server drops the stream)."""
        sock = self._connect(timeout)
        try:
            self._send(sock, "GET", f"/v1/jobs/{job_id}/events", None)
            reader = sock.makefile("rb")
            status, headers = self._read_head(reader)
            if status >= 400:
                raw = reader.read()
                document = wire_decode(raw) if raw else {}
                raise ServeError(status, document.get("error", ""))
            yield from sse_parse(reader)
        finally:
            sock.close()

    def watch(self, job_id: str, timeout: float | None = None) -> Iterator[dict]:
        """Yield the job's events; returns after the terminal event.

        *timeout* bounds the wait for each individual event, not the
        whole stream (a cold sweep can stream for minutes).

        A stream that ends *without* a terminal event (connection
        dropped mid-job) is reconnected up to ``watch_resume`` times;
        each reconnect replays the job's history, so already-yielded
        events are skipped by their ``seq`` — the caller observes one
        gapless, strictly-ordered event sequence regardless of how many
        connections it took.
        """
        last_seq = 0
        delay = self.connect_backoff
        for attempt in range(self.watch_resume + 1):
            for event in self._stream(job_id, timeout):
                seq = int(event.get("seq", 0))
                if seq <= last_seq:
                    continue  # history replay of an already-seen event
                last_seq = seq
                yield event
                if is_terminal_event(event):
                    return
            # Stream ended with no terminal event: the connection died.
            if attempt == self.watch_resume:
                raise ServeError(
                    0,
                    f"event stream for {job_id} dropped "
                    f"{self.watch_resume + 1} time(s) without a terminal event",
                )
            time.sleep(min(2.0, delay))
            delay *= 2

    def run(self, kind: str, client: str = "cli", priority: int = 0,
            specs: list[dict] | None = None, params: dict | None = None,
            on_event=None, timeout: float | None = None) -> dict:
        """Submit, watch to completion, and return the result envelope."""
        descriptor = self.submit(
            kind, client=client, priority=priority, specs=specs, params=params
        )
        for event in self.watch(descriptor["job_id"], timeout=timeout):
            if on_event is not None:
                on_event(event)
        return self.result(descriptor["job_id"])
