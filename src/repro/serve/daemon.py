"""Daemon entry point: lock, listeners, signals, graceful shutdown.

``repro serve`` builds a :class:`DaemonConfig` from its flags and calls
:func:`run_daemon`, which

1. takes the cache directory's pidfile lock (a second daemon on the
   same cache root is refused with a clear error; a stale lock from a
   SIGKILLed daemon is broken and its sweeps later resume from their
   journals);
2. starts the :class:`~repro.serve.service.SimulationService` shard
   workers and the TCP and/or unix-socket listeners;
3. optionally writes the bound TCP port to ``port_file`` (tests and CI
   bind port 0 and discover the ephemeral port there);
4. waits for SIGINT/SIGTERM or a ``POST /v1/shutdown`` and tears down
   in reverse order, releasing the lock last.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import signal
import sys
from dataclasses import dataclass
from pathlib import Path

from repro.serve.http import HttpServer
from repro.serve.lock import DaemonLock, DaemonRunningError
from repro.serve.service import SimulationService


@dataclass
class DaemonConfig:
    """Everything ``repro serve`` can configure."""

    host: str = "127.0.0.1"
    port: int | None = 8377
    unix_socket: str | None = None
    cache_root: str | None = None
    shards: int = 2
    quota: int = 4
    max_depth: int = 64
    jobs: int = 1
    max_generations: int | None = None
    max_bytes: int | None = None
    port_file: str | None = None
    log_file: str | None = None
    quiet: bool = False
    #: Per-spec execution timeout and supervision retry budget.
    timeout: float | None = None
    retries: int = 2
    #: Circuit breaker: consecutive job failures before degrading to
    #: cache-only mode, and seconds before the half-open probe.
    breaker_threshold: int = 5
    breaker_cooldown: float = 30.0


def _make_logger(config: DaemonConfig):
    handle = None
    if config.log_file:
        handle = open(config.log_file, "a", encoding="utf-8")

    def log(line: str) -> None:
        if handle is not None:
            handle.write(line + "\n")
            handle.flush()
        if not config.quiet:
            print(f"[serve] {line}", file=sys.stderr, flush=True)

    return log


async def _serve(config: DaemonConfig, service: SimulationService, log) -> int:
    service.start()
    server = HttpServer(service, log=log)
    bound_port = None
    if config.port is not None:
        bound_port = await server.listen_tcp(config.host, config.port)
        log(f"listening on http://{config.host}:{bound_port}")
    if config.unix_socket:
        await server.listen_unix(config.unix_socket)
        log(f"listening on unix://{config.unix_socket}")
    if config.port_file and bound_port is not None:
        Path(config.port_file).write_text(f"{bound_port}\n", encoding="utf-8")

    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        with contextlib.suppress(NotImplementedError):
            loop.add_signal_handler(signum, stop.set)

    stopper = asyncio.create_task(server.stop_requested.wait())
    waiter = asyncio.create_task(stop.wait())
    done, pending = await asyncio.wait(
        (stopper, waiter), return_when=asyncio.FIRST_COMPLETED
    )
    for task in pending:
        task.cancel()
        with contextlib.suppress(asyncio.CancelledError):
            await task
    log("shutting down")
    await server.close()
    await service.stop()
    if config.unix_socket:
        with contextlib.suppress(OSError):
            os.unlink(config.unix_socket)
    return 0


def run_daemon(config: DaemonConfig) -> int:
    """Run the service until stopped; returns a process exit code."""
    log = _make_logger(config)
    service = SimulationService(
        cache_root=config.cache_root,
        shards=config.shards,
        quota=config.quota,
        max_depth=config.max_depth,
        jobs=config.jobs,
        max_generations=config.max_generations,
        max_bytes=config.max_bytes,
        log=log,
        timeout=config.timeout,
        retries=config.retries,
        breaker_threshold=config.breaker_threshold,
        breaker_cooldown=config.breaker_cooldown,
    )
    try:
        lock = DaemonLock(service.cache.root).acquire()
    except DaemonRunningError as exc:
        print(f"repro serve: {exc}", file=sys.stderr)
        return 2
    log(
        f"daemon pid {os.getpid()} serving cache {service.cache.root} "
        f"(fingerprint {service.cache.fingerprint}, "
        f"{config.shards} shard(s), quota {config.quota})"
    )
    from repro.chaos.inject import active as chaos_active

    injector = chaos_active()
    if injector is not None:
        log(f"CHAOS ACTIVE: {injector.plan.describe()}")
    try:
        return asyncio.run(_serve(config, service, log))
    finally:
        lock.release()
        log("lock released")
