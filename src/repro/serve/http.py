"""Minimal asyncio HTTP/1.1 front-end for the simulation service.

No web framework: the protocol surface is five routes with JSON bodies
plus one server-sent-events stream, small enough that a hand-rolled
parser over ``asyncio`` streams is both dependency-free and easy to
audit.  Every connection serves exactly one request (``Connection:
close``), which keeps the state machine trivial and is plenty for a
cache-warm service where a request is one round trip.

Routes (all bodies are :mod:`repro.serve.protocol` documents):

* ``GET  /healthz`` — liveness: always 200 while the loop is serving;
* ``GET  /readyz`` — readiness: 200 when cold work is admitted, 503
  (with ``Retry-After``) while the breaker holds the service in
  cache-only degraded mode;
* ``GET  /v1/status`` — queue/cache/job inventory;
* ``POST /v1/submit`` — admit or coalesce a job (429 over quota, 503
  when the queue is full or the service is degraded);
* ``GET  /v1/jobs/<id>`` — one job's descriptor;
* ``GET  /v1/jobs/<id>/result`` — the terminal result envelope;
* ``GET  /v1/jobs/<id>/events`` — SSE: full history replay, then live
  events until the terminal ``done``/``failed``/``deadline`` event;
* ``POST /v1/shutdown`` — graceful stop (used by tests and the CLI).

The same handler serves TCP and unix-domain listeners.
"""

from __future__ import annotations

import asyncio

from repro.chaos.inject import chaos_fire
from repro.serve.breaker import ServiceDegradedError
from repro.serve.protocol import (
    ProtocolError,
    error_body,
    is_terminal_event,
    sse_format,
    wire_decode,
    wire_encode,
)
from repro.serve.queue import QueueFullError, QuotaExceededError
from repro.serve.service import SimulationService

#: Largest accepted request body (a specs submit of a few thousand cells).
MAX_BODY = 16 << 20

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpServer:
    """One service, any number of TCP/unix listeners."""

    def __init__(self, service: SimulationService, log=None) -> None:
        self.service = service
        self.log = log or (lambda line: None)
        self.servers: list[asyncio.AbstractServer] = []
        self.stop_requested = asyncio.Event()

    # -- listeners -----------------------------------------------------------

    async def listen_tcp(self, host: str, port: int) -> int:
        server = await asyncio.start_server(self._connection, host, port)
        self.servers.append(server)
        return server.sockets[0].getsockname()[1]

    async def listen_unix(self, path: str) -> None:
        server = await asyncio.start_unix_server(self._connection, path)
        self.servers.append(server)

    async def close(self) -> None:
        for server in self.servers:
            server.close()
        for server in self.servers:
            await server.wait_closed()
        self.servers = []

    # -- the request cycle ---------------------------------------------------

    async def _connection(self, reader, writer) -> None:
        try:
            await self._handle(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-response
        except Exception as exc:  # noqa: BLE001 - the daemon must survive
            self.log(f"handler error: {type(exc).__name__}: {exc}")
            try:
                await self._respond(writer, 500, error_body(500, "internal error"))
            except Exception:  # noqa: BLE001
                pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # noqa: BLE001
                pass

    async def _handle(self, reader, writer) -> None:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            return
        try:
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            await self._respond(writer, 400, error_body(400, "bad request line"))
            return
        headers = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > MAX_BODY:
            await self._respond(writer, 413, error_body(413, "body too large"))
            return
        body = await reader.readexactly(length) if length else b""
        await self._route(writer, method.upper(), target.split("?", 1)[0], body)

    async def _route(self, writer, method: str, path: str, body: bytes) -> None:
        parts = [p for p in path.split("/") if p]
        if parts and parts[0] in ("healthz", "readyz") and len(parts) == 1:
            if method != "GET":
                await self._respond(writer, 405, error_body(405, "GET only"))
                return
            health = self.service.health()
            if parts[0] == "healthz":
                # Liveness: answering at all is the signal.
                await self._respond(writer, 200, health)
                return
            if health["status"] == "ready":
                await self._respond(writer, 200, health)
            else:
                retry = health["breaker"]["retry_after"]
                await self._respond(
                    writer,
                    503,
                    health,
                    headers={"Retry-After": f"{max(1, int(retry + 0.999))}"},
                )
            return
        if len(parts) < 2 or parts[0] != "v1":
            await self._respond(writer, 404, error_body(404, f"no route {path}"))
            return
        if parts[1] == "status" and len(parts) == 2:
            if method != "GET":
                await self._respond(writer, 405, error_body(405, "GET only"))
                return
            await self._respond(writer, 200, self.service.status())
            return
        if parts[1] == "submit" and len(parts) == 2:
            if method != "POST":
                await self._respond(writer, 405, error_body(405, "POST only"))
                return
            await self._submit(writer, body)
            return
        if parts[1] == "shutdown" and len(parts) == 2:
            if method != "POST":
                await self._respond(writer, 405, error_body(405, "POST only"))
                return
            await self._respond(writer, 200, {"schema_version": 1, "stopping": True})
            self.stop_requested.set()
            return
        if parts[1] == "jobs" and len(parts) in (3, 4):
            job = self.service.job(parts[2])
            if job is None:
                await self._respond(
                    writer, 404, error_body(404, f"unknown job {parts[2]!r}")
                )
                return
            if len(parts) == 3:
                await self._respond(writer, 200, job.descriptor())
                return
            if parts[3] == "result":
                if job.result is None:
                    await self._respond(
                        writer,
                        404,
                        error_body(404, f"job {job.job_id} has no result yet"),
                    )
                    return
                await self._respond(writer, 200, job.result)
                return
            if parts[3] == "events":
                await self._stream_events(writer, job)
                return
        await self._respond(writer, 404, error_body(404, f"no route {path}"))

    async def _submit(self, writer, body: bytes) -> None:
        try:
            descriptor = self.service.submit(wire_decode(body))
        except ProtocolError as exc:
            await self._respond(writer, 400, error_body(400, str(exc)))
            return
        except QuotaExceededError as exc:
            await self._respond(writer, 429, error_body(429, str(exc)))
            return
        except QueueFullError as exc:
            await self._respond(writer, 503, error_body(503, str(exc)))
            return
        except ServiceDegradedError as exc:
            await self._respond(
                writer,
                503,
                error_body(503, str(exc)),
                headers={"Retry-After": f"{max(1, int(exc.retry_after + 0.999))}"},
            )
            return
        await self._respond(writer, 200, descriptor)

    # -- responses -----------------------------------------------------------

    async def _respond(
        self, writer, status: int, body: dict, headers: dict | None = None
    ) -> None:
        payload = wire_encode(body)
        extra = "".join(f"{k}: {v}\r\n" for k, v in (headers or {}).items())
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
            "Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"{extra}"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    async def _stream_events(self, writer, job) -> None:
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: text/event-stream\r\n"
            "Cache-Control: no-store\r\n"
            "Connection: close\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1"))
        history, live = self.service.subscribe(job)
        terminal_seen = False
        try:
            for event in history:
                if not await self._write_event(writer, event):
                    return
                terminal_seen = terminal_seen or is_terminal_event(event)
            await writer.drain()
            while live is not None and not terminal_seen:
                event = await live.get()
                if not await self._write_event(writer, event):
                    return
                terminal_seen = is_terminal_event(event)
        finally:
            if live is not None:
                self.service.unsubscribe(job, live)

    async def _write_event(self, writer, event: dict) -> bool:
        """Write one SSE frame; False means the (chaos) connection died.

        ``serve.slow_loris`` stalls before the frame (a server that
        trickles events); ``serve.conn_drop`` cuts the stream right
        after a frame — the reconnect/resume path in the client is what
        these two exist to exercise.
        """
        action = chaos_fire("serve.slow_loris")
        if action is not None:
            await asyncio.sleep(float(action.get("delay_seconds", 0.2)))
        writer.write(sse_format(event))
        await writer.drain()
        if chaos_fire("serve.conn_drop") is not None:
            return False
        return True
