"""Single-daemon pidfile lock over a cache directory.

The service owns its cache root's journals while it runs: two daemons
journaling the same sweeps into the same ``.repro-cache`` would
interleave appends and double-execute coalesced work.  The lock is a
pidfile created with ``O_CREAT | O_EXCL`` (atomic on POSIX) holding the
daemon's pid; a second daemon finds the file, checks whether that pid
is still alive, and either refuses loudly (live writer) or breaks the
stale lock and takes over (the first daemon was SIGKILLed and its
sweeps resume from their journals).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.common.persistence import persistence

#: Lock file name inside the cache root.
LOCK_NAME = "serve.lock"


class DaemonRunningError(RuntimeError):
    """A live daemon already holds the cache directory."""


def _pid_alive(pid: int) -> bool:
    """Whether *pid* names a live process we could signal."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # alive, owned by someone else
    return True


@persistence(
    persistent=("path",),
    volatile=("held",),
    aka=("daemon_lock",),
    mutators=("acquire", "release"),
)
class DaemonLock:
    """Pidfile lock: at most one live daemon per cache root.

    ``path`` names the on-disk pidfile (it survives a crash — that is
    the point: stale-lock detection is the recovery path); ``held``
    only tracks whether *this* process owns it.
    """

    def __init__(self, root: Path | str, pid: int | None = None) -> None:
        self.root = Path(root)
        self.path = self.root / LOCK_NAME
        self.pid = os.getpid() if pid is None else pid
        self.held = False

    def holder(self) -> int | None:
        """The pid recorded in the lock file, or ``None`` if absent/torn."""
        try:
            return int(self.path.read_text(encoding="utf-8").strip())
        except (OSError, ValueError):
            return None

    def acquire(self) -> "DaemonLock":
        """Take the lock or raise :class:`DaemonRunningError`.

        A stale lock (recorded pid no longer alive, or an unreadable
        file) is broken and re-acquired; losing the re-acquire race to
        another starting daemon surfaces as the same loud error.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        for _ in range(2):
            try:
                fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                holder = self.holder()
                if holder is not None and _pid_alive(holder):
                    raise DaemonRunningError(
                        f"a daemon (pid {holder}) already serves cache "
                        f"directory {self.root} — stop it first, or point "
                        "this one at a different --cache-root"
                    )
                # Stale: the recorded process is gone. Break the lock and
                # retry the exclusive create exactly once.
                try:
                    self.path.unlink()
                except OSError:
                    pass
                continue
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(f"{self.pid}\n")
                handle.flush()
                os.fsync(handle.fileno())
            self.held = True
            return self
        raise DaemonRunningError(
            f"could not acquire {self.path}: lost the lock race to a "
            "concurrently starting daemon"
        )

    def release(self) -> None:
        """Drop the lock (only if this process holds it)."""
        if not self.held:
            return
        if self.holder() == self.pid:
            try:
                self.path.unlink()
            except OSError:
                pass
        self.held = False

    def __enter__(self) -> "DaemonLock":
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()
