"""Versioned JSON wire format for the simulation service.

Every body that crosses the client/server boundary — submit requests,
job descriptors, progress events, result envelopes, error documents —
is a plain dict carrying ``schema_version`` and is serialized through
:func:`wire_encode`: canonical JSON with sorted keys and no incidental
whitespace.  Two servers (or one server asked twice) answering the same
question therefore produce byte-identical bodies, which is what the CI
smoke job and the coalescing tests ``cmp`` against.

This module is on the determinism-lint path (rules D0–D2 cover it like
the spec-hash code): nothing here may consult wall clocks, entropy or
unordered iteration whose order can escape into a payload.  Timing
lives in the explicitly non-stable ``"timing"`` key that
:func:`stable_result_body` strips.
"""

from __future__ import annotations

import json
from typing import Any

#: Wire schema version; bump on any incompatible body change.
SCHEMA_VERSION = 1

#: Job lifecycle states, in order; ``deadline`` is the terminal state of
#: a job that exceeded its wall-clock budget.
JOB_STATES = ("queued", "running", "done", "failed", "deadline")

#: Event kinds a watcher can receive; ``done``/``failed``/``deadline``
#: are terminal.  ``chaos`` reports injected-fault activity on a job.
EVENT_KINDS = (
    "queued",
    "started",
    "progress",
    "chaos",
    "done",
    "failed",
    "deadline",
)

#: Request kinds ``POST /v1/submit`` accepts.
SUBMIT_KINDS = ("specs", "evaluate")


class ProtocolError(ValueError):
    """A body that does not follow the wire schema."""


def wire_encode(body: dict) -> bytes:
    """The one serialization for wire bodies: sorted keys, compact."""
    return (json.dumps(body, sort_keys=True, separators=(",", ":")) + "\n").encode()


def wire_decode(data: bytes | str) -> dict:
    """Parse a wire body and check its schema version."""
    try:
        body = json.loads(data)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"body is not JSON: {exc}") from exc
    if not isinstance(body, dict):
        raise ProtocolError(f"body must be an object, got {type(body).__name__}")
    version = body.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ProtocolError(
            f"wire schema {version!r} is not the supported {SCHEMA_VERSION!r}"
        )
    return body


def _stamp(body: dict) -> dict:
    body["schema_version"] = SCHEMA_VERSION
    return body


# ---------------------------------------------------------------------------
# request / response bodies
# ---------------------------------------------------------------------------


def submit_body(
    kind: str,
    client: str = "anonymous",
    priority: int = 0,
    specs: list[dict] | None = None,
    params: dict | None = None,
) -> dict:
    """A ``POST /v1/submit`` request body.

    * ``kind="specs"`` — ``specs`` is a list of RunSpec dicts, executed
      verbatim; the result maps spec hash to payload.
    * ``kind="evaluate"`` — ``params`` carries ``length``/``seed`` (and
      optionally ``workloads``); the server expands the Figure 5 matrix
      and the result is the full ``BENCH_fig5.json`` document.
    """
    if kind not in SUBMIT_KINDS:
        raise ProtocolError(f"unknown submit kind {kind!r}; choose from {SUBMIT_KINDS}")
    return _stamp(
        {
            "kind": kind,
            "client": client,
            "priority": int(priority),
            "specs": list(specs or []),
            "params": dict(params or {}),
        }
    )


def validate_submit(body: dict) -> dict:
    """Check a decoded submit body; returns it normalized."""
    kind = body.get("kind")
    if kind not in SUBMIT_KINDS:
        raise ProtocolError(f"unknown submit kind {kind!r}; choose from {SUBMIT_KINDS}")
    client = body.get("client") or "anonymous"
    if not isinstance(client, str) or len(client) > 128:
        raise ProtocolError("client must be a short string")
    specs = body.get("specs") or []
    if kind == "specs" and not specs:
        raise ProtocolError("kind 'specs' needs a non-empty specs list")
    if not isinstance(specs, list) or not all(isinstance(s, dict) for s in specs):
        raise ProtocolError("specs must be a list of RunSpec dicts")
    params = body.get("params") or {}
    if not isinstance(params, dict):
        raise ProtocolError("params must be an object")
    return submit_body(
        kind, client=client, priority=body.get("priority", 0),
        specs=specs, params=params,
    )


def job_body(
    job_id: str,
    key: str,
    state: str,
    kind: str,
    total: int,
    done: int = 0,
    executed: int = 0,
    cache_hits: int = 0,
    journal_hits: int = 0,
    coalesced: int = 0,
    shard: int = 0,
    retried: int = 0,
    error: str = "",
) -> dict:
    """The job descriptor returned by submit and ``GET /v1/jobs/<id>``."""
    if state not in JOB_STATES:
        raise ProtocolError(f"unknown job state {state!r}")
    body = {
        "job_id": job_id,
        "key": key,
        "state": state,
        "kind": kind,
        "total": total,
        "done": done,
        "executed": executed,
        "cache_hits": cache_hits,
        "journal_hits": journal_hits,
        "coalesced": coalesced,
        "shard": shard,
        "retried": retried,
    }
    if error:
        body["error"] = error
    return _stamp(body)


def event_body(kind: str, job_id: str, seq: int, data: dict) -> dict:
    """One streamed progress event (``seq`` orders events within a job)."""
    if kind not in EVENT_KINDS:
        raise ProtocolError(f"unknown event kind {kind!r}")
    return _stamp({"event": kind, "job_id": job_id, "seq": int(seq), "data": data})


def is_terminal_event(event: dict) -> bool:
    """Whether this event ends a watch stream."""
    return event.get("event") in ("done", "failed", "deadline")


def error_body(status: int, message: str) -> dict:
    """An error document; ``status`` mirrors the HTTP status code."""
    return _stamp({"error": message, "status": int(status)})


def stable_result_body(body: dict) -> dict:
    """The byte-stable part of a result envelope.

    Drops the ``timing`` key (wall-clock observations) so that two
    servers answering the same job compare equal byte for byte.
    """
    return {k: v for k, v in body.items() if k != "timing"}


# ---------------------------------------------------------------------------
# server-sent events framing
# ---------------------------------------------------------------------------


def sse_format(event: dict) -> bytes:
    """Frame one event dict for a ``text/event-stream`` response.

    The ``event:`` field names the kind (so generic SSE consumers can
    dispatch) and ``data:`` carries the canonical JSON body.
    """
    name = event.get("event", "message")
    payload = wire_encode(event).decode().rstrip("\n")
    return f"event: {name}\ndata: {payload}\n\n".encode()


def sse_parse(stream) -> Any:
    """Yield event dicts from an iterable of ``text/event-stream`` lines.

    Accepts ``bytes`` or ``str`` lines (trailing newlines optional) and
    tolerates comment/keepalive lines (leading ``:``).
    """
    data_lines: list[str] = []
    for raw in stream:
        line = raw.decode() if isinstance(raw, (bytes, bytearray)) else raw
        line = line.rstrip("\r\n")
        if not line:
            if data_lines:
                yield wire_decode("\n".join(data_lines))
                data_lines = []
            continue
        if line.startswith(":"):
            continue
        if line.startswith("data:"):
            data_lines.append(line[5:].lstrip())
    if data_lines:
        yield wire_decode("\n".join(data_lines))
