"""Sharded priority work queue with per-client quotas.

Jobs are routed to a shard by their content key (the digest of their
sorted spec hashes), so identical work always lands on the same shard —
which is what makes request coalescing race-free: the shard that would
execute a duplicate is the one place the duplicate check happens.

Admission control is two-layered and answered at submit time, before
anything is enqueued:

* a **global depth bound** (``max_depth``) sheds load when the whole
  queue is full (HTTP 503 at the wire);
* a **per-client quota** (``quota``) on queued+running jobs keeps one
  greedy client from starving the fleet (HTTP 429 at the wire).

Within a shard, jobs pop lowest ``priority`` first (0 is the default;
negative jumps the queue), ties in submission order.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field


class QuotaExceededError(RuntimeError):
    """The submitting client is over its queued+running job quota."""


class QueueFullError(RuntimeError):
    """The queue as a whole is at its admission-control depth bound."""


@dataclass(order=True)
class _Entry:
    priority: int
    seq: int
    job: object = field(compare=False)


class ShardedQueue:
    """Priority heaps sharded by job key, with quota accounting.

    The queue tracks *charges*: a client is charged at admission and
    credited when its job reaches a terminal state (not merely when it
    is popped — a running job still occupies its client's quota).
    Coalesced submits are never charged; they piggyback on the job that
    already holds the charge.
    """

    def __init__(self, shards: int = 4, quota: int = 4, max_depth: int = 64) -> None:
        if shards < 1:
            raise ValueError("need at least one shard")
        self.shards = shards
        self.quota = quota
        self.max_depth = max_depth
        self._heaps: list[list[_Entry]] = [[] for _ in range(shards)]
        self._seq = 0
        #: client -> queued+running job count.
        self.charges: dict[str, int] = {}
        #: jobs admitted but not yet credited back.
        self.in_flight = 0

    def shard_of(self, key: str) -> int:
        """The shard a content key routes to (stable across processes)."""
        return int(key[:8], 16) % self.shards

    def depth(self, shard: int | None = None) -> int:
        """Queued entries, in one shard or in total."""
        if shard is not None:
            return len(self._heaps[shard])
        return sum(len(h) for h in self._heaps)

    def admit(self, client: str) -> None:
        """Check admission for *client* and charge it one job."""
        if self.in_flight >= self.max_depth:
            raise QueueFullError(
                f"queue is at its depth bound ({self.max_depth} jobs in "
                "flight); retry later"
            )
        held = self.charges.get(client, 0)
        if held >= self.quota:
            raise QuotaExceededError(
                f"client {client!r} already has {held} job(s) in flight "
                f"(quota {self.quota}); wait for one to finish"
            )
        self.charges[client] = held + 1
        self.in_flight += 1

    def push(self, key: str, priority: int, job) -> int:
        """Enqueue an admitted job; returns the shard it landed on."""
        shard = self.shard_of(key)
        self._seq += 1
        heapq.heappush(self._heaps[shard], _Entry(priority, self._seq, job))
        return shard

    def pop(self, shard: int):
        """The highest-priority job of one shard, or ``None`` when idle."""
        heap = self._heaps[shard]
        if not heap:
            return None
        return heapq.heappop(heap).job

    def credit(self, client: str) -> None:
        """Return one charge when a client's job reaches a terminal state."""
        held = self.charges.get(client, 0)
        if held <= 1:
            self.charges.pop(client, None)
        else:
            self.charges[client] = held - 1
        self.in_flight = max(0, self.in_flight - 1)

    def snapshot(self) -> dict:
        """Queue state for ``GET /v1/status`` (deterministically ordered)."""
        return {
            "shards": self.shards,
            "quota": self.quota,
            "max_depth": self.max_depth,
            "in_flight": self.in_flight,
            "depths": [len(h) for h in self._heaps],
            "clients": {c: n for c, n in sorted(self.charges.items())},
        }
