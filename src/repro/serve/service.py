"""The long-lived simulation service fronting the run orchestrator.

One :class:`SimulationService` owns a shared :class:`ResultCache` and a
:class:`ShardedQueue`; every accepted job flows

    submit → admission (quota/depth) → coalesce check → shard queue
           → shard worker → cache → journal → worker pool → events

Coalescing happens on the job's **content key** — the digest of its
sorted spec hashes, the same digest that names its journal — so N
clients asking for identical work while it is queued or running share
one execution and receive byte-identical results.  A submit that
arrives *after* the job finished starts a fresh execution, which then
resolves entirely from the warm cache (``0 executed``).

Execution itself runs in a worker thread per shard
(``asyncio.to_thread``): the orchestrator is synchronous and its
process pool must not block the event loop that is streaming progress
to watchers.  Progress callbacks hop back onto the loop via
``call_soon_threadsafe``.
"""

from __future__ import annotations

import asyncio
import hashlib
import time
from dataclasses import dataclass, field

from repro.chaos.inject import active as chaos_active
from repro.chaos.inject import chaos_fire
from repro.chaos.plan import ChaosError
from repro.runs.cache import ResultCache, code_fingerprint
from repro.runs.journal import RunJournal
from repro.runs.orchestrate import run_specs, sweep_journal_path
from repro.runs.spec import RunSpec, canonical_json, simulation_spec
from repro.serve.breaker import CircuitBreaker, ServiceDegradedError
from repro.serve.protocol import (
    ProtocolError,
    event_body,
    job_body,
    validate_submit,
)
from repro.serve.queue import ShardedQueue

#: Finished jobs kept around for late ``result``/``events`` fetches.
HISTORY_LIMIT = 256


def job_key(specs: list[RunSpec]) -> str:
    """Content key of a job: digest of its sorted spec hashes.

    Matches the digest :func:`sweep_journal_path` folds into the journal
    name, so a job's identity, its coalescing unit and its resume unit
    are all the same thing.
    """
    return hashlib.sha256(
        canonical_json(sorted(s.spec_hash() for s in specs)).encode()
    ).hexdigest()


@dataclass
class Job:
    """One admitted unit of work and everything its watchers can see."""

    job_id: str
    key: str
    kind: str
    client: str
    priority: int
    specs: list[RunSpec]
    params: dict
    shard: int = 0
    state: str = "queued"
    done: int = 0
    executed: int = 0
    cache_hits: int = 0
    journal_hits: int = 0
    failed: int = 0
    coalesced: int = 0
    retried: int = 0
    #: This job is the breaker's half-open probe.
    probe: bool = False
    error: str = ""
    seq: int = 0
    #: Full event history (replayed to late watchers).
    events: list[dict] = field(default_factory=list)
    #: Live watcher queues.
    subscribers: list[asyncio.Queue] = field(default_factory=list)
    #: Terminal result envelope (set when state is done/failed).
    result: dict | None = None
    timing: dict = field(default_factory=dict)

    @property
    def total(self) -> int:
        return len(self.specs)

    def descriptor(self) -> dict:
        """The wire job body for this job's current state."""
        return job_body(
            self.job_id,
            self.key,
            self.state,
            self.kind,
            self.total,
            done=self.done,
            executed=self.executed,
            cache_hits=self.cache_hits,
            journal_hits=self.journal_hits,
            coalesced=self.coalesced,
            shard=self.shard,
            retried=self.retried,
            error=self.error,
        )


class SimulationService:
    """Queue, coalescing, execution and event fan-out for one daemon."""

    def __init__(
        self,
        cache_root=None,
        shards: int = 2,
        quota: int = 4,
        max_depth: int = 64,
        jobs: int = 1,
        max_generations: int | None = None,
        max_bytes: int | None = None,
        log=None,
        timeout: float | None = None,
        retries: int = 2,
        breaker_threshold: int = 5,
        breaker_cooldown: float = 30.0,
    ) -> None:
        self.cache = ResultCache(cache_root, fingerprint=code_fingerprint())
        self.queue = ShardedQueue(shards=shards, quota=quota, max_depth=max_depth)
        self.jobs_per_run = jobs
        self.max_generations = max_generations
        self.max_bytes = max_bytes
        #: Per-spec execution timeout and supervision retry budget.
        self.exec_timeout = timeout
        self.retries = retries
        self.breaker = CircuitBreaker(
            threshold=breaker_threshold, cooldown=breaker_cooldown
        )
        self.last_error = ""
        self.log = log or (lambda line: None)
        #: key -> queued/running job (the coalescing index).
        self.active: dict[str, Job] = {}
        #: job_id -> job, bounded by HISTORY_LIMIT.
        self.jobs: dict[str, Job] = {}
        self._job_seq = 0
        self._wakeups = [asyncio.Event() for _ in range(shards)]
        self._workers: list[asyncio.Task] = []
        self._stopping = False
        self.started_at = time.monotonic()
        self.totals = {
            "submitted": 0,
            "coalesced": 0,
            "completed": 0,
            "failed": 0,
            "deadline": 0,
        }

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Spawn one consumer task per shard (call from the event loop)."""
        self._workers = [
            asyncio.create_task(self._shard_worker(i), name=f"serve-shard-{i}")
            for i in range(self.queue.shards)
        ]

    async def stop(self) -> None:
        self._stopping = True
        for event in self._wakeups:
            event.set()
        for task in self._workers:
            task.cancel()
        for task in self._workers:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        self._workers = []

    # -- submission ----------------------------------------------------------

    def _expand(self, body: dict) -> tuple[list[RunSpec], dict]:
        if body["kind"] == "specs":
            try:
                specs = [RunSpec.from_dict(d) for d in body["specs"]]
            except (TypeError, ValueError) as exc:
                raise ProtocolError(f"bad spec: {exc}") from exc
            return specs, dict(body["params"])
        params = dict(body["params"])
        from repro.analysis.experiments import FIGURE5_DESIGNS
        from repro.workloads.spec import SPEC_ORDER

        length = int(params.get("length", 4000))
        seed = int(params.get("seed", 1))
        workloads = list(params.get("workloads") or SPEC_ORDER)
        unknown = sorted(set(workloads) - set(SPEC_ORDER))
        if unknown:
            raise ProtocolError(f"unknown workloads: {unknown}")
        specs = [
            simulation_spec(scheme, name, length, seed)
            for name in workloads
            for scheme in FIGURE5_DESIGNS
        ]
        expanded = {"length": length, "seed": seed, "workloads": workloads}
        if "deadline_seconds" in params:
            expanded["deadline_seconds"] = float(params["deadline_seconds"])
        return specs, expanded

    def submit(self, body: dict) -> dict:
        """Admit (or coalesce) one submit body; returns the job descriptor.

        Raises :class:`~repro.serve.protocol.ProtocolError` on a malformed
        body, :class:`~repro.serve.queue.QuotaExceededError` /
        :class:`~repro.serve.queue.QueueFullError` on admission failure,
        and :class:`~repro.serve.breaker.ServiceDegradedError` for a cold
        submission while the execution breaker is open (warm submissions
        — every spec already cached — are served even then).
        """
        body = validate_submit(body)
        specs, params = self._expand(body)
        key = job_key(specs)
        running = self.active.get(key)
        if running is not None:
            running.coalesced += 1
            self.totals["coalesced"] += 1
            self.log(
                f"coalesce {running.job_id} (+{body['client']}, "
                f"{running.coalesced} rider(s))"
            )
            return running.descriptor()
        probe = False
        warm = all(self.cache.contains(s) for s in specs)
        if not warm:
            # Cold work consults the breaker; a warm job never executes
            # anything, so cache-only mode serves it regardless.
            if not self.breaker.allow():
                raise ServiceDegradedError(self.breaker.retry_after())
            probe = self.breaker.state == "half_open"
        self.queue.admit(body["client"])
        self._job_seq += 1
        job = Job(
            job_id=f"{key[:12]}-{self._job_seq}",
            key=key,
            kind=body["kind"],
            client=body["client"],
            priority=body["priority"],
            specs=specs,
            params=params,
        )
        job.probe = probe
        job.shard = self.queue.push(key, job.priority, job)
        self.active[key] = job
        self.jobs[job.job_id] = job
        self._trim_history()
        self.totals["submitted"] += 1
        job.timing["submitted_at"] = time.monotonic()
        self._emit(job, "queued", {"job": job.descriptor()})
        self._wakeups[job.shard].set()
        self.log(
            f"queued {job.job_id} kind={job.kind} client={job.client} "
            f"specs={job.total} shard={job.shard}"
        )
        return job.descriptor()

    def _trim_history(self) -> None:
        while len(self.jobs) > HISTORY_LIMIT:
            for job_id, job in list(self.jobs.items()):
                if job.state in ("done", "failed", "deadline"):
                    del self.jobs[job_id]
                    break
            else:
                return

    # -- events --------------------------------------------------------------

    def _emit(self, job: Job, kind: str, data: dict) -> None:
        job.seq += 1
        event = event_body(kind, job.job_id, job.seq, data)
        job.events.append(event)
        for queue in list(job.subscribers):
            queue.put_nowait(event)

    def subscribe(self, job: Job) -> tuple[list[dict], asyncio.Queue | None]:
        """History so far plus a live queue (``None`` if already terminal)."""
        history = list(job.events)
        if job.state in ("done", "failed", "deadline"):
            return history, None
        queue: asyncio.Queue = asyncio.Queue()
        job.subscribers.append(queue)
        return history, queue

    def unsubscribe(self, job: Job, queue: asyncio.Queue) -> None:
        try:
            job.subscribers.remove(queue)
        except ValueError:
            pass

    # -- execution -----------------------------------------------------------

    async def _shard_worker(self, shard: int) -> None:
        while not self._stopping:
            job = self.queue.pop(shard)
            if job is None:
                self._wakeups[shard].clear()
                await self._wakeups[shard].wait()
                continue
            await self._execute(job)

    async def _execute(self, job: Job) -> None:
        loop = asyncio.get_running_loop()
        job.state = "running"
        job.timing["started_at"] = time.monotonic()
        self._emit(job, "started", {"job": job.descriptor()})
        self.log(f"start {job.job_id} on shard {job.shard}")

        def progress(outcome, done, total):
            # Called from the executor thread: hop onto the loop before
            # touching job state or subscriber queues.
            data = {
                "done": done,
                "total": total,
                "spec_hash": outcome.spec.spec_hash(),
                "label": outcome.spec.describe(),
                "status": outcome.status,
                "source": outcome.source,
                "duration": round(outcome.duration, 6),
            }
            payload = outcome.payload
            if isinstance(payload, dict) and "obs" in payload:
                data["obs_timeline"] = payload["obs"].get("timeline")
            loop.call_soon_threadsafe(self._progress_event, job, data)

        injector = chaos_active()
        fires_before = len(injector.fires) if injector is not None else 0
        deadline = job.params.get("deadline_seconds")
        started = time.perf_counter()
        try:
            if chaos_fire("serve.exec_error") is not None:
                raise ChaosError("serve.exec_error")
            exec_task = asyncio.ensure_future(
                asyncio.to_thread(self._run_job, job, progress)
            )
            if deadline is not None:
                finished, _ = await asyncio.wait(
                    {exec_task}, timeout=float(deadline)
                )
                if not finished:
                    self._deadline(
                        job, float(deadline), exec_task, injector, fires_before
                    )
                    return
            report = await exec_task
        except Exception as exc:  # noqa: BLE001 - daemon must survive any job
            job.state = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
            job.result = self._envelope(job, {"error": job.error})
            self.totals["failed"] += 1
            self.last_error = f"{job.job_id}: {job.error}"
            self.breaker.record_failure()
            self._emit_chaos(job, injector, fires_before)
            self._finish(job, "failed", {"job": job.descriptor()})
            self.log(f"failed {job.job_id}: {job.error}")
            return
        job.timing["exec_seconds"] = round(time.perf_counter() - started, 6)
        job.executed = report.executed
        job.cache_hits = report.cache_hits
        job.journal_hits = report.journal_hits
        job.failed = report.failed
        job.retried = report.retried
        job.done = len(report.outcomes)
        job.state = "done"
        job.result = self._envelope(job, self._result_payload(job, report))
        self.totals["completed"] += 1
        if report.failed > 0:
            self.last_error = f"{job.job_id}: {report.failed} spec(s) failed"
            self.breaker.record_failure()
        elif report.executed > 0 or job.probe:
            # Cache-only successes say nothing about the execution path,
            # so they must not close (or feed) the breaker.
            self.breaker.record_success()
        self._emit_chaos(job, injector, fires_before)
        self._finish(
            job,
            "done",
            {"job": job.descriptor(), "summary": report.summary()},
        )
        self.log(f"done {job.job_id}: {report.summary()}")
        if self.max_generations is not None or self.max_bytes is not None:
            swept = await asyncio.to_thread(
                self.cache.gc,
                False,
                self.max_generations,
                self.max_bytes,
            )
            if swept["removed"]:
                self.log(
                    f"evicted {swept['removed']} entr(y/ies), "
                    f"{swept['reclaimed_bytes']} bytes"
                )

    def _finish(self, job: Job, kind: str, data: dict) -> None:
        self._emit(job, kind, data)
        self.active.pop(job.key, None)
        self.queue.credit(job.client)
        for queue in list(job.subscribers):
            job.subscribers.remove(queue)

    def _deadline(
        self,
        job: Job,
        deadline: float,
        exec_task: asyncio.Task,
        injector,
        fires_before: int,
    ) -> None:
        """Terminate a job that blew its wall-clock budget.

        Watchers get a terminal ``deadline`` event and the client's
        quota slot back immediately — but the job's content key stays in
        ``active`` until the orphaned executor thread actually returns:
        a resubmit that started a *second* executor over the same
        journal would break exactly-once (both would append).  Until
        the orphan is reaped, identical submits coalesce onto this
        (already terminal) job and read its journal-backed result from
        a later resubmit.
        """
        job.state = "deadline"
        job.error = f"deadline of {deadline:.1f}s exceeded"
        job.result = self._envelope(job, {"error": job.error})
        self.totals["deadline"] += 1
        self.last_error = f"{job.job_id}: {job.error}"
        self.breaker.record_failure()
        self._emit_chaos(job, injector, fires_before)
        self._emit(job, "deadline", {"job": job.descriptor()})
        self.queue.credit(job.client)
        for queue in list(job.subscribers):
            job.subscribers.remove(queue)
        exec_task.add_done_callback(lambda task: self._reap_orphan(job, task))
        self.log(f"deadline {job.job_id}: {job.error} (orphan still running)")

    def _reap_orphan(self, job: Job, task: asyncio.Task) -> None:
        """The orphaned executor of a deadlined job finally returned."""
        self.active.pop(job.key, None)
        exc = task.exception() if not task.cancelled() else None
        suffix = f" ({type(exc).__name__}: {exc})" if exc else ""
        self.log(f"orphan {job.job_id} reaped{suffix}")

    def _emit_chaos(self, job: Job, injector, fires_before: int) -> None:
        """Report injected-fault activity observed during this job."""
        if injector is None:
            return
        fires = injector.fires[fires_before:]
        if fires:
            self._emit(job, "chaos", {"fires": fires})

    def _progress_event(self, job: Job, data: dict) -> None:
        # An orphaned executor keeps calling progress after its job went
        # terminal; those late events must not reach (closed) watchers.
        if job.state not in ("queued", "running"):
            return
        job.done = data["done"]
        self._emit(job, "progress", data)

    def _run_job(self, job: Job, progress):
        """Synchronous execution body (runs in the shard's thread)."""
        journal_path = sweep_journal_path(self.cache, f"serve-{job.kind}", job.specs)
        with RunJournal(journal_path, self.cache.fingerprint) as journal:
            return run_specs(
                job.specs,
                jobs=self.jobs_per_run,
                cache=self.cache,
                journal=journal,
                progress=progress,
                timeout=self.exec_timeout,
                retries=self.retries,
            )

    # -- results -------------------------------------------------------------

    def _envelope(self, job: Job, result: dict) -> dict:
        return {
            "schema_version": 1,
            "job": job.descriptor(),
            "result": result,
            "timing": {
                "exec_seconds": job.timing.get("exec_seconds", 0.0),
            },
        }

    def _result_payload(self, job: Job, report) -> dict:
        if job.kind == "evaluate":
            return self._evaluate_document(job, report)
        results = {}
        errors = {}
        for spec in job.specs:
            outcome = report.outcomes[spec.spec_hash()]
            if outcome.ok:
                results[spec.spec_hash()] = outcome.payload
            else:
                errors[spec.spec_hash()] = {
                    "status": outcome.status,
                    "error": outcome.error,
                }
        payload = {"kind": "specs", "results": results}
        if errors:
            payload["errors"] = errors
        return payload

    def _evaluate_document(self, job: Job, report) -> dict:
        from repro.analysis.experiments import FIGURE5_DESIGNS
        from repro.analysis.export import fig5_bench_document, result_from_dict
        from repro.sim.runner import DesignComparison

        report.raise_on_failure()
        by_hash = {s.spec_hash(): s for s in job.specs}
        cells: dict[str, dict] = {}
        for spec_hash, spec in by_hash.items():
            cells.setdefault(spec.workload, {})[spec.scheme] = result_from_dict(
                report.outcomes[spec_hash].payload
            )
        comparisons = {
            name: DesignComparison(
                workload=name,
                results={s: cells[name][s] for s in FIGURE5_DESIGNS},
            )
            for name in job.params["workloads"]
        }
        meta = {
            "length": job.params["length"],
            "seed": job.params["seed"],
            "fingerprint": self.cache.fingerprint,
            "executed": report.executed,
            "cache_hits": report.cache_hits,
            "journal_hits": report.journal_hits,
            "retried": report.retried,
            "served": True,
        }
        return fig5_bench_document(comparisons, meta)

    # -- introspection -------------------------------------------------------

    def job(self, job_id: str) -> Job | None:
        return self.jobs.get(job_id)

    def status(self) -> dict:
        states: dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "schema_version": 1,
            "queue": self.queue.snapshot(),
            "cache": self.cache.status(),
            "jobs": {k: v for k, v in sorted(states.items())},
            "totals": dict(self.totals),
            "breaker": self.breaker.snapshot(),
            "last_error": self.last_error,
            "timing": {
                "uptime_seconds": round(time.monotonic() - self.started_at, 3)
            },
        }

    def health(self) -> dict:
        """Liveness/readiness document for ``/healthz`` and ``/readyz``.

        ``status`` is ``"ready"`` while the breaker admits cold work and
        ``"degraded"`` (cache-only mode) while it is open.
        """
        degraded = self.breaker.state == "open"
        return {
            "schema_version": 1,
            "status": "degraded" if degraded else "ready",
            "breaker": self.breaker.snapshot(),
            "queue_depth": sum(self.queue.snapshot()["depths"]),
            "active_jobs": len(self.active),
            "last_error": self.last_error,
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
        }
