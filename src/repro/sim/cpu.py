"""Trace-driven CPU timing model.

Replaces the paper's gem5 out-of-order x86 core with the standard
trace-driven abstraction: instructions between memory references retire
at ``peak_ipc``; loads stall the core for their latency minus an
out-of-order overlap credit (``mlp_overlap`` — the fraction a real OoO
window would hide); stores retire through a store buffer and only stall
for the blocking work their cache fills and evictions cause (which is
exactly where the secure-NVM designs differ).

Absolute IPC from a model this simple is not meaningful — which is why
the paper's figures, and this reproduction's, normalize every design to
the w/o-CC baseline run on the *same* trace with the *same* core model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.config import SystemConfig
from repro.common.stats import StatGroup
from repro.sim.system import MemoryHierarchy
from repro.sim.trace import READ, Trace


@dataclass(frozen=True)
class CpuResult:
    """Outcome of one trace execution."""

    instructions: int
    cycles: int
    reads: int
    writes: int
    read_stall_cycles: int
    write_stall_cycles: int

    @property
    def ipc(self) -> float:
        """Instructions per cycle."""
        return self.instructions / self.cycles if self.cycles else 0.0


class TraceCPU:
    """Executes a trace against a memory hierarchy."""

    def __init__(
        self,
        config: SystemConfig,
        memory: MemoryHierarchy,
        stats: StatGroup | None = None,
    ) -> None:
        self.config = config
        self.memory = memory
        self._stats = stats if stats is not None else StatGroup("cpu")
        self._level_hits = self._stats.group("served_by")
        #: Monotonic core clock, persistent across :meth:`run` calls so a
        #: warm-up region and the measured region share one timeline with
        #: the memory system's internal clocks.
        self.clock = 0.0
        #: Optional observability bus (see :mod:`repro.obs`): the CPU is
        #: the clock source — it publishes the cycle count once per trace
        #: record so every component's events are stamped consistently.
        self.obs = None
        #: Optional interval sampler (see :mod:`repro.obs.sampler`).
        self.sampler = None

    @property
    def stats(self) -> StatGroup:
        """Execution statistics."""
        return self._stats

    def run(self, trace: Trace) -> CpuResult:
        """Execute *trace* to completion; returns timing totals."""
        peak_ipc = self.config.cpu.peak_ipc
        overlap = self.config.cpu.mlp_overlap
        start_clock = self.clock
        instructions = 0
        reads = writes = 0
        read_stalls = write_stalls = 0
        # Hoisted so the disabled path costs one local None check per
        # record instead of repeated attribute lookups.
        obs = self.obs
        sampler = self.sampler

        for record in trace:
            instructions += record.icount + 1
            self.clock += record.icount / peak_ipc
            now = int(self.clock)
            if obs is not None:
                obs.set_now(now)
            if sampler is not None:
                sampler.maybe_sample(now)
            if record.op == READ:
                reads += 1
                _, latency, level = self.memory.read(now, record.addr)
                if level == "l1":
                    stall = latency
                else:
                    # The OoO window hides part of a longer-latency load.
                    stall = int(latency * (1.0 - overlap))
                read_stalls += stall
            else:
                writes += 1
                stall, level = self.memory.write(now, record.addr)
                write_stalls += stall
            self._level_hits.counter(level).inc()
            self.clock += stall

        cycles = max(1, int(self.clock - start_clock))
        return CpuResult(
            instructions=instructions,
            cycles=cycles,
            reads=reads,
            writes=writes,
            read_stall_cycles=read_stalls,
            write_stall_cycles=write_stalls,
        )
