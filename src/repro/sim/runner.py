"""Full-system simulation driver.

:func:`run_simulation` builds a complete machine — scheme, caches, CPU —
runs one trace on it, and condenses everything the benches need into a
:class:`SimulationResult`: IPC, NVM traffic split by region, epoch and
HMAC-computation counts.  :func:`run_design_comparison` repeats a trace
across several designs and adds the baseline-normalized views the paper's
figures plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.config import SystemConfig
from repro.core.schemes import SCHEME_LABELS, create_scheme
from repro.sim.cpu import TraceCPU
from repro.sim.system import MemoryHierarchy
from repro.sim.trace import Trace

#: Data capacity used for simulation layouts.  The *address map* still has
#: the paper's 16 GB geometry knobs where they matter (12-level tree) when
#: the full capacity is used; runs default to the full device since the
#: image is sparse.
DEFAULT_SIM_CAPACITY = 16 << 30


@dataclass
class SimulationResult:
    """Everything one (scheme, trace) run produced."""

    scheme: str
    workload: str
    instructions: int
    cycles: int
    ipc: float
    nvm_writes: int
    nvm_reads: int
    writes_by_region: dict[str, int] = field(default_factory=dict)
    #: Data-path write-backs the LLC produced (denominator for traffic).
    llc_writebacks: int = 0
    epochs: int = 0
    drains_by_trigger: dict[str, int] = field(default_factory=dict)
    counter_hmacs: int = 0
    data_hmacs: int = 0
    stats: dict[str, float] = field(default_factory=dict)

    @property
    def label(self) -> str:
        """Paper-style display label of the scheme."""
        return SCHEME_LABELS.get(self.scheme, self.scheme)


def run_simulation(
    scheme_name: str,
    trace: Trace,
    config: SystemConfig | None = None,
    data_capacity: int | None = None,
    seed: int | str = 0,
    flush_at_end: bool = True,
    warmup_fraction: float = 0.0,
    obs=None,
) -> SimulationResult:
    """Run one trace on one design and collect the result.

    *warmup_fraction* replays the leading part of the trace to warm the
    caches and metadata structures, then resets every statistic before
    the measured region — the trace-driven analogue of the paper's
    "fast-forwarding to representative regions".

    *obs* is an optional :class:`repro.obs.ObsSession`; when given, the
    event bus (and interval sampler) are wired into the built system and
    the caller reads the captured events/samples off the session after
    the run.  ``None`` (the default) leaves every instrumentation seam
    on its zero-cost path.
    """
    config = config or SystemConfig()
    scheme = create_scheme(
        scheme_name, config, data_capacity or DEFAULT_SIM_CAPACITY, seed
    )
    memory = MemoryHierarchy(config, scheme)
    cpu = TraceCPU(config, memory)
    if obs is not None:
        obs.attach(memory, cpu)

    if not 0.0 <= warmup_fraction < 1.0:
        raise ValueError("warmup_fraction must be in [0, 1)")
    records = trace.records
    split = int(len(records) * warmup_fraction)
    if split:
        cpu.run(Trace(f"{trace.name}:warmup", records[:split]))
        scheme.stats.reset()
        memory.stats.reset()
        if obs is not None:
            obs.reset()
        measured = Trace(trace.name, records[split:])
    else:
        measured = trace

    outcome = cpu.run(measured)
    if flush_at_end:
        memory.flush()
    if obs is not None:
        obs.finish(outcome.cycles)

    drains: dict[str, int] = {}
    epochs = 0
    queue = getattr(scheme, "queue", None)
    if queue is not None:
        drains = queue.drains_by_trigger()
        epochs = queue.total_drains

    return SimulationResult(
        scheme=scheme_name,
        workload=trace.name,
        instructions=outcome.instructions,
        cycles=outcome.cycles,
        ipc=outcome.ipc,
        nvm_writes=scheme.nvm.total_writes,
        nvm_reads=scheme.nvm.total_reads,
        writes_by_region=scheme.nvm.writes_by_region(),
        llc_writebacks=memory.stats.counter("llc_writebacks").value,
        epochs=epochs,
        drains_by_trigger=drains,
        counter_hmacs=scheme.hmac.counter_hmac_count,
        data_hmacs=scheme.hmac.data_hmac_count,
        stats=scheme.stats.as_dict(),
    )


@dataclass
class DesignComparison:
    """One trace run across several designs, normalized to a baseline."""

    workload: str
    results: dict[str, SimulationResult]
    baseline: str = "no_cc"

    def normalized_ipc(self, scheme: str) -> float:
        """IPC relative to the baseline design (Figure 5(a) units)."""
        return self.results[scheme].ipc / self.results[self.baseline].ipc

    def normalized_writes(self, scheme: str) -> float:
        """NVM write traffic relative to the baseline (Figure 5(b) units)."""
        return (
            self.results[scheme].nvm_writes / self.results[self.baseline].nvm_writes
        )


def run_design_comparison(
    trace: Trace,
    schemes: list[str] | None = None,
    config: SystemConfig | None = None,
    data_capacity: int | None = None,
    seed: int | str = 0,
    baseline: str = "no_cc",
    warmup_fraction: float = 0.0,
) -> DesignComparison:
    """Run *trace* on every design in *schemes* (baseline included)."""
    schemes = schemes or ["no_cc", "sc", "osiris_plus", "ccnvm_no_ds", "ccnvm"]
    if baseline not in schemes:
        schemes = [baseline] + schemes
    results = {
        name: run_simulation(
            name, trace, config, data_capacity, seed,
            warmup_fraction=warmup_fraction,
        )
        for name in schemes
    }
    return DesignComparison(workload=trace.name, results=results, baseline=baseline)
