"""The on-chip memory hierarchy in front of a secure-NVM scheme.

Wires the private L1 and shared L2 (both write-back, write-allocate, LRU)
to one :class:`~repro.core.schemes.base.SecureNVMScheme`.  The hierarchy
is functional *and* timed:

* every cache line carries real data bytes, so a value stored through the
  hierarchy round-trips through encryption, write-back, NVM residency and
  authenticated decryption — the integration tests check exact bytes;
* every access reports its latency; dirty L2 victims go through the
  scheme's :meth:`writeback`, whose *blocking* portion (the per-design
  cost the paper's Figure 5(a) measures) is charged to the access that
  caused the eviction.

Stores are modeled as non-blocking (a store buffer hides allocation
latency) except for the blocking write-back work their evictions cause —
which is long enough (hundreds of cycles for the chain-to-root designs)
to overflow any real store buffer, exactly the effect the paper reports.
"""

from __future__ import annotations

from repro.common.address import line_align
from repro.common.config import SystemConfig
from repro.common.constants import CACHE_LINE_SIZE
from repro.common.stats import StatGroup
from repro.core.schemes.base import SecureNVMScheme
from repro.mem.cache import Cache


class MemoryHierarchy:
    """L1 + L2 caches over one secure-NVM scheme."""

    def __init__(
        self,
        config: SystemConfig,
        scheme: SecureNVMScheme,
        stats: StatGroup | None = None,
    ) -> None:
        self.config = config
        self.scheme = scheme
        self._stats = stats if stats is not None else StatGroup("hierarchy")
        self.l1 = Cache(config.l1, self._stats.group("l1"))
        self.l2 = Cache(config.l2, self._stats.group("l2"))
        self._store_seq = 0
        self._demand_misses = self._stats.counter("demand_misses")
        self._writebacks = self._stats.counter("llc_writebacks")

    # -- payload fabrication ---------------------------------------------------------

    def _payload(self, addr: int) -> bytes:
        """Deterministic store payload for trace-driven runs.

        Traces carry no data values; fabricating a unique, recognizable
        payload per store keeps the functional pipeline honest (a stale
        or mis-decrypted line can never masquerade as the right one).
        """
        self._store_seq += 1
        return (
            addr.to_bytes(8, "little")
            + self._store_seq.to_bytes(8, "little")
        ).ljust(CACHE_LINE_SIZE, b"\x5c")

    # -- eviction plumbing -------------------------------------------------------------

    def _writeback_victim(self, now: int, addr: int, data: bytes) -> int:
        self._writebacks.inc()
        blocking = self.scheme.writeback(now, addr, data)
        # The write-back buffer hides part of the eviction's blocking work
        # from the demand access that triggered it — except the portion
        # the scheme marks as unhideable (epoch drains own the WPQ).
        hard = min(blocking, self.scheme.writeback_hard_cycles)
        soft = blocking - hard
        return hard + int(soft * (1.0 - self.config.cpu.writeback_overlap))

    def _fill_l2(self, now: int, addr: int, data: bytes, dirty: bool) -> int:
        """Install a line in L2; returns blocking cycles from evictions."""
        victim = self.l2.fill(addr, data, dirty)
        if victim is not None and victim.dirty:
            return self._writeback_victim(now, victim.addr, bytes(victim.data))
        return 0

    def _fill_l1(self, now: int, addr: int, data: bytes, dirty: bool) -> int:
        """Install a line in L1; dirty victims cascade into L2."""
        victim = self.l1.fill(addr, data, dirty)
        if victim is not None and victim.dirty:
            return self._fill_l2(now, victim.addr, bytes(victim.data), True)
        return 0

    # -- the CPU-facing interface ---------------------------------------------------------

    def read(self, now: int, addr: int) -> tuple[bytes, int, str]:
        """Load one line; returns (data, latency cycles, serving level)."""
        addr = line_align(addr)
        t = now + self.config.l1.hit_latency
        line = self.l1.access(addr)
        if line is not None:
            return bytes(line.data), t - now, "l1"

        t += self.config.l2.hit_latency
        line = self.l2.access(addr)
        if line is not None:
            data = bytes(line.data)
            t += self._fill_l1(t, addr, data, dirty=False)
            return data, t - now, "l2"

        self._demand_misses.inc()
        data, done = self.scheme.read(t, addr)
        t = done
        t += self._fill_l2(t, addr, data, dirty=False)
        t += self._fill_l1(t, addr, data, dirty=False)
        return data, t - now, "mem"

    def write(self, now: int, addr: int, data: bytes | None = None) -> tuple[int, str]:
        """Store one line; returns (blocking cycles, serving level).

        Write-allocate with fetch-on-write-miss; the fetch itself is
        hidden by the store buffer, so only eviction-induced blocking and
        the L1 access are charged to the core.
        """
        addr = line_align(addr)
        if data is None:
            data = self._payload(addr)
        if len(data) != CACHE_LINE_SIZE:
            raise ValueError("stores write whole cache lines in this model")

        blocking = self.config.l1.hit_latency
        line = self.l1.access(addr)
        if line is not None:
            line.data = data
            line.dirty = True
            return blocking, "l1"

        line = self.l2.access(addr)
        if line is not None:
            blocking += self._fill_l1(now + blocking, addr, data, dirty=True)
            return blocking, "l2"

        self._demand_misses.inc()
        # Fetch-on-write-miss: consumes memory bandwidth but the store
        # buffer hides its latency from the core.
        self.scheme.read(now + blocking, addr)
        blocking += self._fill_l2(now + blocking, addr, data, dirty=False)
        blocking += self._fill_l1(now + blocking, addr, data, dirty=True)
        return blocking, "mem"

    def persist_line(self, now: int, addr: int) -> int:
        """Write one dirty line back to NVM without evicting it (clwb).

        The line stays cached (clean); returns the blocking cycles.  This
        is the primitive persistent-memory software builds durability
        points from.
        """
        addr = line_align(addr)
        line = self.l1.probe(addr)
        if line is not None and line.dirty:
            data = bytes(line.data)
            line.dirty = False
            l2_line = self.l2.probe(addr)
            if l2_line is not None:
                l2_line.data = data
                l2_line.dirty = False
            return self._writeback_victim(now, addr, data)
        line = self.l2.probe(addr)
        if line is not None and line.dirty:
            data = bytes(line.data)
            line.dirty = False
            return self._writeback_victim(now, addr, data)
        return 0

    # -- lifecycle ----------------------------------------------------------------------------

    def flush(self) -> None:
        """Write every dirty line back and commit the scheme's state."""
        now = self.scheme.busy_until
        for line in list(self.l1.dirty_lines()):
            self._fill_l2(now, line.addr, bytes(line.data), True)
            self.l1.clean(line.addr)
        for line in list(self.l2.dirty_lines()):
            self._writeback_victim(now, line.addr, bytes(line.data))
            self.l2.clean(line.addr)
        self.scheme.flush()

    def crash(self) -> None:
        """Power failure: all cache contents vanish, the scheme crashes."""
        self.l1.drop_all()
        self.l2.drop_all()
        self.scheme.crash()

    @property
    def stats(self) -> StatGroup:
        """Cache-hierarchy statistics."""
        return self._stats
