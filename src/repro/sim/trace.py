"""Memory-reference traces.

A trace is the stream of loads and stores a program issues, with the
amount of non-memory work between them: each :class:`TraceRecord` carries
the operation, the (byte) address, and ``icount`` — how many instructions
retire between the previous memory reference and this one.  This is the
standard trace-driven substitute for the paper's gem5 execution of SPEC
CPU2006 regions: cache hits/misses, write-back streams and security
metadata behaviour all derive from the reference stream, while ``icount``
sets the compute/memory balance that turns stall cycles into IPC deltas.

Traces are plain Python sequences so generators can build them lazily;
:class:`Trace` adds naming, counting and a simple text serialization used
by the example scripts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

READ = "R"
WRITE = "W"


@dataclass(frozen=True, slots=True)
class TraceRecord:
    """One memory reference."""

    op: str
    addr: int
    icount: int

    def __post_init__(self) -> None:
        if self.op not in (READ, WRITE):
            raise ValueError(f"unknown op {self.op!r}")
        if self.addr < 0:
            raise ValueError("negative address")
        if self.icount < 0:
            raise ValueError("negative instruction count")


class Trace:
    """A named sequence of memory references."""

    def __init__(self, name: str, records: Iterable[TraceRecord]) -> None:
        self.name = name
        self.records: list[TraceRecord] = list(records)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __getitem__(self, index: int) -> TraceRecord:
        return self.records[index]

    @property
    def instructions(self) -> int:
        """Total instructions the trace represents (memory ops included)."""
        return sum(r.icount for r in self.records) + len(self.records)

    @property
    def write_fraction(self) -> float:
        """Fraction of references that are stores."""
        if not self.records:
            return 0.0
        return sum(1 for r in self.records if r.op == WRITE) / len(self.records)

    def footprint(self) -> int:
        """Number of distinct cache lines touched."""
        return len({r.addr >> 6 for r in self.records})

    # -- text serialization ----------------------------------------------------

    def dump(self, path: str) -> None:
        """Write the trace as ``op addr icount`` lines."""
        with open(path, "w") as f:
            f.write(f"# trace {self.name}\n")
            for r in self.records:
                f.write(f"{r.op} {r.addr:#x} {r.icount}\n")

    @classmethod
    def from_lackey(cls, path: str, name: str | None = None) -> "Trace":
        """Import a Valgrind Lackey trace (``valgrind --tool=lackey --trace-mem=yes``).

        Lackey emits one line per event::

            I  04000000,4      instruction fetch (counts toward icount)
             L 04016b80,8      data load
             S 04016b88,8      data store
             M 04016b90,4      modify (load + store)

        Instruction fetches between memory references become the next
        record's ``icount``; ``M`` expands to a load followed by a store.
        Unparseable lines are skipped (Lackey mixes in diagnostics).
        """
        records = []
        pending_icount = 0
        with open(path) as f:
            for line in f:
                stripped = line.strip()
                if not stripped or "," not in stripped:
                    continue
                kind = stripped.split()[0]
                if kind not in ("I", "L", "S", "M"):
                    continue
                try:
                    addr = int(stripped.split()[1].split(",")[0], 16)
                except (IndexError, ValueError):
                    continue
                if kind == "I":
                    pending_icount += 1
                    continue
                if kind in ("L", "M"):
                    records.append(TraceRecord(READ, addr, pending_icount))
                    pending_icount = 0
                if kind in ("S", "M"):
                    records.append(TraceRecord(WRITE, addr, pending_icount))
                    pending_icount = 0
        return cls(name or path, records)

    @classmethod
    def load(cls, path: str, name: str | None = None) -> "Trace":
        """Parse a trace written by :meth:`dump`."""
        records = []
        trace_name = name or path
        with open(path) as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                if line.startswith("#"):
                    if line.startswith("# trace ") and name is None:
                        trace_name = line[len("# trace "):]
                    continue
                op, addr, icount = line.split()
                records.append(TraceRecord(op, int(addr, 0), int(icount)))
        return cls(trace_name, records)
