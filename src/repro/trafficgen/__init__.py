"""repro.trafficgen: the systematic workload frontier.

Three frontends, one contract: every workload the system can run is
described by a small, deterministic, JSON-able **descriptor** that is
folded into the :class:`~repro.runs.spec.RunSpec` hash — so generated
workloads cache, journal, shard and serve exactly like the built-in
Figure-5 profiles do.

* :mod:`repro.trafficgen.ace` — ACE-style bounded enumeration: every
  k-write workload over every address-overlap pattern and every
  flush/fence placement, canonical-form deduped, feeding the crash
  explorer as a standing "every tiny workload x every scheme" campaign.
* :mod:`repro.trafficgen.ingest` — validated, versioned external-trace
  ingestion (CSV/JSONL plus a Valgrind-Lackey adapter), streamed in
  chunks and normalized into a content-addressed trace store.
* :mod:`repro.trafficgen.interleave` — deterministic seeded merging of
  N tenant streams over one shared memory system, with per-tenant
  attribution.
"""

from repro.trafficgen.descriptor import (
    SCHEMA_VERSION,
    build_trace,
    canonical_descriptor,
    descriptor_digest,
    descriptor_label,
    interleave_descriptor,
    profile_descriptor,
    trace_descriptor,
    validate_descriptor,
)
from repro.trafficgen.ingest import TraceFormatError, TraceStore

__all__ = [
    "SCHEMA_VERSION",
    "TraceFormatError",
    "TraceStore",
    "build_trace",
    "canonical_descriptor",
    "descriptor_digest",
    "descriptor_label",
    "interleave_descriptor",
    "profile_descriptor",
    "trace_descriptor",
    "validate_descriptor",
]
