"""ACE-style bounded workload enumeration for the crash explorer.

Following the ACE idea behind CrashMonkey/Silhouette — crash-consistency
bugs are overwhelmingly exposed by *tiny* workloads, so enumerate the
small space exhaustively instead of sampling the large one — this module
generates **every** bounded write workload over three axes:

* ``k`` writes (the workload length);
* the **address-overlap pattern**: which writes touch the same cache
  line.  Concrete addresses are irrelevant to crash consistency; only
  the overlap structure matters, so patterns are equivalence classes of
  surjections ``write -> line`` under line relabeling.  The canonical
  representative is the *restricted growth string* (RGS): position 0 is
  line 0, and each later write either revisits an already-used line or
  introduces the next fresh one.  There are exactly Bell(k) such
  strings, versus k^k raw address assignments — the canonical-form
  dedup collapses every symmetric relabeling to one representative;
* the **flush/fence placement**: after each write the workload either
  does nothing or forces a full epoch drain (``scheme.flush()``), the
  strongest persist barrier every scheme implements — 2^k masks.

Each enumerated workload is named ``ace-k<k>-<rgs>-<fences>`` — a
self-describing crashsim profile string parsed by
:func:`repro.crashsim.workload.record_workload` — and the whole set
feeds the standing crash campaign
(:func:`repro.crashsim.explore.run_campaign`) as an ordinary profile
grid: content-cached, journaled, sharded, gated on zero violations.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

#: Where ACE write streams land (same small page range the SPEC-folded
#: crash workloads use, clear of the oracle's probe page).
ACE_BASE = 0x2000

#: Prefix marking a crashsim profile as an enumerated ACE workload.
PROFILE_PREFIX = "ace-"

#: Largest k the enumerators accept.  Bell(6) * 2^6 = 12,928 workloads
#: is already far beyond what a campaign run wants; the cap exists to
#: catch accidental unbounded requests, not as a meaningful limit.
MAX_K = 6


@dataclass(frozen=True)
class AceWorkload:
    """One canonical bounded workload: k writes, overlap pattern, fences.

    ``pattern`` is the restricted growth string as a digit string
    (``"010"`` = writes 0 and 2 hit one line, write 1 another);
    ``fences`` is a bit string (``fences[i] == "1"`` = full flush after
    write i).
    """

    k: int
    pattern: str
    fences: str

    def addrs(self) -> list[int]:
        """Concrete line addresses of the canonical representative."""
        return [ACE_BASE + int(d) * 64 for d in self.pattern]

    def profile(self) -> str:
        """The self-describing crashsim profile name."""
        return f"ace-k{self.k}-{self.pattern}-{self.fences}"

    def lines(self) -> int:
        """Distinct lines the workload touches."""
        return len(set(self.pattern))


def _check_k(k: int) -> None:
    if not 1 <= k <= MAX_K:
        raise ValueError(f"ace k must be in 1..{MAX_K}, got {k}")


def bell(k: int) -> int:
    """Bell number B(k): set partitions of k items (Bell-triangle row)."""
    _check_k(k)
    row = [1]
    for _ in range(k - 1):
        nxt = [row[-1]]
        for value in row:
            nxt.append(nxt[-1] + value)
        row = nxt
    return row[-1]


def growth_strings(k: int) -> list[str]:
    """All restricted growth strings of length k, lexicographic.

    ``a[0] == 0`` and ``a[i] <= max(a[:i]) + 1`` — the canonical
    labelings of the Bell(k) address-overlap classes.
    """
    _check_k(k)
    strings: list[str] = []

    def extend(prefix: list[int], peak: int) -> None:
        if len(prefix) == k:
            strings.append("".join(map(str, prefix)))
            return
        for digit in range(peak + 2):
            extend(prefix + [digit], max(peak, digit))

    extend([0], 0)
    return strings


def canonical_pattern(pattern) -> str:
    """Canonicalize an address assignment by first-occurrence relabeling.

    Any sequence of hashable "addresses" maps to the RGS of its overlap
    structure: the first distinct address becomes 0, the next 1, ...
    Two assignments canonicalize identically iff one is an address
    relabeling of the other.
    """
    labels: dict = {}
    out = []
    for addr in pattern:
        if addr not in labels:
            labels[addr] = len(labels)
        out.append(labels[addr])
    return "".join(map(str, out))


def raw_workloads(k: int):
    """Every (assignment, fence-mask) pair WITHOUT dedup: k^k * 2^k.

    The brute-force space the canonical enumeration collapses; used by
    the dedup test, not by campaigns.
    """
    _check_k(k)
    for assignment in itertools.product(range(k), repeat=k):
        for mask in range(1 << k):
            fences = format(mask, f"0{k}b")
            yield assignment, fences


def enumerate_ace(k: int) -> list[AceWorkload]:
    """Every canonical bounded workload at k writes: Bell(k) * 2^k.

    Deterministic order: patterns lexicographic, fence masks ascending.
    """
    _check_k(k)
    out = []
    for pattern in growth_strings(k):
        for mask in range(1 << k):
            out.append(AceWorkload(k, pattern, format(mask, f"0{k}b")))
    return out


def raw_count(k: int) -> int:
    """Size of the brute-force space: k^k address maps x 2^k fences."""
    _check_k(k)
    return k**k * (1 << k)


def canonical_count(k: int) -> int:
    """Closed-form size of the deduped space: Bell(k) * 2^k."""
    return bell(k) * (1 << k)


def dedup_ratio(k: int) -> float:
    """Brute-force/canonical ratio (= k^k / Bell(k); 5.4x at k=3)."""
    return raw_count(k) / canonical_count(k)


# ---------------------------------------------------------------------------
# Profile-name round trip (the crashsim wire format)
# ---------------------------------------------------------------------------


def is_ace_profile(name: str) -> bool:
    """True if *name* is an enumerated-workload profile string."""
    return isinstance(name, str) and name.startswith(PROFILE_PREFIX)


def parse_profile(name: str) -> AceWorkload:
    """Parse ``ace-k<k>-<rgs>-<fences>`` back into its workload."""
    parts = name.split("-")
    if len(parts) != 4 or parts[0] != "ace" or not parts[1].startswith("k"):
        raise ValueError(
            f"malformed ace profile {name!r} (want ace-k<k>-<rgs>-<fences>)"
        )
    try:
        k = int(parts[1][1:])
    except ValueError:
        raise ValueError(f"malformed ace profile {name!r}: bad k") from None
    _check_k(k)
    pattern, fences = parts[2], parts[3]
    if len(pattern) != k or not all(c.isdigit() for c in pattern):
        raise ValueError(f"malformed ace profile {name!r}: bad pattern")
    if canonical_pattern(int(c) for c in pattern) != pattern:
        raise ValueError(
            f"malformed ace profile {name!r}: pattern is not a canonical "
            "restricted growth string"
        )
    if len(fences) != k or not all(c in "01" for c in fences):
        raise ValueError(f"malformed ace profile {name!r}: bad fence mask")
    return AceWorkload(k, pattern, fences)


# ---------------------------------------------------------------------------
# The standing campaign driver
# ---------------------------------------------------------------------------


def ace_profiles(k: int) -> list[str]:
    """The profile names of the full k-write enumeration, in order."""
    return [w.profile() for w in enumerate_ace(k)]


def ace_campaign_config(
    k: int,
    schemes: tuple[str, ...] = (),
    seed: int = 7,
    data_capacity: int = 1 << 16,
    spot: int = 1,
):
    """A :class:`~repro.crashsim.explore.CrashCampaignConfig` covering
    every canonical k-write workload on *schemes* (empty = all six).

    Traces are k writes long, so shards=1: the crash-state space of one
    cell is tiny and the grid itself (Bell(k)*2^k profiles x schemes)
    provides the parallelism.
    """
    from repro.crashsim.explore import CrashCampaignConfig

    return CrashCampaignConfig(
        schemes=tuple(schemes),
        profiles=tuple(ace_profiles(k)),
        steps=k,
        window=k,
        seed=seed,
        shards=1,
        data_capacity=data_capacity,
        spot=spot,
    )


def enumeration_stats(k: int) -> dict:
    """Headline numbers for one k: raw/canonical counts and the ratio."""
    return {
        "k": k,
        "raw_workloads": raw_count(k),
        "canonical_workloads": canonical_count(k),
        "overlap_classes": bell(k),
        "fence_placements": 1 << k,
        "dedup_ratio": round(dedup_ratio(k), 3),
    }
