"""The canonical workload descriptor: one schema for every frontend.

A descriptor is a small JSON-able dict that *fully determines* a trace
given ``(length, seed)``.  It travels inside ``RunSpec.params["workload"]``
and is therefore covered by the spec hash — two runs with the same
descriptor, length and seed share a cache entry; any descriptor change
re-keys them.  The rules that make this safe:

* **versioned** — every descriptor carries ``version``; unknown versions
  are rejected, never guessed at;
* **canonical** — :func:`canonical_descriptor` applies defaults and
  sorts everything, so semantically equal descriptors are byte-equal in
  canonical JSON (and hash-equal);
* **content only** — an ingested trace is referenced by its sha256
  digest, never by a path: the descriptor hashes the trace *content*,
  and workers resolve the digest through the trace store at run time.

Three kinds:

``profile``
    a synthetic-generator recipe (the canonical
    :func:`repro.workloads.spec.workload_to_dict` image), covering the
    eight Figure-5 surrogates and arbitrary custom profiles;
``trace``
    an ingested external trace, referenced by digest (see
    :mod:`repro.trafficgen.ingest`);
``interleave``
    N tenant profiles merged by a seeded deterministic policy (see
    :mod:`repro.trafficgen.interleave`).
"""

from __future__ import annotations

import hashlib
from typing import Any, Mapping

from repro.runs.spec import canonical_json
from repro.workloads.spec import (
    SPEC_PROFILES,
    workload_from_dict,
    workload_to_dict,
)

#: Current descriptor schema version.  Bump when a field is added whose
#: default does NOT reproduce the previous behaviour.
SCHEMA_VERSION = 1

#: Descriptor kinds this schema version knows how to build.
DESCRIPTOR_KINDS = ("profile", "trace", "interleave")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(f"invalid workload descriptor: {message}")


def _profile_image(profile) -> dict:
    """Canonical profile image from a name, a SpecProfile or an image.

    Figure-5 surrogate *names* are accepted everywhere a profile can
    appear (a convenience for hand-written descriptors); the canonical
    form always embeds the full image.
    """
    if isinstance(profile, str):
        _require(
            profile in SPEC_PROFILES, f"unknown profile name {profile!r}"
        )
        return workload_to_dict(SPEC_PROFILES[profile])
    if isinstance(profile, Mapping) or profile is None:
        return workload_to_dict(workload_from_dict(profile or {}))
    return workload_to_dict(profile)


# ---------------------------------------------------------------------------
# Constructors
# ---------------------------------------------------------------------------


def profile_descriptor(profile, base: int = 0) -> dict:
    """Descriptor for one synthetic profile.

    *profile* is a Figure-5 surrogate name, a
    :class:`~repro.workloads.spec.SpecProfile`, or a
    :func:`workload_to_dict` image.
    """
    return validate_descriptor(
        {
            "version": SCHEMA_VERSION,
            "kind": "profile",
            "profile": _profile_image(profile),
            "base": base,
        }
    )


def trace_descriptor(
    digest: str, name: str, records: int, source: str = "csv"
) -> dict:
    """Descriptor for an ingested external trace, referenced by digest."""
    return validate_descriptor(
        {
            "version": SCHEMA_VERSION,
            "kind": "trace",
            "digest": digest,
            "name": name,
            "records": records,
            "source": source,
        }
    )


def interleave_descriptor(
    tenants, policy: str = "round_robin", burst: int = 8
) -> dict:
    """Descriptor for N tenant streams merged by a seeded policy.

    *tenants* is a list of ``{"name", "profile", "weight"}`` mappings
    (``profile`` as a name or a :func:`workload_to_dict` image).
    """
    normalized = []
    for tenant in tenants:
        normalized.append(
            {
                "name": tenant["name"],
                "profile": _profile_image(tenant["profile"]),
                "weight": float(tenant.get("weight", 1.0)),
            }
        )
    return validate_descriptor(
        {
            "version": SCHEMA_VERSION,
            "kind": "interleave",
            "policy": policy,
            "burst": burst,
            "tenants": normalized,
        }
    )


# ---------------------------------------------------------------------------
# Validation and canonical form
# ---------------------------------------------------------------------------


def validate_descriptor(desc: Mapping) -> dict:
    """Check one descriptor and return its canonical dict form.

    Raises ``ValueError`` naming the offending field; never returns a
    partially-defaulted descriptor.
    """
    _require(isinstance(desc, Mapping), "must be a mapping")
    version = desc.get("version")
    _require(
        version == SCHEMA_VERSION,
        f"unsupported version {version!r} (this build reads "
        f"version {SCHEMA_VERSION})",
    )
    kind = desc.get("kind")
    _require(
        kind in DESCRIPTOR_KINDS,
        f"unknown kind {kind!r}; choose from {DESCRIPTOR_KINDS}",
    )
    if kind == "profile":
        return _validate_profile(desc)
    if kind == "trace":
        return _validate_trace(desc)
    return _validate_interleave(desc)


_PROFILE_KEYS = {"version", "kind", "profile", "base"}
_TRACE_KEYS = {"version", "kind", "digest", "name", "records", "source"}
_INTERLEAVE_KEYS = {"version", "kind", "policy", "burst", "tenants"}


def _check_keys(desc: Mapping, allowed: set) -> None:
    extra = sorted(set(desc) - allowed)
    _require(not extra, f"unknown fields {extra}")


def _validate_profile(desc: Mapping) -> dict:
    _check_keys(desc, _PROFILE_KEYS)
    profile = _profile_image(desc.get("profile"))
    base = desc.get("base", 0)
    _require(
        isinstance(base, int) and base >= 0, "base must be a non-negative int"
    )
    return {
        "version": SCHEMA_VERSION,
        "kind": "profile",
        "profile": profile,
        "base": base,
    }


def _validate_trace(desc: Mapping) -> dict:
    from repro.trafficgen.ingest import SOURCE_FORMATS

    _check_keys(desc, _TRACE_KEYS)
    digest = desc.get("digest")
    _require(
        isinstance(digest, str)
        and len(digest) == 64
        and all(c in "0123456789abcdef" for c in digest),
        "digest must be a lowercase sha256 hex string",
    )
    name = desc.get("name")
    _require(
        isinstance(name, str) and 0 < len(name) <= 128,
        "name must be a short non-empty string",
    )
    records = desc.get("records")
    _require(
        isinstance(records, int) and records > 0,
        "records must be a positive int",
    )
    source = desc.get("source", "csv")
    _require(
        source in SOURCE_FORMATS,
        f"unknown source format {source!r}; choose from {SOURCE_FORMATS}",
    )
    return {
        "version": SCHEMA_VERSION,
        "kind": "trace",
        "digest": digest,
        "name": name,
        "records": records,
        "source": source,
    }


def _validate_interleave(desc: Mapping) -> dict:
    from repro.trafficgen.interleave import POLICIES

    _check_keys(desc, _INTERLEAVE_KEYS)
    policy = desc.get("policy", "round_robin")
    _require(
        policy in POLICIES, f"unknown policy {policy!r}; choose from {POLICIES}"
    )
    burst = desc.get("burst", 8)
    _require(isinstance(burst, int) and burst >= 1, "burst must be an int >= 1")
    tenants = desc.get("tenants")
    _require(
        isinstance(tenants, list) and len(tenants) >= 2,
        "interleave needs at least 2 tenants",
    )
    names = [t.get("name") for t in tenants]
    _require(
        all(isinstance(n, str) and n for n in names),
        "every tenant needs a non-empty name",
    )
    _require(len(set(names)) == len(names), "tenant names must be unique")
    normalized = []
    for tenant in tenants:
        _check_keys(tenant, {"name", "profile", "weight"})
        weight = tenant.get("weight", 1.0)
        _require(
            isinstance(weight, (int, float)) and weight > 0,
            f"tenant {tenant['name']!r} weight must be positive",
        )
        normalized.append(
            {
                "name": tenant["name"],
                "profile": _profile_image(tenant.get("profile")),
                "weight": float(weight),
            }
        )
    return {
        "version": SCHEMA_VERSION,
        "kind": "interleave",
        "policy": policy,
        "burst": burst,
        "tenants": normalized,
    }


def canonical_descriptor(desc: Mapping) -> dict:
    """Validate and return the canonical form (alias kept for intent)."""
    return validate_descriptor(desc)


def descriptor_digest(desc: Mapping) -> str:
    """sha256 of the canonical JSON — the descriptor's identity."""
    canonical = validate_descriptor(desc)
    return hashlib.sha256(canonical_json(canonical).encode()).hexdigest()


def descriptor_label(desc: Mapping) -> str:
    """Short human label: ``traffic:<kind>:<digest12>``.

    Used as the ``RunSpec.workload`` string for descriptor-driven runs;
    purely cosmetic (the hash covers the full descriptor in params).
    """
    canonical = validate_descriptor(desc)
    return f"traffic:{canonical['kind']}:{descriptor_digest(canonical)[:12]}"


# ---------------------------------------------------------------------------
# Trace construction (the worker-side entry point)
# ---------------------------------------------------------------------------


def build_trace(desc: Mapping, length: int, seed: int, store_root=None):
    """Materialize the descriptor's trace at *length* references.

    This is what :func:`repro.runs.pool._execute_simulation` calls when
    a spec carries a workload descriptor; everything it does is a pure
    function of ``(descriptor, length, seed)`` — plus, for ``trace``
    descriptors, the content-addressed store entry the digest names.
    """
    canonical = validate_descriptor(desc)
    kind = canonical["kind"]
    if kind == "profile":
        profile = workload_from_dict(canonical["profile"])
        return profile.generate(length, seed, base=canonical["base"])
    if kind == "trace":
        from repro.trafficgen.ingest import TraceStore

        store = TraceStore(store_root)
        return store.build_trace(canonical, length)
    from repro.trafficgen.interleave import build_interleaved

    return build_interleaved(canonical, length, seed)[0]


def spec_params(desc: Mapping) -> dict[str, Any]:
    """The ``params`` fragment carrying this descriptor in a RunSpec."""
    return {"workload": validate_descriptor(desc)}
