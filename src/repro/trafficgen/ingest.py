"""External-trace ingestion: validate, normalize, content-address.

The trace schema (version 1) is deliberately tiny — three fields per
reference:

* ``ts`` — a non-decreasing integer timestamp (instruction count or
  cycle; only the *deltas* survive normalization, as per-reference
  ``icount`` gaps);
* ``op`` — whitelisted: ``R``/``W`` (case-insensitive; ``read``/``write``
  accepted as aliases).  Anything else is rejected, never guessed;
* ``addr`` — a non-negative byte address, decimal or ``0x`` hex.

Accepted carriers: **CSV** (header row naming exactly those columns),
**JSONL** (one object per line, same keys), and **Valgrind Lackey**
output (``--trace-mem=yes``; ``I`` lines accumulate the instruction
gaps, ``L``/``S``/``M`` become references — the same convention as
:meth:`repro.sim.trace.Trace.from_lackey`).  gem5-style memory traces
map onto the CSV carrier directly (tick, command, address).

Everything is **streamed**: parsing, validation, normalization and
hashing happen line by line, so a multi-million-reference trace is
ingested in constant memory.  Normalization folds byte addresses onto
line-aligned addresses inside a configurable footprint (preserving the
trace's locality structure mod the footprint) and the canonical
normalized form is written into a content-addressed **trace store**;
the workload descriptor then carries only the sha256 digest, keeping
spec hashes content-true and tiny.

Malformed input raises :class:`TraceFormatError` naming the line number
and the offending field — a structured diagnosis, never a stack trace
from deep inside a parser.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Iterable, Iterator

from repro.common.constants import CACHE_LINE_SIZE
from repro.sim.trace import READ, WRITE, Trace, TraceRecord

#: Trace-schema version understood by this build.
TRACE_SCHEMA_VERSION = 1

#: Carrier formats :meth:`TraceStore.ingest` accepts.
SOURCE_FORMATS = ("csv", "jsonl", "lackey")

#: Required record fields (CSV columns / JSONL keys), in canonical order.
FIELDS = ("ts", "op", "addr")

#: Default footprint external addresses are folded into (matches the
#: largest Figure-5 surrogate).
DEFAULT_FOOTPRINT = 16 << 20

#: Environment override for the trace-store root.
STORE_ENV = "CCNVM_TRAFFIC_STORE"

#: Default store root (relative to the working directory, like
#: ``.repro-cache``).
DEFAULT_STORE = ".repro-traffic"

_OPS = {"R": READ, "W": WRITE, "READ": READ, "WRITE": WRITE}

#: Addresses beyond 48 bits are rejected as corrupt rather than folded.
MAX_ADDR = 1 << 48


class TraceFormatError(ValueError):
    """A malformed external trace, diagnosed down to line and field."""

    def __init__(
        self,
        reason: str,
        *,
        line: int | None = None,
        field: str | None = None,
        path=None,
    ) -> None:
        self.reason = reason
        self.line = line
        self.field = field
        self.path = str(path) if path is not None else None
        where = []
        if self.path:
            where.append(self.path)
        if line is not None:
            where.append(f"line {line}")
        if field is not None:
            where.append(f"field {field!r}")
        prefix = ", ".join(where)
        super().__init__(f"{prefix}: {reason}" if prefix else reason)


# ---------------------------------------------------------------------------
# Field validators
# ---------------------------------------------------------------------------


def _parse_op(raw: str, line: int, path) -> str:
    op = _OPS.get(raw.strip().upper())
    if op is None:
        raise TraceFormatError(
            f"op {raw.strip()!r} is not in the whitelist "
            f"{sorted(set(_OPS))}",
            line=line,
            field="op",
            path=path,
        )
    return op


def _parse_int(raw, line: int, field: str, path) -> int:
    if isinstance(raw, bool):
        raise TraceFormatError(
            f"{raw!r} is not an integer", line=line, field=field, path=path
        )
    if isinstance(raw, int):
        return raw
    text = str(raw).strip()
    try:
        return int(text, 16) if text.lower().startswith("0x") else int(text)
    except ValueError:
        raise TraceFormatError(
            f"{text!r} is not an integer",
            line=line,
            field=field,
            path=path,
        ) from None


def _check_addr(addr: int, line: int, path) -> int:
    if not 0 <= addr < MAX_ADDR:
        raise TraceFormatError(
            f"address {addr:#x} is outside [0, 2^48)",
            line=line,
            field="addr",
            path=path,
        )
    return addr


def _check_ts(ts: int, prev: int | None, line: int, path) -> int:
    if ts < 0:
        raise TraceFormatError(
            "timestamp is negative", line=line, field="ts", path=path
        )
    if prev is not None and ts < prev:
        raise TraceFormatError(
            f"timestamp {ts} goes backwards (previous reference was at "
            f"{prev}); the trace must be time-ordered",
            line=line,
            field="ts",
            path=path,
        )
    return ts


# ---------------------------------------------------------------------------
# Carrier parsers: yield raw (op, addr, gap) per reference, streaming
# ---------------------------------------------------------------------------


def _iter_csv(lines: Iterable[str], path) -> Iterator[tuple[str, int, int]]:
    header: list[str] | None = None
    prev_ts: int | None = None
    for lineno, raw in enumerate(lines, start=1):
        text = raw.strip()
        if not text or text.startswith("#"):
            continue
        cells = [c.strip() for c in text.split(",")]
        if header is None:
            header = [c.lower() for c in cells]
            extra = sorted(set(header) - set(FIELDS))
            if extra:
                raise TraceFormatError(
                    f"unknown columns {extra}",
                    line=lineno,
                    field=extra[0],
                    path=path,
                )
            missing = sorted(set(FIELDS) - set(header))
            if missing:
                raise TraceFormatError(
                    f"missing columns {missing} (the v1 schema needs "
                    f"exactly {list(FIELDS)})",
                    line=lineno,
                    field=missing[0],
                    path=path,
                )
            continue
        if len(cells) != len(header):
            short = len(cells) < len(header)
            field = header[len(cells)] if short else header[-1]
            raise TraceFormatError(
                f"row has {len(cells)} cells, header has {len(header)}"
                + (" (truncated row?)" if short else ""),
                line=lineno,
                field=field,
                path=path,
            )
        row = dict(zip(header, cells))
        ts = _check_ts(
            _parse_int(row["ts"], lineno, "ts", path), prev_ts, lineno, path
        )
        op = _parse_op(row["op"], lineno, path)
        addr = _check_addr(
            _parse_int(row["addr"], lineno, "addr", path), lineno, path
        )
        gap = 0 if prev_ts is None else ts - prev_ts
        prev_ts = ts
        yield op, addr, gap
    if header is None:
        raise TraceFormatError("no header row", line=1, field="ts", path=path)


def _iter_jsonl(lines: Iterable[str], path) -> Iterator[tuple[str, int, int]]:
    prev_ts: int | None = None
    for lineno, raw in enumerate(lines, start=1):
        text = raw.strip()
        if not text:
            continue
        try:
            obj = json.loads(text)
        except json.JSONDecodeError as exc:
            raise TraceFormatError(
                f"invalid JSON ({exc.msg}); truncated line?",
                line=lineno,
                field="record",
                path=path,
            ) from None
        if not isinstance(obj, dict):
            raise TraceFormatError(
                "each line must be one JSON object",
                line=lineno,
                field="record",
                path=path,
            )
        extra = sorted(set(obj) - set(FIELDS))
        if extra:
            raise TraceFormatError(
                f"unknown fields {extra}",
                line=lineno,
                field=extra[0],
                path=path,
            )
        missing = sorted(set(FIELDS) - set(obj))
        if missing:
            raise TraceFormatError(
                f"missing fields {missing}",
                line=lineno,
                field=missing[0],
                path=path,
            )
        ts = _check_ts(
            _parse_int(obj["ts"], lineno, "ts", path), prev_ts, lineno, path
        )
        op = _parse_op(str(obj["op"]), lineno, path)
        addr = _check_addr(
            _parse_int(obj["addr"], lineno, "addr", path), lineno, path
        )
        gap = 0 if prev_ts is None else ts - prev_ts
        prev_ts = ts
        yield op, addr, gap


_LACKEY_OPS = {"L": READ, "S": WRITE, "M": WRITE}


def _iter_lackey(lines: Iterable[str], path) -> Iterator[tuple[str, int, int]]:
    gap = 0
    for lineno, raw in enumerate(lines, start=1):
        text = raw.strip()
        if not text:
            continue
        marker, _, rest = text.partition(" ")
        if marker == "I":
            gap += 1
            continue
        op = _LACKEY_OPS.get(marker)
        if op is None:
            raise TraceFormatError(
                f"marker {marker!r} is not one of I/L/S/M",
                line=lineno,
                field="op",
                path=path,
            )
        addr_text = rest.strip().split(",")[0]
        if not addr_text:
            raise TraceFormatError(
                "reference has no address (truncated line?)",
                line=lineno,
                field="addr",
                path=path,
            )
        try:
            addr = int(addr_text, 16)
        except ValueError:
            raise TraceFormatError(
                f"{addr_text!r} is not a hex address",
                line=lineno,
                field="addr",
                path=path,
            ) from None
        _check_addr(addr, lineno, path)
        yield op, addr, gap
        gap = 0


_PARSERS = {"csv": _iter_csv, "jsonl": _iter_jsonl, "lackey": _iter_lackey}


def parse_records(
    lines: Iterable[str], fmt: str, path=None
) -> Iterator[tuple[str, int, int]]:
    """Stream validated ``(op, addr, gap)`` references from *lines*."""
    if fmt not in SOURCE_FORMATS:
        raise ValueError(
            f"unknown trace format {fmt!r}; choose from {SOURCE_FORMATS}"
        )
    return _PARSERS[fmt](lines, path)


def normalize_addr(addr: int, footprint: int, base: int) -> int:
    """Fold a byte address onto a line inside ``[base, base+footprint)``."""
    lines = footprint // CACHE_LINE_SIZE
    return base + ((addr // CACHE_LINE_SIZE) % lines) * CACHE_LINE_SIZE


# ---------------------------------------------------------------------------
# The content-addressed trace store
# ---------------------------------------------------------------------------


class TraceStore:
    """Normalized external traces, addressed by content digest.

    Layout: ``<root>/<digest>.trace`` holds the canonical normalized
    record lines (``op addr gap``, one per reference); a ``.json``
    sidecar carries ingest metadata.  The digest is the sha256 of the
    ``.trace`` bytes, so the descriptor that references it is pinned to
    the exact normalized content — re-ingesting identical input is a
    no-op, and a store entry can be copied between machines without
    re-keying any spec.
    """

    def __init__(self, root=None) -> None:
        self.root = Path(
            root or os.environ.get(STORE_ENV) or DEFAULT_STORE
        )

    def trace_path(self, digest: str) -> Path:
        return self.root / f"{digest}.trace"

    def meta_path(self, digest: str) -> Path:
        return self.root / f"{digest}.json"

    def ingest(
        self,
        source,
        fmt: str = "csv",
        name: str | None = None,
        footprint: int = DEFAULT_FOOTPRINT,
        base: int = 0,
    ) -> dict:
        """Validate + normalize one external trace file into the store.

        Returns the workload descriptor referencing the stored trace.
        Streaming end to end: one pass over the input, constant memory,
        the digest computed incrementally while writing.
        """
        from repro.trafficgen.descriptor import trace_descriptor

        if footprint < CACHE_LINE_SIZE:
            raise ValueError("footprint must cover at least one line")
        source = Path(source)
        trace_name = name or source.stem
        self.root.mkdir(parents=True, exist_ok=True)
        scratch = self.root / (
            "incoming-"
            + hashlib.sha256(f"{source}:{trace_name}".encode()).hexdigest()[:16]
            + ".tmp"
        )
        digester = hashlib.sha256()
        records = 0
        try:
            with open(source, "r", encoding="utf-8", errors="replace") as fh:
                with open(scratch, "w", encoding="utf-8") as out:
                    for op, addr, gap in parse_records(fh, fmt, path=source):
                        folded = normalize_addr(addr, footprint, base)
                        line = f"{op} {folded} {gap}\n"
                        digester.update(line.encode())
                        out.write(line)
                        records += 1
        except BaseException:
            scratch.unlink(missing_ok=True)
            raise
        if records == 0:
            scratch.unlink(missing_ok=True)
            raise TraceFormatError(
                "trace contains no references", line=1, field="record",
                path=source,
            )
        digest = digester.hexdigest()
        final = self.trace_path(digest)
        if final.exists():
            scratch.unlink(missing_ok=True)
        else:
            os.replace(scratch, final)
        meta = {
            "schema": TRACE_SCHEMA_VERSION,
            "name": trace_name,
            "records": records,
            "source": fmt,
            "footprint": footprint,
            "base": base,
            "digest": digest,
        }
        self.meta_path(digest).write_text(
            json.dumps(meta, sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )
        return trace_descriptor(digest, trace_name, records, source=fmt)

    def records(self, digest: str, limit: int = 0) -> Iterator[TraceRecord]:
        """Stream stored records, wrapping around to reach *limit*.

        ``limit == 0`` streams the file exactly once.  A requested
        length beyond the stored record count cycles the trace — the
        same convention the synthetic generators use for footprints
        smaller than the run length.
        """
        path = self.trace_path(digest)
        if not path.exists():
            raise ValueError(
                f"trace {digest} is not in the store at {self.root} "
                f"(set ${STORE_ENV} or re-ingest the source file)"
            )
        emitted = 0
        while True:
            with open(path, "r", encoding="utf-8") as fh:
                for text in fh:
                    op, addr, gap = text.split()
                    yield TraceRecord(op, int(addr), int(gap))
                    emitted += 1
                    if limit and emitted >= limit:
                        return
            if not limit or emitted == 0:
                return

    def build_trace(self, descriptor: dict, length: int) -> Trace:
        """Materialize a ``trace``-kind descriptor at *length* references."""
        records = list(
            self.records(descriptor["digest"], limit=max(0, length))
        )
        return Trace(descriptor["name"], records)

    def catalog(self) -> list[dict]:
        """Metadata of every stored trace, digest-sorted."""
        if not self.root.is_dir():
            return []
        out = []
        for meta in sorted(self.root.glob("*.json")):
            out.append(json.loads(meta.read_text(encoding="utf-8")))
        return out
