"""Multi-tenant stream interleaving over one shared memory system.

N tenants, each an ordinary synthetic profile, share one simulated
memory system — the consolidation scenario every secure-NVM controller
actually faces, and the one the fixed single-stream profiles never
exercise (tenants destroy each other's metadata locality: counter-line
and tree-node sharing across *different* address regions is exactly
what epoch caching and deferred spreading must survive).

Determinism guarantees:

* every tenant stream is generated with the tenant's own derived seed
  (``seed`` + tenant index), so adding a tenant never perturbs the
  others' streams;
* tenants occupy **disjoint** address ranges — tenant i's base is the
  cumulative line-aligned footprint of tenants 0..i-1 — which is what
  makes per-tenant attribution exact: every NVM line belongs to exactly
  one tenant;
* the merge order is a pure function of ``(descriptor, length, seed)``:
  round-robin is positional, ``weighted`` and ``bursty`` draw from one
  seeded ``random.Random`` whose consumption pattern is fixed by the
  descriptor alone.

The merged trace is byte-identical across serial, pooled and warm-cache
runs — it flows through the same descriptor machinery as every other
workload.
"""

from __future__ import annotations

import random
from typing import Mapping

from repro.common.constants import CACHE_LINE_SIZE
from repro.sim.trace import WRITE, Trace, TraceRecord
from repro.workloads.spec import workload_from_dict

#: Merge policies the descriptor schema admits.
POLICIES = ("round_robin", "weighted", "bursty")


def tenant_bases(tenants) -> list[int]:
    """Disjoint, line-aligned base addresses: cumulative footprints."""
    bases = []
    cursor = 0
    for tenant in tenants:
        bases.append(cursor)
        footprint = tenant["profile"]["footprint"]
        lines = max(1, footprint // CACHE_LINE_SIZE)
        cursor += lines * CACHE_LINE_SIZE
    return bases


def tenant_ranges(desc: Mapping) -> dict[str, tuple[int, int]]:
    """``name -> [base, limit)`` address range of every tenant."""
    tenants = desc["tenants"]
    bases = tenant_bases(tenants)
    out = {}
    for tenant, base in zip(tenants, bases):
        footprint = tenant["profile"]["footprint"]
        lines = max(1, footprint // CACHE_LINE_SIZE)
        out[tenant["name"]] = (base, base + lines * CACHE_LINE_SIZE)
    return out


def _tenant_streams(desc: Mapping, length: int, seed: int) -> list[list]:
    """Each tenant's private stream, long enough to cover any merge."""
    streams = []
    for index, (tenant, base) in enumerate(
        zip(desc["tenants"], tenant_bases(desc["tenants"]))
    ):
        profile = workload_from_dict(tenant["profile"])
        trace = profile.generate(length, seed + index, base=base)
        streams.append(list(trace.records))
    return streams


def _merge_order(desc: Mapping, length: int, seed: int) -> list[int]:
    """The tenant index serving each merged slot, per the policy."""
    tenants = desc["tenants"]
    n = len(tenants)
    policy = desc["policy"]
    if policy == "round_robin":
        return [i % n for i in range(length)]
    rng = random.Random(f"interleave-{policy}-{seed}")
    weights = [t["weight"] for t in tenants]
    if policy == "weighted":
        return rng.choices(range(n), weights=weights, k=length)
    # bursty: a weighted pick of the tenant, then a burst of consecutive
    # references from it — phase-like behaviour with abrupt handoffs.
    order: list[int] = []
    while len(order) < length:
        tenant = rng.choices(range(n), weights=weights, k=1)[0]
        burst = rng.randrange(1, desc["burst"] + 1)
        order.extend([tenant] * burst)
    return order[:length]


def build_interleaved(
    desc: Mapping, length: int, seed: int
) -> tuple[Trace, dict]:
    """Materialize one interleave descriptor.

    Returns ``(trace, attribution)``; the attribution dict maps each
    tenant to its exact share of the merged stream (references, writes,
    distinct lines, address range) plus the slot order's policy echo.
    """
    if length <= 0:
        raise ValueError("interleave length must be positive")
    tenants = desc["tenants"]
    streams = _tenant_streams(desc, length, seed)
    order = _merge_order(desc, length, seed)
    cursors = [0] * len(tenants)
    merged: list[TraceRecord] = []
    per_tenant: list[dict] = [
        {"references": 0, "writes": 0, "lines": set()} for _ in tenants
    ]
    for tenant in order:
        stream = streams[tenant]
        record = stream[cursors[tenant] % len(stream)]
        cursors[tenant] += 1
        merged.append(record)
        stats = per_tenant[tenant]
        stats["references"] += 1
        stats["lines"].add(record.addr)
        if record.op == WRITE:
            stats["writes"] += 1
    ranges = tenant_ranges(desc)
    attribution = {
        "policy": desc["policy"],
        "tenants": {
            tenant["name"]: {
                "weight": tenant["weight"],
                "references": per_tenant[i]["references"],
                "share": round(per_tenant[i]["references"] / length, 4),
                "writes": per_tenant[i]["writes"],
                "distinct_lines": len(per_tenant[i]["lines"]),
                "range": list(ranges[tenant["name"]]),
            }
            for i, tenant in enumerate(tenants)
        },
    }
    name = "+".join(t["name"] for t in tenants)
    return Trace(f"interleave:{name}", merged), attribution


def interleave_attribution(desc: Mapping, length: int, seed: int) -> dict:
    """Just the per-tenant attribution of one merged stream."""
    return build_interleaved(desc, length, seed)[1]


def attribute_events(events, ranges: Mapping[str, tuple[int, int]]) -> dict:
    """Fold an obs event stream into per-tenant NVM-write counts.

    *events* is any iterable of :class:`repro.obs.events.Event`;
    ``nvm.write`` instants carry the written address, and because tenant
    ranges are disjoint every write lands in exactly one bucket (or in
    ``"metadata"`` — counters, tree nodes, journal lines live outside
    every tenant's data range).
    """
    buckets = {name: 0 for name in ranges}
    metadata = 0
    for event in events:
        if event.name != "nvm.write":
            continue
        addr = (event.args or {}).get("addr")
        if addr is None:
            continue
        for name in sorted(ranges):
            low, high = ranges[name]
            if low <= addr < high:
                buckets[name] += 1
                break
        else:
            metadata += 1
    return {"tenants": buckets, "metadata": metadata}
