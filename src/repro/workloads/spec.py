"""SPEC CPU2006-inspired workload profiles.

The paper evaluates eight SPEC CPU2006 benchmarks (Figure 5): leslie3d,
libquantum, gcc, lbm, soplex, hmmer, milc and namd.  The binaries and
their 500M-instruction gem5 checkpoints are not reproducible here, so
each benchmark is replaced by a deterministic synthetic profile tuned to
its published memory behaviour — the properties that actually drive the
figures:

* **memory intensity** (instructions per memory reference + footprint →
  LLC MPKI): decides how much any secure-NVM overhead can matter at all;
* **write share of the reference stream** → LLC write-back rate, the
  multiplier on every per-write-back cost;
* **access pattern** (streaming / strided / random / hot-set): decides
  metadata locality — how often counter lines and tree nodes are shared
  between consecutive write-backs, which is exactly what epoch-based
  caching and deferred spreading exploit.

The qualitative bar positions the paper shows (lbm/libquantum/milc
memory-bound and overhead-sensitive; hmmer/namd cache-resident and nearly
overhead-free) are reproduced; per-benchmark absolute IPC is not a target
(see DESIGN.md, "Known fidelity limits").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.sim.trace import Trace
from repro.workloads import synthetic

MB = 1 << 20
KB = 1 << 10


@dataclass(frozen=True)
class SpecProfile:
    """Generator recipe for one benchmark surrogate."""

    name: str
    pattern: str  # 'stream' | 'strided' | 'uniform' | 'hotspot' | 'chase'
    footprint: int
    write_ratio: float
    mem_gap: int
    #: Extra pattern parameters.
    stride: int = 4 * 64
    hot_fraction: float = 0.1
    hot_probability: float = 0.9
    description: str = ""

    def generate(self, length: int, seed: int = 0, base: int = 0) -> Trace:
        """Build a *length*-reference trace for this profile."""
        common = dict(
            length=length,
            footprint=self.footprint,
            write_ratio=self.write_ratio,
            mem_gap=self.mem_gap,
            base=base,
            seed=seed,
            name=self.name,
        )
        if self.pattern == "stream":
            return synthetic.sequential_stream(**common)
        if self.pattern == "strided":
            return synthetic.strided(stride=self.stride, **common)
        if self.pattern == "uniform":
            return synthetic.random_uniform(**common)
        if self.pattern == "hotspot":
            return synthetic.hotspot(
                hot_fraction=self.hot_fraction,
                hot_probability=self.hot_probability,
                **common,
            )
        if self.pattern == "chase":
            return synthetic.pointer_chase(**common)
        raise ValueError(f"unknown pattern {self.pattern!r}")


#: The eight profiles of Figure 5, in the paper's x-axis order.
SPEC_PROFILES: dict[str, SpecProfile] = {
    "leslie3d": SpecProfile(
        name="leslie3d",
        pattern="strided",
        footprint=8 * MB,
        write_ratio=0.30,
        mem_gap=14,
        stride=2 * 64,
        description="fluid dynamics: strided sweeps over large grids, "
        "memory-bound with a strong write stream",
    ),
    "libquantum": SpecProfile(
        name="libquantum",
        pattern="stream",
        footprint=16 * MB,
        write_ratio=0.15,
        mem_gap=16,
        description="quantum simulation: pure streaming reads over a "
        "gate vector far larger than any cache",
    ),
    "gcc": SpecProfile(
        name="gcc",
        pattern="hotspot",
        footprint=4 * MB,
        write_ratio=0.30,
        mem_gap=22,
        hot_fraction=0.05,
        hot_probability=0.75,
        description="compiler: pointer-rich IR walking, skewed reuse with "
        "a long cold tail",
    ),
    "lbm": SpecProfile(
        name="lbm",
        pattern="stream",
        footprint=16 * MB,
        write_ratio=0.50,
        mem_gap=12,
        description="lattice Boltzmann: the canonical write-intensive "
        "streaming kernel — the worst case for write amplification",
    ),
    "soplex": SpecProfile(
        name="soplex",
        pattern="strided",
        footprint=2 * MB,
        write_ratio=0.25,
        mem_gap=26,
        stride=8 * 64,
        description="LP solver: sparse-matrix strides over a moderate "
        "working set",
    ),
    "hmmer": SpecProfile(
        name="hmmer",
        pattern="hotspot",
        footprint=512 * KB,
        write_ratio=0.40,
        mem_gap=40,
        hot_fraction=0.25,
        hot_probability=0.95,
        description="profile HMM search: compute-heavy, small hot tables, "
        "low MPKI",
    ),
    "milc": SpecProfile(
        name="milc",
        pattern="uniform",
        footprint=12 * MB,
        write_ratio=0.35,
        mem_gap=15,
        description="lattice QCD: scattered su3-matrix accesses, high "
        "MPKI with poor locality",
    ),
    "namd": SpecProfile(
        name="namd",
        pattern="hotspot",
        footprint=256 * KB,
        write_ratio=0.20,
        mem_gap=50,
        hot_fraction=0.5,
        hot_probability=0.95,
        description="molecular dynamics: cache-resident neighbour lists, "
        "the least memory-bound of the suite",
    ),
}

#: Paper x-axis order for the figures.
SPEC_ORDER = [
    "leslie3d",
    "libquantum",
    "gcc",
    "lbm",
    "soplex",
    "hmmer",
    "milc",
    "namd",
]


def workload_to_dict(profile: SpecProfile) -> dict:
    """The one canonical dict image of a workload profile.

    Every field that influences the generated trace is present, in a
    fixed shape — this is what the trafficgen workload descriptor embeds
    (and therefore what the spec hash covers), so it must stay stable:
    adding a generator knob means adding a field with a default that
    reproduces today's behaviour.
    """
    return {
        "name": profile.name,
        "pattern": profile.pattern,
        "footprint": profile.footprint,
        "write_ratio": profile.write_ratio,
        "mem_gap": profile.mem_gap,
        "stride": profile.stride,
        "hot_fraction": profile.hot_fraction,
        "hot_probability": profile.hot_probability,
    }


def workload_from_dict(data: Mapping) -> SpecProfile:
    """Rebuild a :class:`SpecProfile` from :func:`workload_to_dict` output.

    The round trip is exact for every field :func:`workload_to_dict`
    emits (``description`` is presentation-only and not part of the
    recipe).  Unknown keys are rejected rather than ignored, so a
    descriptor written by a newer schema fails loudly here instead of
    silently generating a different trace.
    """
    allowed = {
        "name",
        "pattern",
        "footprint",
        "write_ratio",
        "mem_gap",
        "stride",
        "hot_fraction",
        "hot_probability",
    }
    extra = sorted(set(data) - allowed)
    if extra:
        raise ValueError(f"unknown workload fields {extra}")
    missing = sorted(k for k in ("name", "pattern", "footprint") if k not in data)
    if missing:
        raise ValueError(f"workload dict is missing required fields {missing}")
    return SpecProfile(**dict(data))


def spec_trace(name: str, length: int, seed: int = 0) -> Trace:
    """Generate the surrogate trace for one SPEC benchmark."""
    if name not in SPEC_PROFILES:
        raise ValueError(f"unknown benchmark {name!r}; choose from {SPEC_ORDER}")
    return SPEC_PROFILES[name].generate(length, seed)


def all_spec_traces(length: int, seed: int = 0) -> dict[str, Trace]:
    """Generate every benchmark surrogate at the same length."""
    return {name: spec_trace(name, length, seed) for name in SPEC_ORDER}
