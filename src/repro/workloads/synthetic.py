"""Deterministic synthetic trace generators.

Building blocks for workload construction: streams, strides, uniform
random, hotspot (a cheap Zipf stand-in) and pointer-chasing.  Every
generator takes an explicit seed and produces the same trace for the same
arguments, so benchmark runs are exactly reproducible.

Addresses are line-aligned and confined to ``[base, base + footprint)``;
``icount`` gaps are drawn around ``mem_gap`` (instructions per memory
reference — the compute/memory balance knob that, together with the
footprint, determines how memory-bound a workload is).
"""

from __future__ import annotations

import random

from repro.common.constants import CACHE_LINE_SIZE
from repro.sim.trace import READ, WRITE, Trace, TraceRecord


def _gap(rng: random.Random, mem_gap: int) -> int:
    """Instruction gap around *mem_gap* (±50%, at least 0)."""
    if mem_gap <= 0:
        return 0
    return max(0, int(rng.uniform(0.5, 1.5) * mem_gap))


def _op(rng: random.Random, write_ratio: float) -> str:
    return WRITE if rng.random() < write_ratio else READ


def _check(footprint: int, length: int) -> None:
    if footprint < CACHE_LINE_SIZE:
        raise ValueError("footprint must cover at least one line")
    if length <= 0:
        raise ValueError("trace length must be positive")


def sequential_stream(
    length: int,
    footprint: int,
    write_ratio: float = 0.0,
    mem_gap: int = 4,
    base: int = 0,
    seed: int = 0,
    name: str = "stream",
) -> Trace:
    """Linear sweep through the footprint, wrapping around.

    Models streaming kernels (lbm, libquantum): no temporal reuse beyond
    the wrap, perfect spatial locality.
    """
    _check(footprint, length)
    rng = random.Random(f"stream-{seed}")
    lines = footprint // CACHE_LINE_SIZE
    records = [
        TraceRecord(
            _op(rng, write_ratio),
            base + (i % lines) * CACHE_LINE_SIZE,
            _gap(rng, mem_gap),
        )
        for i in range(length)
    ]
    return Trace(name, records)


def strided(
    length: int,
    footprint: int,
    stride: int = 4 * CACHE_LINE_SIZE,
    write_ratio: float = 0.0,
    mem_gap: int = 4,
    base: int = 0,
    seed: int = 0,
    name: str = "strided",
) -> Trace:
    """Constant-stride sweep (scientific array kernels, leslie3d-like)."""
    _check(footprint, length)
    if stride < CACHE_LINE_SIZE or stride % CACHE_LINE_SIZE:
        raise ValueError("stride must be a positive multiple of the line size")
    rng = random.Random(f"strided-{seed}")
    records = []
    addr = base
    for _ in range(length):
        records.append(TraceRecord(_op(rng, write_ratio), addr, _gap(rng, mem_gap)))
        addr += stride
        if addr >= base + footprint:
            addr = base + (addr - base) % CACHE_LINE_SIZE
    return Trace(name, records)


def random_uniform(
    length: int,
    footprint: int,
    write_ratio: float = 0.0,
    mem_gap: int = 4,
    base: int = 0,
    seed: int = 0,
    name: str = "uniform",
) -> Trace:
    """Uniform random references — worst-case locality (milc-like)."""
    _check(footprint, length)
    rng = random.Random(f"uniform-{seed}")
    lines = footprint // CACHE_LINE_SIZE
    records = [
        TraceRecord(
            _op(rng, write_ratio),
            base + rng.randrange(lines) * CACHE_LINE_SIZE,
            _gap(rng, mem_gap),
        )
        for _ in range(length)
    ]
    return Trace(name, records)


def hotspot(
    length: int,
    footprint: int,
    hot_fraction: float = 0.1,
    hot_probability: float = 0.9,
    write_ratio: float = 0.0,
    mem_gap: int = 4,
    base: int = 0,
    seed: int = 0,
    name: str = "hotspot",
) -> Trace:
    """Skewed references: *hot_probability* of accesses hit the hot set.

    A cheap Zipf surrogate for pointer-rich integer codes (gcc, hmmer):
    strong temporal locality on a small working set plus a cold tail.
    """
    _check(footprint, length)
    if not 0.0 < hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be in (0, 1]")
    rng = random.Random(f"hotspot-{seed}")
    lines = footprint // CACHE_LINE_SIZE
    hot_lines = max(1, int(lines * hot_fraction))
    records = []
    for _ in range(length):
        if rng.random() < hot_probability:
            line = rng.randrange(hot_lines)
        else:
            line = hot_lines + rng.randrange(max(1, lines - hot_lines))
            line = min(line, lines - 1)
        records.append(
            TraceRecord(
                _op(rng, write_ratio),
                base + line * CACHE_LINE_SIZE,
                _gap(rng, mem_gap),
            )
        )
    return Trace(name, records)


def pointer_chase(
    length: int,
    footprint: int,
    write_ratio: float = 0.0,
    mem_gap: int = 8,
    base: int = 0,
    seed: int = 0,
    name: str = "chase",
) -> Trace:
    """Walk a random permutation of the footprint's lines.

    Serialized, cache-hostile dependent loads — the memory-latency-bound
    extreme.
    """
    _check(footprint, length)
    rng = random.Random(f"chase-{seed}")
    lines = list(range(footprint // CACHE_LINE_SIZE))
    rng.shuffle(lines)
    records = []
    position = 0
    for _ in range(length):
        addr = base + lines[position] * CACHE_LINE_SIZE
        records.append(TraceRecord(_op(rng, write_ratio), addr, _gap(rng, mem_gap)))
        position = (position + 1) % len(lines)
    return Trace(name, records)


def interleave(name: str, *traces: Trace, seed: int = 0) -> Trace:
    """Randomly interleave several traces into one (phase mixing)."""
    rng = random.Random(f"interleave-{seed}")
    sources = [list(t.records) for t in traces if len(t)]
    merged: list[TraceRecord] = []
    while sources:
        source = rng.choice(sources)
        merged.append(source.pop(0))
        if not source:
            sources.remove(source)
    return Trace(name, merged)
