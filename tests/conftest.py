"""Shared fixtures and helpers for the test suite.

Tests run on deliberately small devices (64 KB – 1 MB data regions) so
whole-image operations (tree rebuilds, recovery scans) stay fast; the
geometry logic is identical to the paper's 16 GB device, which dedicated
tests cover arithmetically.
"""

from __future__ import annotations

import pytest

from repro.common.config import (
    CacheConfig,
    ControllerConfig,
    EpochConfig,
    NVMConfig,
    SecurityConfig,
    SystemConfig,
)

#: 64 KB data region: 16 pages, 3-level tree (16 -> 4 -> 1).
TINY_CAPACITY = 1 << 16

#: 1 MB data region: 256 pages, 5-level tree.
SMALL_CAPACITY = 1 << 20


def small_config(
    meta_kb: int = 16,
    update_limit: int = 16,
    dirty_queue_entries: int = 32,
    wpq_entries: int = 64,
) -> SystemConfig:
    """A down-scaled system config that still exercises every mechanism.

    Small caches force evictions (and therefore drain trigger 2 and the
    lazy write-back paths) with traces of a few hundred references.
    """
    return SystemConfig(
        l1=CacheConfig(size_bytes=1024, associativity=2, hit_latency=2, name="l1"),
        l2=CacheConfig(size_bytes=4096, associativity=4, hit_latency=20, name="l2"),
        nvm=NVMConfig(capacity_bytes=SMALL_CAPACITY),
        controller=ControllerConfig(wpq_entries=wpq_entries),
        security=SecurityConfig(
            meta_cache=CacheConfig(
                size_bytes=meta_kb * 1024,
                associativity=4,
                hit_latency=32,
                name="meta",
                hashed_sets=True,
            )
        ),
        epoch=EpochConfig(
            dirty_queue_entries=dirty_queue_entries,
            update_limit=update_limit,
        ),
    )


@pytest.fixture
def config():
    """Default down-scaled config."""
    return small_config()


ALL_SCHEMES = ["no_cc", "sc", "osiris_plus", "ccnvm_no_ds", "ccnvm"]
CONSISTENT_SCHEMES = ["sc", "osiris_plus", "ccnvm_no_ds", "ccnvm"]


def payload(tag: int) -> bytes:
    """A distinctive 64 B test payload."""
    return bytes([tag % 256]) * 64
