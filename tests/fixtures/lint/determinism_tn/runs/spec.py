"""True negatives for D0/D1/D2: deterministic twins of every
``determinism_tp`` pattern, plus the documented exemptions."""


def spec_key(params):
    # sort_keys pins the byte order.
    return json.dumps(params, sort_keys=True)


def seeded_stream(seed, steps):
    # A *seeded* generator is the sanctioned randomness (exempt in D0).
    rng = random.Random(f"stream/{seed}")
    return [rng.random() for _ in range(steps)]


def fold_addresses(addrs):
    # Sorting launders the set order before it can escape.
    out = []
    for addr in sorted(set(addrs)):
        out.append(addr)
    return out


def count_unqueued(addrs, queue):
    # Order-insensitive reduction over a set: sum absorbs the order
    # (the drainer's real dedup-count idiom).
    return sum(1 for a in set(addrs) if a not in queue)


def render_report(doc):
    # json.dumps *off* the hashed path would be fine too, but even on
    # it, sort_keys keeps the bytes canonical.
    return json.dumps(doc, indent=2, sort_keys=True)
