"""True positives for D0/D1/D2: this file's path suffix (``runs/spec.py``)
makes every function here a spec-hashed entry point."""


def spec_key(params):
    # D2: dict insertion order leaks into the hashed bytes.
    return json.dumps(params)


def stamp_spec(params):
    # D0, direct: wall clock on a hashed path.
    params["created"] = time.time()
    return params


def jitter(params):
    # D0, two calls deep: the helper chain ends in entropy.
    return _derive(params)


def _derive(params):
    return _entropy() + len(params)


def _entropy():
    return random.random()


def fold_addresses(addrs):
    # D1: set order escapes into the returned list.
    out = []
    for addr in set(addrs):
        out.append(addr)
    return out
