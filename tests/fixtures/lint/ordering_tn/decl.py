"""Ordering-model declarations shared by the true-negative package.

Identical to ``ordering_tp/decl.py`` except every declared mutator
calls the trace hook — the declaration layer itself is clean.
"""


@persistence(
    volatile=("_batch",),
    aka=("wpq",),
    mutators=(
        "write",
        "write_partial",
        "begin_atomic",
        "write_atomic",
        "commit_atomic",
        "begin_combined",
        "end_combined",
    ),
    stores=("write", "write_partial"),
    fences=("commit_atomic",),
)
class FakeWPQ:
    def write(self, addr, data):
        self._trace("write")

    def write_partial(self, addr, offset, data):
        self._trace("write_partial")

    def begin_atomic(self):
        self._fault("wpq.after_start")
        self._trace("begin_atomic")

    def write_atomic(self, addr, data):
        self._trace("write_atomic")

    def commit_atomic(self):
        self._fault("wpq.after_end")
        self._trace("commit_atomic")

    def begin_combined(self):
        self._trace("begin_combined")

    def end_combined(self):
        self._trace("end_combined")

    def _trace(self, kind):
        pass

    def _fault(self, site):
        pass


@persistence(
    persistent=("root_old", "nwb"),
    aka=("tcb",),
    mutators=("commit_root", "count_writeback"),
    fences=("commit_root",),
    grouped=("count_writeback",),
)
class FakeTCB:
    def commit_root(self):
        self.root_old = b""
        self.nwb = 0
        self._fault("tcb.commit_root")
        self._trace("commit_root")

    def count_writeback(self):
        self.nwb = self.nwb + 1
        self._trace("count_writeback")

    def _trace(self, kind):
        pass

    def _fault(self, site):
        pass
