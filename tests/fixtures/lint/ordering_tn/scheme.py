"""True negatives: the corrected twin of every ``ordering_tp`` pattern.

Each seam discharges its ordering obligation on every path — the
analyzer must stay silent on all of P6/P7 here.
"""


@persistence(
    volatile=("_dirty",),
    aka=("scheme",),
    ordered=("_post_writeback", "_update_tree"),
)
class OrderedScheme:
    # Direct fix: the store rides a one-line atomic batch (the PR-4
    # Osiris Plus stop-loss fix, distilled).
    def _post_writeback(self, counter_addr, line):
        self.wpq.begin_atomic()
        self.wpq.write_atomic(counter_addr, line)
        self.wpq.commit_atomic()
        return 0

    # Interprocedural fix: the helper stores, the callee fence orders it
    # before the seam returns.
    def _update_tree(self, now, counter_addr):
        self._persist_counter(counter_addr)
        self._commit()
        return 0

    def _persist_counter(self, counter_addr):
        self.wpq.write(counter_addr, b"counter")

    def _commit(self):
        self.tcb.commit_root()


class BranchFencedScheme(OrderedScheme):
    # Both branches fence before returning — the may-analysis finds no
    # unfenced path.
    def _post_writeback(self, counter_addr, line):
        self.wpq.write(counter_addr, line)
        if line:
            self.wpq.begin_atomic()
            self.wpq.write_atomic(counter_addr, line)
            self.wpq.commit_atomic()
        else:
            self.tcb.commit_root()
        return 0

    # Loop-carried fix: the fence follows the loop's stores.
    def _update_tree(self, now, counter_addr):
        for addr in (counter_addr, counter_addr + 64):
            self.wpq.write(addr, b"node")
        self.tcb.commit_root()
        return 0


class BracketedCounting:
    # The grouped register bump shares the write's combined bracket —
    # directly and through a helper whose every caller is bracketed.
    def writeback(self, addr, data):
        self.wpq.begin_combined()
        self.wpq.write(addr, data)
        self.tcb.count_writeback()
        self._extras()
        self.wpq.end_combined()
        self.tcb.commit_root()

    def _extras(self):
        self.tcb.count_writeback()
