"""True positives for the persist-order dataflow rules.

Every seam below violates P6 (a droppable store may still be pending at
seam exit) or P7 (a grouped op outside its combined bracket, an
unbalanced bracket) in a different control-flow shape.
"""


@persistence(
    volatile=("_dirty",),
    aka=("scheme",),
    ordered=("_post_writeback", "_update_tree"),
)
class LeakyScheme:
    # Direct: the store trails the seam's return with no ordering point.
    def _post_writeback(self, counter_addr, line):
        self.wpq.write(counter_addr, line)
        return 0

    # Interprocedural: the pending store hides one call deep.
    def _update_tree(self, now, counter_addr):
        self._persist_counter(counter_addr)
        return 0

    def _persist_counter(self, counter_addr):
        self.wpq.write(counter_addr, b"counter")


class BranchyScheme(LeakyScheme):
    # Path-sensitive: one branch fences, the other leaks — a
    # may-analysis must flag the unfenced path.
    def _post_writeback(self, counter_addr, line):
        self.wpq.write(counter_addr, line)
        if line:
            self.wpq.begin_atomic()
            self.wpq.write_atomic(counter_addr, line)
            self.wpq.commit_atomic()
        return 0

    # Loop-carried: the fence runs before the loop, the store inside it.
    def _update_tree(self, now, counter_addr):
        self.tcb.commit_root()
        for addr in (counter_addr, counter_addr + 64):
            self.wpq.write(addr, b"node")
        return 0


class UnbracketedCounting:
    # P7: the grouped register bump runs at bracket depth zero and its
    # only caller is also unbracketed.
    def writeback(self, addr, data):
        self.wpq.write(addr, data)
        self._bump()
        self.tcb.commit_root()

    def _bump(self):
        self.tcb.count_writeback()


class UnbalancedGroup:
    # P7: the combined group never closes inside the function.
    def writeback(self, addr, data):
        self.wpq.begin_combined()
        self.wpq.write(addr, data)
        self.tcb.commit_root()
