"""The PR-4 Osiris Plus stop-loss bug, distilled (pre-fix shape).

``_post_writeback`` persists the stop-loss counter with a plain WPQ
write: durable once accepted, but under ADR a later in-flight write can
oust it, so the stored counter may lag by *more* than the N-update
stop-loss bound recovery retries against.  The structural rules have
nothing to object to — the store goes through the sanctioned micro-op,
no batch is split, no volatile state is read — only the P6 dataflow
sees the unfenced store trailing the ordered seam's return.

The fixed shape (a one-line atomic batch) lives in
``ordering_tn/scheme.py::OrderedScheme._post_writeback``.
"""


@persistence(
    volatile=("_dirty",),
    aka=("scheme",),
    ordered=("_post_writeback",),
)
class OsirisStopLoss:
    def _post_writeback(self, now, counter_addr, line, overflowed):
        if overflowed or line.update_count >= self.update_limit:
            # BUG (reverted fix): droppable, nothing orders it.
            self.wpq.write(counter_addr, self.meta.encoded(line))
            self.meta.cache.clean(counter_addr)
            return self.controller.post_write(now)
        return 0
