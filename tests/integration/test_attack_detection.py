"""Attack detection and location — the security matrix of the paper.

Covers the threat model's three integrity attacks (spoofing, splicing,
replay) both at *runtime* (verified loads raise) and *across a crash*
(Section 4.4 recovery detects — and for cc-NVM, locates).  The
comparison the paper leads with is checked explicitly: Osiris Plus only
*detects* a post-crash replay; cc-NVM *locates* tampered data.
"""

import pytest

from repro.core.attacks import Attacker
from repro.core.schemes import create_scheme
from repro.metadata.layout import MerkleNodeId
from repro.metadata.metacache import IntegrityError
from tests.conftest import CONSISTENT_SCHEMES, SMALL_CAPACITY, payload


def machine(scheme, config, seed=0):
    s = create_scheme(scheme, config, SMALL_CAPACITY, seed=seed)
    return s, Attacker(s.nvm)


def write_and_flush(s, addrs):
    t = 0
    for i, addr in enumerate(addrs):
        s.writeback(t, addr, payload(i))
        t += 500
    s.flush()
    return t


class TestRuntimeDetection:
    """On-line verification: attacks caught while the system runs."""

    @pytest.mark.parametrize("scheme", CONSISTENT_SCHEMES + ["no_cc"])
    def test_spoofed_data_detected_on_read(self, scheme, config):
        s, attacker = machine(scheme, config)
        t = write_and_flush(s, [0x1000])
        s.meta.crash()  # drop the meta cache so the read re-verifies
        attacker.spoof_data(0x1000)
        with pytest.raises(IntegrityError):
            s.read(t, 0x1000)

    @pytest.mark.parametrize("scheme", CONSISTENT_SCHEMES)
    def test_spoofed_data_hmac_detected_on_read(self, scheme, config):
        s, attacker = machine(scheme, config)
        t = write_and_flush(s, [0x1000])
        s.meta.crash()
        attacker.spoof_data_hmac(0x1000)
        with pytest.raises(IntegrityError):
            s.read(t, 0x1000)

    @pytest.mark.parametrize("scheme", CONSISTENT_SCHEMES)
    def test_spliced_data_detected_on_read(self, scheme, config):
        s, attacker = machine(scheme, config)
        t = write_and_flush(s, [0x1000, 0x9000])
        s.meta.crash()
        attacker.splice_data(0x1000, 0x9000)
        with pytest.raises(IntegrityError):
            s.read(t, 0x9000)

    @pytest.mark.parametrize("scheme", ["sc", "ccnvm", "ccnvm_no_ds"])
    def test_spoofed_counter_detected_on_fetch(self, scheme, config):
        s, attacker = machine(scheme, config)
        t = write_and_flush(s, [0x1000])
        s.meta.crash()
        attacker.spoof_counter_line(0x1000)
        with pytest.raises(IntegrityError) as exc:
            s.read(t, 0x1000)
        assert exc.value.node == MerkleNodeId(0, 1)  # page 1's leaf

    @pytest.mark.parametrize("scheme", ["sc", "ccnvm", "ccnvm_no_ds"])
    def test_replayed_counter_detected_on_fetch(self, scheme, config):
        s, attacker = machine(scheme, config)
        snap_t = write_and_flush(s, [0x1000])
        snapshot = attacker.record()
        for i in range(3):
            s.writeback(snap_t + i * 500, 0x1000, payload(50 + i))
        s.flush()
        s.meta.crash()
        attacker.replay_counter_line(snapshot, 0x1000)
        with pytest.raises(IntegrityError):
            s.read(snap_t + 10_000, 0x1000)

    def test_untampered_reads_never_raise(self, config):
        s, _ = machine("ccnvm", config)
        t = write_and_flush(s, [0x1000, 0x2000, 0x3000])
        s.meta.crash()
        for addr in (0x1000, 0x2000, 0x3000):
            s.read(t, addr)
            t += 500


class TestPostCrashLocation:
    """Recovery-time detection AND location (cc-NVM's headline)."""

    @pytest.mark.parametrize("scheme", ["ccnvm", "ccnvm_no_ds"])
    def test_spoofed_data_located_by_address(self, scheme, config):
        s, attacker = machine(scheme, config)
        t = 0
        for i in range(30):
            s.writeback(t, 0x2000 + (i % 5) * 4096, payload(i))
            t += 500
        attacker.spoof_data(0x2000)
        s.crash()
        report = s.recover()
        assert not report.success
        located = [f for f in report.findings if f.kind == "data_tampering"]
        assert [f.address for f in located] == [0x2000]
        assert 0x2000 in report.unrecoverable_blocks

    def test_spoofed_hmac_located_by_address(self, config):
        s, attacker = machine("ccnvm", config)
        s.writeback(0, 0x2000, payload(1))
        attacker.spoof_data_hmac(0x2000)
        s.crash()
        report = s.recover()
        assert any(
            f.kind == "data_tampering" and f.address == 0x2000
            for f in report.findings
        )

    def test_spliced_data_located_at_destination(self, config):
        s, attacker = machine("ccnvm", config)
        s.writeback(0, 0x2000, payload(1))
        s.writeback(500, 0xA000, payload(2))
        attacker.splice_data(0x2000, 0xA000)
        s.crash()
        report = s.recover()
        located = {f.address for f in report.findings if f.kind == "data_tampering"}
        assert located == {0xA000}

    def test_tree_replay_located_at_node(self, config):
        s, attacker = machine("ccnvm", config)
        t = write_and_flush(s, [0x2000])
        snapshot = attacker.record()
        s.writeback(t, 0x2000, payload(9))
        s.flush()  # tree advances to a new committed state
        attacker.replay_counter_line(snapshot, 0x2000)
        s.crash()
        report = s.recover()
        assert any(f.kind == "tree_tampering" for f in report.findings)
        assert not report.success

    def test_multiple_attacks_all_located(self, config):
        s, attacker = machine("ccnvm", config)
        addrs = [0x2000, 0x6000, 0xB000]
        t = 0
        for i, addr in enumerate(addrs):
            s.writeback(t, addr, payload(i))
            t += 500
        attacker.spoof_data(0x2000)
        attacker.spoof_data_hmac(0x6000)
        s.crash()
        report = s.recover()
        located = {f.address for f in report.findings if f.kind == "data_tampering"}
        assert located == {0x2000, 0x6000}
        # The untouched block is still recoverable.
        assert 0xB000 not in report.unrecoverable_blocks


class TestDeferredSpreadingReplayWindow:
    """Section 4.3's undetectable-replay window and its Nwb defence."""

    def test_in_epoch_replay_detected_via_nwb(self, config):
        s, attacker = machine("ccnvm", config)
        s.writeback(0, 0x2000, payload(1))
        s.flush()  # commit: NVM tree consistent with ROOTold
        snapshot = attacker.record()
        # New write inside the next (uncommitted) epoch...
        s.writeback(1000, 0x2000, payload(2))
        # ... crash before the drain, with data+HMAC replayed to the
        # committed version: the old tree IS consistent, the old counter
        # DOES match the replayed pair.
        s.crash()
        attacker.replay_data(snapshot, 0x2000)
        report = s.recover()
        assert report.potential_replay_detected
        assert not report.success
        # But it cannot be located: no data_tampering finding names it.
        assert not any(f.kind == "data_tampering" for f in report.findings)
        assert report.nwb == 1
        assert report.total_retries == 0

    def test_no_ds_variant_detects_via_fresh_root(self, config):
        s, attacker = machine("ccnvm_no_ds", config)
        s.writeback(0, 0x2000, payload(1))
        s.flush()
        snapshot = attacker.record()
        s.writeback(1000, 0x2000, payload(2))
        s.crash()
        attacker.replay_data(snapshot, 0x2000)
        report = s.recover()
        # root_new is per-write-back fresh: the rebuilt root mismatches.
        assert report.potential_replay_detected

    def test_clean_crash_passes_nwb_check(self, config):
        s, _ = machine("ccnvm", config)
        s.flush()
        t = 0
        for i in range(7):
            s.writeback(t, 0x2000 + i * 4096, payload(i))
            t += 500
        s.crash()
        report = s.recover()
        assert report.success
        assert not report.potential_replay_detected
        assert report.nwb == report.total_retries


class TestOsirisDetectsButCannotLocate:
    """The comparison in Sections 1/3: Osiris Plus must drop everything."""

    def test_replay_detected_not_located(self, config):
        s, attacker = machine("osiris_plus", config)
        s.writeback(0, 0x2000, payload(1))
        s.flush()
        snapshot = attacker.record()
        s.writeback(1000, 0x2000, payload(2))
        s.crash()
        attacker.replay_data(snapshot, 0x2000)
        report = s.recover()
        assert report.potential_replay_detected
        assert not any(f.kind == "data_tampering" for f in report.findings)
        assert any("dropped" in note for note in report.notes)

    def test_ccnvm_locates_what_osiris_cannot(self, config):
        """Same attack, committed epoch: cc-NVM names the node, Osiris
        only sees a root mismatch."""
        results = {}
        for scheme in ("ccnvm", "osiris_plus"):
            s, attacker = machine(scheme, config, seed=11)
            t = write_and_flush(s, [0x2000])
            snapshot = attacker.record()
            s.writeback(t, 0x2000, payload(9))
            s.flush()
            attacker.replay_counter_line(snapshot, 0x2000)
            attacker.replay_data(snapshot, 0x2000)
            s.crash()
            results[scheme] = s.recover()
        ccnvm, osiris = results["ccnvm"], results["osiris_plus"]
        assert not ccnvm.success and not osiris.success
        # cc-NVM pinpoints the tampered tree node; Osiris has no location.
        assert any(f.node is not None for f in ccnvm.findings)
        assert all(f.node is None and f.address is None for f in osiris.findings)


class TestConfidentiality:
    def test_observed_nvm_carries_no_plaintext(self, config):
        s, attacker = machine("ccnvm", config)
        secret = b"CONFIDENTIAL-" + bytes(range(51))
        s.writeback(0, 0x3000, secret)
        s.flush()
        for addr in s.nvm.touched_lines():
            assert secret not in attacker.observe(addr)

    def test_same_plaintext_twice_yields_distinct_ciphertexts(self, config):
        s, attacker = machine("ccnvm", config)
        s.writeback(0, 0x3000, payload(7))
        first = attacker.observe(0x3000)
        s.writeback(500, 0x3000, payload(7))
        second = attacker.observe(0x3000)
        assert first != second  # counter bumped -> fresh pad
