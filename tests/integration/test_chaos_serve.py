"""Chaos integration tests for the serving stack.

Runs the real service + HTTP listener (the :class:`Harness` from
``test_serve``) with a chaos plan armed in-process, and drives the
failure paths end to end: breaker trip / cache-only degradation /
half-open recovery, SSE connection drops with client-side resume, and
per-job deadlines with orphan reaping.
"""

import time

import pytest

from repro.chaos.inject import install, reset
from repro.chaos.plan import CHAOS_PLAN_ENV, ChaosPlan
from repro.serve.client import ServeClient, ServeError
from tests.integration.test_serve import Harness, drain, evaluate_params


@pytest.fixture(autouse=True)
def clean_injector(monkeypatch):
    monkeypatch.delenv(CHAOS_PLAN_ENV, raising=False)
    reset()
    yield
    reset()


def finish(client, params):
    """Submit one evaluate job and watch it to its terminal event."""
    descriptor = client.submit("evaluate", params=params)
    events = drain(client, descriptor["job_id"])
    return client.job(descriptor["job_id"]), events


class TestBreakerLifecycle:
    def test_trip_degrade_and_half_open_recovery(self, tmp_path):
        # Jobs in submission order hit serve.exec_error visits 2 and 3:
        # warmup succeeds, the next two cold jobs fail and trip the
        # breaker (threshold 2), the post-cooldown probe succeeds.
        install(ChaosPlan(0, {"serve.exec_error": {"hits": [2, 3]}}))
        with Harness(
            tmp_path / "cache",
            breaker_threshold=2,
            breaker_cooldown=1.0,
        ) as h:
            client = h.client()
            warm_params = evaluate_params(length=80)
            client.run("evaluate", params=warm_params)
            assert client.readyz()["status"] == "ready"

            for n, length in enumerate((81, 82), start=1):
                job, events = finish(client, evaluate_params(length=length))
                assert job["state"] == "failed"
                # The injected fault is surfaced on the event stream.
                assert any(e["event"] == "chaos" for e in events)
                assert h.service.breaker.consecutive_failures == n
            assert h.service.breaker.state == "open"

            # Cold work is refused with a retry hint...
            with pytest.raises(ServeError) as refused:
                client.submit("evaluate", params=evaluate_params(length=83))
            assert refused.value.status == 503
            assert "degraded" in refused.value.message
            with pytest.raises(ServeError) as not_ready:
                client.readyz()
            assert not_ready.value.status == 503
            health = client.healthz()  # liveness stays 200 throughout
            assert health["status"] == "degraded"
            assert health["breaker"]["state"] == "open"

            # ...while warm (fully cached) submissions are still served,
            # without feeding the breaker.
            job, _ = finish(client, warm_params)
            assert job["state"] == "done" and job["executed"] == 0
            assert h.service.breaker.state == "open"

            time.sleep(1.2)  # past the cooldown: next cold job = probe
            job, _ = finish(client, evaluate_params(length=83))
            assert job["state"] == "done"
            assert h.service.breaker.state == "closed"
            assert client.readyz()["status"] == "ready"
            snap = h.service.breaker.snapshot()
            assert snap["trips"] == 1 and snap["probes"] == 1


class TestStreamChaos:
    def test_conn_drop_resumes_gaplessly(self, tmp_path):
        # The second SSE frame is written and then the connection is
        # dropped; the stalls around it come from slow_loris.  The
        # client reconnects, the server replays history, and seq-dedup
        # yields one gapless, strictly-ordered stream.
        install(
            ChaosPlan(
                0,
                {
                    "serve.conn_drop": {"hits": [2]},
                    "serve.slow_loris": {
                        "hits": [1, 3],
                        "params": {"delay_seconds": 0.02},
                    },
                },
            )
        )
        with Harness(tmp_path / "cache") as h:
            client = h.client()
            descriptor = client.submit(
                "evaluate", params=evaluate_params(length=80)
            )
            events = drain(client, descriptor["job_id"])
            seqs = [e["seq"] for e in events]
            assert seqs == sorted(set(seqs))  # gapless dedup, no repeats
            assert events[-1]["event"] == "done"

            # A clean rewatch replays the identical history.
            replay = drain(client, descriptor["job_id"])
            assert [e["seq"] for e in replay] == seqs

    def test_watch_budget_exhaustion_raises(self, tmp_path):
        # Every connection is dropped after one frame; a client with a
        # two-reconnect budget gives up with a diagnosable error.
        install(
            ChaosPlan(
                0, {"serve.conn_drop": {"hits": list(range(1, 40))}}
            )
        )
        with Harness(tmp_path / "cache") as h:
            client = ServeClient(
                f"http://127.0.0.1:{h.port}", timeout=30.0, watch_resume=2
            )
            descriptor = client.submit(
                "evaluate", params=evaluate_params(length=80)
            )
            with pytest.raises(ServeError, match="without a terminal event"):
                list(client.watch(descriptor["job_id"]))
            # The server-side job is unaffected by the watcher's fate.
            deadline = time.monotonic() + 60
            while client.job(descriptor["job_id"])["state"] not in (
                "done", "failed"
            ):
                assert time.monotonic() < deadline
                time.sleep(0.1)
            assert client.job(descriptor["job_id"])["state"] == "done"


class TestDeadline:
    def test_deadline_is_terminal_and_orphan_is_reaped(self, tmp_path):
        with Harness(tmp_path / "cache") as h:
            client = h.client()
            params = dict(evaluate_params(length=400), deadline_seconds=0.01)
            descriptor = client.submit("evaluate", params=params)
            events = drain(client, descriptor["job_id"])
            assert events[-1]["event"] == "deadline"
            job = client.job(descriptor["job_id"])
            assert job["state"] == "deadline"
            assert "deadline" in job["error"]
            assert h.service.totals["deadline"] == 1

            # The overrun executor keeps running detached; its key stays
            # claimed (no second writer for the same specs) until it is
            # reaped, after which the slate is clean.
            deadline = time.monotonic() + 60
            while h.service.active:
                assert time.monotonic() < deadline, "orphan never reaped"
                time.sleep(0.1)
            assert client.healthz()["active_jobs"] == 0

            # Resubmitting without a deadline completes; the orphan's
            # finished cells are reused, not recomputed or duplicated.
            job2, _ = finish(client, evaluate_params(length=400))
            assert job2["state"] == "done"
            assert job2["done"] == job2["total"]
            assert job2["executed"] == 0
