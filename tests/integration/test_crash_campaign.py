"""Integration tests for the standing exhaustive crash campaign.

The acceptance surface: a scheme x workload grid of reduce-mode cells
completes with exhaustive coverage (zero sampling fallbacks), a real
class-level saving, no violations and no class mismatches; the summary
is byte-identical across serial, pooled and warm-cache runs; and a
failing shard is isolated instead of poisoning the rest of the grid.
"""

import pytest

from repro.analysis.export import campaign_summary_to_json
from repro.crashsim import CrashCampaignConfig, campaign_specs, run_campaign

SMOKE = CrashCampaignConfig(
    schemes=("ccnvm", "sc"),
    profiles=("hotset", "lbm"),
    steps=48,
    shards=2,
)


@pytest.fixture(scope="module")
def smoke(tmp_path_factory):
    root = tmp_path_factory.mktemp("campaign-cache")
    summary, report = run_campaign(SMOKE, cache_root=root)
    return summary, report, root


class TestCampaignSmoke:
    def test_grid_is_complete(self, smoke):
        summary, _, _ = smoke
        assert sorted(summary["grid"]) == ["ccnvm", "sc"]
        for scheme in summary["grid"]:
            assert sorted(summary["grid"][scheme]) == ["hotset", "lbm"]
        assert summary["failures"] == []
        assert summary["totals"]["cells"] == 4

    def test_exhaustive_coverage_no_fallbacks(self, smoke):
        summary, _, _ = smoke
        assert summary["totals"]["sampling_fallbacks"] == 0
        for scheme, row in summary["grid"].items():
            for profile, cell in row.items():
                assert cell["sampling_fallbacks"] == 0, (scheme, profile)
                # Every materialized state was attributed to a class.
                assert cell["states_covered"] >= cell["states_materialized"]

    def test_classes_reduce_oracle_work(self, smoke):
        summary, _, _ = smoke
        totals = summary["totals"]
        assert totals["classes"] > 0
        assert totals["oracle_calls"] < totals["covered"]
        assert totals["reduction_ratio"] > 1
        for row in summary["grid"].values():
            for cell in row.values():
                assert cell["classes"] == len(cell["class_table"])
                assert sum(
                    c["weight"] for c in cell["class_table"]
                ) == cell["states_covered"]
                for record in cell["class_table"]:
                    assert set(record) == {
                        "fingerprint", "representative", "k", "outcome",
                        "ok", "witnesses", "weight", "evaluated",
                        "spot_checked",
                    }

    def test_no_violations_no_mismatches(self, smoke):
        summary, _, _ = smoke
        assert summary["totals"]["violations"] == 0
        assert summary["totals"]["class_mismatches"] == 0
        for row in summary["grid"].values():
            for cell in row.values():
                assert cell["violations"] == []
                assert cell["class_mismatches"] == []
                assert all(c["ok"] for c in cell["class_table"])

    def test_warm_rerun_is_fully_cached_and_identical(self, smoke):
        summary, report, root = smoke
        assert report.executed == len(campaign_specs(SMOKE))
        warm_summary, warm_report = run_campaign(SMOKE, cache_root=root)
        assert warm_report.executed == 0
        assert warm_report.cache_hits == len(campaign_specs(SMOKE))
        assert campaign_summary_to_json(warm_summary) == campaign_summary_to_json(
            summary
        )

    @pytest.mark.slow
    def test_serial_and_pooled_summaries_byte_identical(self, smoke, tmp_path):
        summary, _, _ = smoke
        pooled, report = run_campaign(SMOKE, jobs=2, cache_root=tmp_path)
        assert report.executed == len(campaign_specs(SMOKE))
        assert campaign_summary_to_json(pooled) == campaign_summary_to_json(
            summary
        )


class TestShardFailureIsolation:
    def test_failed_shard_reported_healthy_cells_merge(self, tmp_path, monkeypatch):
        """One poisoned shard lands in ``failures``; the other cells of
        the grid still merge their results."""
        import repro.crashsim.explore as explore_mod

        real = explore_mod.run_enumerate_cell

        def poisoned(spec):
            if spec.scheme == "sc" and spec.params["shard"] == 0:
                raise RuntimeError("injected shard failure")
            return real(spec)

        monkeypatch.setattr(explore_mod, "run_enumerate_cell", poisoned)
        cfg = CrashCampaignConfig(
            schemes=("ccnvm", "sc"), profiles=("hotset",), steps=24, shards=2
        )
        summary, _ = run_campaign(cfg, cache_root=tmp_path, cache=False)
        assert len(summary["failures"]) == 1
        failure = summary["failures"][0]
        assert (failure["scheme"], failure["profile"], failure["shard"]) == (
            "sc", "hotset", 0,
        )
        assert "injected shard failure" in failure["error"]
        # ccnvm is untouched; sc still carries its surviving shard.
        assert summary["grid"]["ccnvm"]["hotset"]["states_covered"] > 0
        assert summary["grid"]["sc"]["hotset"]["states_covered"] > 0


class TestDefaults:
    def test_default_grid_spans_every_scheme_and_profile(self):
        from repro.crashsim.oracle import ALLOWED_OUTCOMES
        from repro.crashsim.workload import workload_profiles

        cfg = CrashCampaignConfig()
        assert cfg.resolved_schemes() == tuple(sorted(ALLOWED_OUTCOMES))
        assert cfg.resolved_profiles() == tuple(workload_profiles())
        specs = campaign_specs(cfg)
        assert len(specs) == (
            len(cfg.resolved_schemes())
            * len(cfg.resolved_profiles())
            * cfg.shards
        )
        assert all(s.params["reduce"] for s in specs)
        assert all(s.params["budget"] == 1 for s in specs)
