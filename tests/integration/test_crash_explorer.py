"""Integration tests for the systematic crash-state explorer.

The acceptance surface of the subsystem: the smoke-budget exploration
clears 200+ distinct states per scheme with zero cc-NVM violations and
a nested schedule per recovery site; a deliberately protocol-violating
variant (torn batches) is caught *and* minimized to a handful of ops;
and the whole thing is deterministic through the orchestrator — serial,
pooled and fully-cached runs summarize byte-identically.
"""

import json
from pathlib import Path

import pytest

from repro.analysis.export import crash_summary_to_json, reproducer_from_json
from repro.crashsim import ExploreConfig, explore_specs, replay, run_explore
from repro.faults.plan import RECOVERY_SITES

FIXTURE = Path(__file__).parent.parent / "fixtures" / "crash_reproducer_torn_batch.json"

SMOKE = ExploreConfig(schemes=("ccnvm",))


@pytest.fixture(scope="module")
def smoke(tmp_path_factory):
    root = tmp_path_factory.mktemp("crash-cache")
    summary, report = run_explore(SMOKE, cache_root=root)
    return summary, report, root


class TestSmokeExploration:
    def test_acceptance_floor(self, smoke):
        summary, _, _ = smoke
        entry = summary["schemes"]["ccnvm"]
        assert entry["distinct_states"] >= 200
        assert entry["violations"] == []
        assert summary["total_violations"] == 0
        assert set(entry["outcomes"]) == {"RECOVERED"}

    def test_nested_schedule_per_recovery_site(self, smoke):
        summary, _, _ = smoke
        entry = summary["schemes"]["ccnvm"]
        assert set(entry["nested"]) == set(RECOVERY_SITES)
        for site, runs in entry["nested"].items():
            assert [r["depth"] for r in runs] == [1, 2]
            for r in runs:
                assert len(r["fired_sites"]) == r["depth"]
                assert r["problems"] == []
        assert entry["nested_ok"]

    def test_warm_rerun_is_fully_cached_and_identical(self, smoke):
        summary, report, root = smoke
        assert report.executed == len(explore_specs(SMOKE))
        warm_summary, warm_report = run_explore(SMOKE, cache_root=root)
        assert warm_report.executed == 0
        assert warm_report.cache_hits == len(explore_specs(SMOKE))
        assert crash_summary_to_json(warm_summary) == crash_summary_to_json(summary)

    @pytest.mark.slow
    def test_serial_and_pooled_summaries_byte_identical(self, smoke, tmp_path):
        summary, _, _ = smoke
        pooled, report = run_explore(SMOKE, jobs=2, cache_root=tmp_path)
        assert report.executed == len(explore_specs(SMOKE))
        assert crash_summary_to_json(pooled) == crash_summary_to_json(summary)


class TestTornBatchDetection:
    """The oracle must catch (and minimize) a deliberate ordering bug."""

    @pytest.fixture(scope="class")
    def torn(self, tmp_path_factory):
        cfg = ExploreConfig(schemes=("ccnvm",), steps=48, torn_batches=True)
        summary, _ = run_explore(
            cfg, cache_root=tmp_path_factory.mktemp("torn-cache")
        )
        return summary

    def test_violations_found_and_minimized(self, torn):
        entry = torn["schemes"]["ccnvm"]
        assert entry["violations"], "torn batches must violate the contract"
        minimized = [v for v in entry["violations"] if "reproducer" in v]
        assert minimized
        for violation in minimized:
            assert violation["torn"] is not None
            assert len(violation["reproducer"]["ops"]) <= 10

    def test_minimized_reproducer_replays(self, torn):
        entry = torn["schemes"]["ccnvm"]
        violation = next(v for v in entry["violations"] if "reproducer" in v)
        artifact = reproducer_from_json(
            json.dumps(violation["reproducer"])
        )
        expected = {p.split(":", 1)[0] for p in artifact.problems}
        verdict = replay(artifact)
        assert expected <= set(verdict.signature())


class TestCommittedFixture:
    """Regression: the committed minimized reproducer must keep failing
    (it encodes a state ADR cannot produce — a partially-applied batch —
    so a future change making it *pass* means the oracle went blind)."""

    def test_fixture_replays_to_the_recorded_failure(self):
        artifact = reproducer_from_json(FIXTURE.read_text())
        assert artifact.scheme == "ccnvm"
        assert len(artifact.ops) <= 10
        verdict = replay(artifact)
        expected = {p.split(":", 1)[0] for p in artifact.problems}
        assert expected <= set(verdict.signature())
        assert verdict.outcome == "FAILED"
